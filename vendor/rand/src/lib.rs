//! Minimal, source-compatible subset of the `rand` API, vendored so the
//! workspace builds without network access to crates.io.
//!
//! Provides a deterministic 64-bit PRNG (splitmix64-seeded
//! xoshiro256**-style core) behind the `SeedableRng` / `Rng` traits, with
//! `gen_range` over integer ranges — everything the schedulers need.

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface for random number generators.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Samples one value from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;

            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;

            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: splitmix64-expanded seed
    /// driving an xorshift-multiply core. Statistically adequate for
    /// schedule sampling; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 2],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [splitmix64(&mut s), splitmix64(&mut s)],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift128+ with a final multiply for better mixing.
            let [mut s0, s1] = self.state;
            let result = s0.wrapping_add(s1);
            s0 ^= s0 << 23;
            self.state = [s1, s0 ^ s1 ^ (s0 >> 18) ^ (s1 >> 5)];
            result.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }
}
