//! Minimal, source-compatible subset of the `parking_lot` API, vendored so
//! the workspace builds without network access to crates.io.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s panic-free,
//! non-poisoning surface: `lock()` returns the guard directly and a
//! poisoned lock is transparently recovered.

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
