//! Minimal, source-compatible subset of the `proptest` API, vendored so the
//! workspace builds without network access to crates.io.
//!
//! Implements deterministic random-input property testing: the `proptest!`
//! macro, range/tuple/vec strategies, `prop_map` / `prop_flat_map`,
//! `prop_oneof!`, `Just`, and `prop_assert!` / `prop_assert_eq!`. There is
//! no shrinking — failures report the generated inputs and the per-case
//! seed instead. Case seeds derive from the test name and case index, so
//! every run of a given binary explores the same inputs.

pub mod test_runner {
    //! Deterministic case driver used by the [`proptest!`](crate::proptest) macro.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A property failure raised by `prop_assert!` and friends.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    /// Deterministic split-mix PRNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test case.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `body` for every case of the property named `name`. The body
    /// returns the case outcome plus a rendering of the generated inputs
    /// for failure reports.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when a case returns an
    /// error.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    {
        let base = fnv1a(name);
        for case in 0..config.cases {
            let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::new(seed);
            let (outcome, inputs) = body(&mut rng);
            if let Err(TestCaseError(msg)) = outcome {
                panic!(
                    "property '{name}' failed at case {case} (seed {seed:#x})\n  inputs: {inputs}\n  {msg}"
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always produces a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union of the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    let span = span.checked_add(1).unwrap_or(u64::MAX);
                    lo.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for std::ops::RangeFrom<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    (self.start..=<$ty>::MAX).generate(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A (possibly exact) range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests: each function runs its body over generated
/// inputs, failing on the first erring case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&::std::format!("{:?}; ", &$arg));
                    )+
                    __s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                (__outcome, __inputs)
            });
        }
    )*};
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // Callers often parenthesize negative ranges, e.g. `(-3i32..0)`;
        // allow that without tripping `unused_parens`.
        #[allow(unused_parens)]
        let __options = vec![$( $crate::strategy::Strategy::boxed($strat) ),+];
        $crate::strategy::Union::new(__options)
    }};
}

pub mod prelude {
    //! The glob-importable surface: `use proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -5i64..7, y in 0usize..3) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0i64..4, 0i64..4), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert!((0..4).contains(a));
                prop_assert!((0..4).contains(b));
            }
        }

        #[test]
        fn map_and_oneof(x in prop_oneof![0i32..5, (10i32..15)].prop_map(|v| v * 2)) {
            prop_assert!((0..10).contains(&x) || (20..30).contains(&x));
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x = {} too small", x);
            }
        }
        always_fails();
    }
}
