//! Minimal, source-compatible subset of the `serde_json` API, vendored so
//! the workspace builds without network access to crates.io.
//!
//! Supports compact serialization (`to_string`), parsing (`from_str`),
//! conversion through [`Value`] (`to_value` / `from_value`), string
//! indexing into objects and the `json!` macro for simple literals.
//! Object key order is preserved, so output is deterministic.

use std::fmt;

use serde::{de, ser, Content, Deserialize, Serialize};

/// A parsed JSON document.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(v) => Value::Int(v),
            Content::U64(v) => Value::UInt(v),
            Content::F64(v) => Value::Float(v),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Int(v) => Content::I64(v),
            Value::UInt(v) => Content::U64(v),
            Value::Float(v) => Content::F64(v),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(entries) => Content::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, v.into_content()))
                    .collect(),
            ),
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(entries) = self else {
            panic!("cannot index non-object JSON value by string");
        };
        if let Some(i) = entries.iter().position(|(k, _)| k == key) {
            &mut entries[i].1
        } else {
            entries.push((key.to_owned(), Value::Null));
            &mut entries.last_mut().expect("just pushed").1
        }
    }
}

impl Serialize for Value {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone().into_content())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.deserialize_content()?))
    }
}

/// The error type for JSON serialization and deserialization.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

struct JsonSerializer;

impl ser::Serializer for JsonSerializer {
    type Ok = String;
    type Error = Error;

    fn serialize_content(self, content: Content) -> Result<String, Error> {
        let mut out = String::new();
        write_content(&mut out, &content);
        Ok(out)
    }
}

struct JsonDeserializer(Content);

impl<'de> de::Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn deserialize_content(self) -> Result<Content, Error> {
        Ok(self.0)
    }
}

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&v.to_string()),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a value to its compact JSON text.
///
/// # Errors
///
/// Propagates errors from the value's `Serialize` impl.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value.serialize(JsonSerializer)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Propagates errors from the value's `Serialize` impl.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = ser::to_content(value).map_err(|e| Error(e.0))?;
    let mut out = String::new();
    write_content_pretty(&mut out, &content, 0);
    Ok(out)
}

fn write_content_pretty(out: &mut String, c: &Content, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        for _ in 0..level {
            out.push_str("  ");
        }
    };
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_content_pretty(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_json_string(out, k);
                out.push_str(": ");
                write_content_pretty(out, v, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_content(out, other),
    }
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let content = Parser::new(text).parse_document()?;
    T::deserialize(JsonDeserializer(content))
}

/// Converts a serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Propagates errors from the value's `Serialize` impl.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    let content = ser::to_content(value).map_err(|e| Error(e.0))?;
    Ok(Value::from_content(content))
}

/// Converts a [`Value`] tree into a deserializable value.
///
/// # Errors
///
/// Returns an error on a shape mismatch.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(JsonDeserializer(value.into_content()))
}

/// Builds a [`Value`] from a JSON-ish literal. Supports `null`, booleans,
/// numbers, string literals and (possibly nested) arrays of the above.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ($other:expr) => { $crate::value_from($other) };
}

/// Support shim for the [`json!`] macro: converts a literal into a
/// [`Value`] via `Serialize`.
pub fn value_from<T: Serialize>(value: T) -> Value {
    to_value(&value).expect("literal serialization cannot fail")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_owned()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Content::Bool(true)),
            b'f' => self.parse_keyword("false", Content::Bool(false)),
            b'n' => self.parse_keyword("null", Content::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".to_owned()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_owned()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".to_owned()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".to_owned()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 character starting at
                    // pos - 1, validating only its own bytes (the leading
                    // byte fixes the width) so parsing stays linear.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8".to_owned())),
                    };
                    let end = start + width;
                    let ch = self
                        .bytes
                        .get(start..end)
                        .and_then(|w| std::str::from_utf8(w).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| Error("invalid UTF-8".to_owned()))?;
                    out.push(ch);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        if text.is_empty() {
            return Err(Error(format!("expected a value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<i64> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,-2,3]");
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        assert_eq!(to_string(&s).unwrap(), "\"a\\nb\"");
    }

    #[test]
    fn object_order_is_preserved() {
        let v: Value = from_str(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn index_and_index_mut() {
        let mut v: Value = from_str(r#"{"x":[1],"y":2}"#).unwrap();
        assert_eq!(v["y"], Value::Int(2));
        v["x"] = json!([]);
        assert_eq!(to_string(&v).unwrap(), r#"{"x":[],"y":2}"#);
    }

    #[test]
    fn multibyte_strings_roundtrip() {
        let original = "héllo → 🎯 ∂Δ".to_owned();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
        // An unterminated string ending on a multi-byte character is an
        // error, not a panic.
        assert!(from_str::<String>("\"🎯").is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<i64>("\"x\"").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }
}
