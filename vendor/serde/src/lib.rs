//! Minimal, source-compatible subset of the `serde` API, vendored so the
//! workspace builds without network access to crates.io.
//!
//! The data model is deliberately JSON-shaped: a serializer receives a
//! fully-built [`Content`] tree. This covers everything the workspace
//! uses (manual `Serialize`/`Deserialize` impls over mirror types plus
//! `serde_json`) while staying a few hundred lines. It is **not** a
//! general serde replacement: zero-copy deserialization, visitors and
//! format-agnostic streaming are intentionally out of scope.

use std::fmt::Display;

/// The self-describing value tree exchanged between `Serialize` impls and
/// serializers. Maps preserve insertion order so emitted output is
/// deterministic.
#[derive(Clone, PartialEq, Debug)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys.
    Map(Vec<(String, Content)>),
}

pub mod ser {
    //! Serialization half of the data model.

    use super::{Content, Display};

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds a serializer-specific error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A type that can render itself into the [`Content`] data model.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        ///
        /// # Errors
        ///
        /// Propagates any error reported by the serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A sink for a fully-built [`Content`] tree.
    pub trait Serializer: Sized {
        /// Successful output of the serializer.
        type Ok;
        /// Error type of the serializer.
        type Error: Error;

        /// Consumes a content tree, producing the serializer's output.
        ///
        /// # Errors
        ///
        /// Implementation-specific.
        fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
    }

    /// Infallible-in-practice error for [`ContentSerializer`].
    #[derive(Clone, Debug)]
    pub struct ContentError(pub String);

    impl Display for ContentError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl Error for ContentError {
        fn custom<T: Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// A serializer whose output is the [`Content`] tree itself; used by
    /// container impls to serialize their elements.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;

        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Renders any `Serialize` value to a [`Content`] tree.
    ///
    /// # Errors
    ///
    /// Propagates errors from the value's `serialize` impl.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }
}

pub mod de {
    //! Deserialization half of the data model.

    use super::{Content, Display};

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds a deserializer-specific error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A type constructible from the [`Content`] data model.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value from the given deserializer.
        ///
        /// # Errors
        ///
        /// Returns an error when the content shape does not match.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A source of a fully-parsed [`Content`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type of the deserializer.
        type Error: Error;

        /// Consumes the deserializer, yielding its content tree.
        ///
        /// # Errors
        ///
        /// Implementation-specific (e.g. parse errors).
        fn deserialize_content(self) -> Result<Content, Self::Error>;
    }

    /// Plain-message error for [`ContentDeserializer`].
    #[derive(Clone, Debug)]
    pub struct ContentError(pub String);

    impl Display for ContentError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl Error for ContentError {
        fn custom<T: Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// A deserializer over an already-built content tree; used by container
    /// impls to deserialize their elements.
    pub struct ContentDeserializer(pub Content);

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = ContentError;

        fn deserialize_content(self) -> Result<Content, ContentError> {
            Ok(self.0)
        }
    }

    /// Deserializes any `Deserialize` value from a [`Content`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the content shape does not match.
    pub fn from_content<'de, T: Deserialize<'de>>(content: Content) -> Result<T, ContentError> {
        T::deserialize(ContentDeserializer(content))
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// ---------------------------------------------------------------------------
// Blanket and primitive impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => de::from_content(content)
                .map(Some)
                .map_err(|e| <D::Error as de::Error>::custom(e.0)),
        }
    }
}

macro_rules! impl_ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::I64(i64::from(*self)))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::I64(v) => <$ty>::try_from(v)
                        .map_err(|_| <D::Error as de::Error>::custom("integer out of range")),
                    Content::U64(v) => <$ty>::try_from(v)
                        .map_err(|_| <D::Error as de::Error>::custom("integer out of range")),
                    other => Err(<D::Error as de::Error>::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match i64::try_from(*self) {
            Ok(v) => serializer.serialize_content(Content::I64(v)),
            Err(_) => serializer.serialize_content(Content::U64(*self)),
        }
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::I64(v) => {
                u64::try_from(v).map_err(|_| <D::Error as de::Error>::custom("negative integer"))
            }
            Content::U64(v) => Ok(v),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as u64).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| <D::Error as de::Error>::custom("integer out of range"))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected bool, found {other:?}"
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

fn seq_to_content<T: Serialize, E: ser::Error>(
    items: impl Iterator<Item = T>,
) -> Result<Content, E> {
    let mut out = Vec::new();
    for item in items {
        out.push(ser::to_content(&item).map_err(|e| E::custom(e.0))?);
    }
    Ok(Content::Seq(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let content = seq_to_content::<_, S::Error>(self.iter())?;
        serializer.serialize_content(content)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| de::from_content(c).map_err(|e| <D::Error as de::Error>::custom(e.0)))
                .collect(),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let a = ser::to_content(&self.0).map_err(|e| <S::Error as ser::Error>::custom(e.0))?;
        let b = ser::to_content(&self.1).map_err(|e| <S::Error as ser::Error>::custom(e.0))?;
        serializer.serialize_content(Content::Seq(vec![a, b]))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = de::from_content(it.next().expect("len 2"))
                    .map_err(|e| <D::Error as de::Error>::custom(e.0))?;
                let b = de::from_content(it.next().expect("len 2"))
                    .map_err(|e| <D::Error as de::Error>::custom(e.0))?;
                Ok((a, b))
            }
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected 2-element sequence, found {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let err = |e: ser::ContentError| <S::Error as ser::Error>::custom(e.0);
        let a = ser::to_content(&self.0).map_err(err)?;
        let b = ser::to_content(&self.1).map_err(err)?;
        let c = ser::to_content(&self.2).map_err(err)?;
        serializer.serialize_content(Content::Seq(vec![a, b, c]))
    }
}

/// Convenience: builds a map content node from `(key, content)` pairs.
#[must_use]
pub fn map_content(entries: Vec<(&str, Content)>) -> Content {
    Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}
