//! Minimal, source-compatible subset of the `criterion` API, vendored so
//! the workspace builds without network access to crates.io.
//!
//! Implements wall-clock benchmarking with warmup, a configurable
//! measurement window and mean/min/max reporting. Honors the standard
//! harness flags: `--test` (smoke mode: one iteration per benchmark, as
//! used by `cargo bench -- --test` in CI), `--bench` (ignored) and
//! positional substring filters.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group, e.g. `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label, accepted wherever criterion takes
/// `impl Into<BenchmarkId>`-ish arguments.
pub trait IntoBenchmarkId {
    /// The label under which results are reported.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Clone, Debug)]
struct Options {
    test_mode: bool,
    filters: Vec<String>,
    measurement: Duration,
    warmup: Duration,
    sample_size: usize,
}

impl Options {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "--quiet" => {}
                a if a.starts_with("--") => {}
                a => filters.push(a.to_owned()),
            }
        }
        Options {
            test_mode,
            filters,
            measurement: Duration::from_millis(500),
            warmup: Duration::from_millis(50),
            sample_size: 0,
        }
    }

    fn matches(&self, label: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| label.contains(f))
    }
}

/// The benchmark harness entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    options: Options,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            options: Options::from_args(),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.options.measurement = duration;
        self
    }

    /// Sets the nominal sample count (accepted for compatibility; the
    /// vendored harness is time-driven).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.options.sample_size = n;
        self
    }

    /// Sets the warm-up window run before each timed measurement.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.options.warmup = duration;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        run_benchmark(&self.options, &label, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for the group (compatibility no-op
    /// beyond shortening the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.options.sample_size = n;
        self
    }

    /// Sets the measurement window for the group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.criterion.options.measurement = duration;
        self
    }

    /// Sets the warm-up window for the group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.criterion.options.warmup = duration;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&self.criterion.options, &label, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<F, I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&self.criterion.options, &label, &mut |b: &mut Bencher| {
            f(b, input);
        });
        self
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    mode: BenchMode,
    result: Option<Measurement>,
}

enum BenchMode {
    /// One iteration, no timing: smoke test.
    Smoke,
    /// Timed: warm up briefly, then iterate for the window.
    Timed { window: Duration, warmup: Duration },
}

struct Measurement {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
                self.result = Some(Measurement {
                    iterations: 1,
                    total: Duration::ZERO,
                });
            }
            BenchMode::Timed { window, warmup } => {
                // Warmup: a bounded number of iterations or the warm-up
                // window, whichever ends first.
                let warm_deadline = Instant::now() + warmup;
                let mut warm_iters = 0u64;
                while Instant::now() < warm_deadline && warm_iters < 1000 {
                    black_box(routine());
                    warm_iters += 1;
                }
                let start = Instant::now();
                let mut iterations = 0u64;
                loop {
                    black_box(routine());
                    iterations += 1;
                    if start.elapsed() >= window {
                        break;
                    }
                }
                self.result = Some(Measurement {
                    iterations,
                    total: start.elapsed(),
                });
            }
        }
    }

    /// Like [`Bencher::iter`], but the routine performs and times `iters`
    /// iterations itself, returning the elapsed duration.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Smoke => {
                let total = routine(1);
                self.result = Some(Measurement {
                    iterations: 1,
                    total,
                });
            }
            BenchMode::Timed { window, warmup: _ } => {
                // Calibrate with one iteration, then scale to the window.
                let once = routine(1).max(Duration::from_nanos(1));
                let per_iter = once.as_nanos().max(1);
                let target = window.as_nanos() / per_iter;
                let iters = target.clamp(1, 1_000_000) as u64;
                let total = routine(iters);
                self.result = Some(Measurement {
                    iterations: iters,
                    total,
                });
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(options: &Options, label: &str, f: &mut F) {
    if !options.matches(label) {
        return;
    }
    let mode = if options.test_mode {
        BenchMode::Smoke
    } else {
        BenchMode::Timed {
            window: options.measurement,
            warmup: options.warmup,
        }
    };
    let mut bencher = Bencher { mode, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(m) if options.test_mode => {
            println!("test {label} ... ok (smoke, {} iteration)", m.iterations);
        }
        Some(m) => {
            let per_iter = m.total.as_nanos() as f64 / m.iterations as f64;
            println!(
                "bench {label:<50} {:>14} /iter ({} iters in {:.3?})",
                format_ns(per_iter),
                m.iterations,
                m.total
            );
        }
        None => println!("bench {label} ... no measurement recorded"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose_labels() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let options = Options {
            test_mode: true,
            filters: vec![],
            measurement: Duration::from_millis(1),
            warmup: Duration::ZERO,
            sample_size: 0,
        };
        let mut count = 0;
        run_benchmark(&options, "unit/smoke", &mut |b: &mut Bencher| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn filters_skip_benchmarks() {
        let options = Options {
            test_mode: true,
            filters: vec!["other".to_owned()],
            measurement: Duration::from_millis(1),
            warmup: Duration::ZERO,
            sample_size: 0,
        };
        let mut ran = false;
        run_benchmark(&options, "unit/skipped", &mut |b: &mut Bencher| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }
}
