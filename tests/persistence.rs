//! End-to-end persistence: durable stage caches must never change an
//! answer. The three acceptance properties pinned here:
//!
//! 1. **Digest parity** — verdicts and evidence-chain digests are
//!    byte-identical across a cold run, a warm-in-memory rerun, and a
//!    warm-from-disk rerun in a wiped store.
//! 2. **Corruption tolerance** — a flipped byte or torn tail in a
//!    snapshot degrades to recovery counters and a re-derived artifact,
//!    never a wrong verdict or a panic.
//! 3. **Lifecycle** — configuration resolution, the once-per-directory
//!    warm-start guard, audit and clear behave as documented.
//!
//! Every test funnels through [`store_guard`]: the stage caches are
//! process-wide, so tests that clear or repopulate them must not
//! interleave (the default test harness is multi-threaded).

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock, PoisonError};

use chromata::{
    analyze, analyze_persistent, audit_cache_dir, clear_cache_dir, clear_stage_caches,
    load_cache_dir, persist_now, warm_start, Analysis, CacheDirConfig, PipelineOptions,
    SnapshotAudit, SnapshotStatus, CACHE_DIR_ENV,
};
use chromata_task::library::{hourglass, identity_task, two_set_agreement};
use chromata_task::Task;

/// Serializes every test in this binary: they all mutate the one
/// process-wide artifact store (and one of them the process environment).
fn store_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A unique, pre-cleaned scratch directory per test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chromata-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tasks() -> Vec<Task> {
    vec![hourglass(), two_set_agreement(), identity_task(2)]
}

/// `(verdict rendering, evidence digest)` — the full observable answer.
fn fingerprint(a: &Analysis) -> (String, u64) {
    (a.verdict.to_string(), a.evidence.deterministic_digest())
}

#[test]
fn digest_parity_cold_warm_memory_warm_disk() {
    let _guard = store_guard();
    let dir = scratch_dir("parity");
    let config = CacheDirConfig::at(&dir);
    let options = PipelineOptions::default();
    let suite = tasks();

    clear_stage_caches();
    let cold: Vec<_> = suite
        .iter()
        .map(|t| fingerprint(&analyze(t, options)))
        .collect();

    // Warm-in-memory: every stage replays from the live caches.
    let warm_memory: Vec<_> = suite
        .iter()
        .map(|t| fingerprint(&analyze(t, options)))
        .collect();
    assert_eq!(cold, warm_memory, "in-memory replay changed an answer");

    // Snapshot, wipe the store, restore from disk, decide again.
    let saved = persist_now(&config)
        .expect("persistence is enabled")
        .expect("snapshot write succeeds");
    assert_eq!(saved.files_written, 6, "one snapshot per artifact kind");
    assert!(saved.entries_written > 0);

    clear_stage_caches();
    let loaded = load_cache_dir(&config).expect("persistence is enabled");
    assert!(loaded.restored > 0, "{loaded:?}");
    assert_eq!(loaded.recovery_events(), 0, "{loaded:?}");
    assert_eq!(loaded.missing, 0, "{loaded:?}");

    let warm_disk: Vec<_> = suite
        .iter()
        .map(|t| fingerprint(&analyze(t, options)))
        .collect();
    assert_eq!(cold, warm_disk, "disk-restored replay changed an answer");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn persistent_facade_loads_once_per_directory() {
    let _guard = store_guard();
    let dir = scratch_dir("facade");
    let config = CacheDirConfig::at(&dir);
    let options = PipelineOptions::default();
    clear_stage_caches();

    let (first, report) = analyze_persistent(&hourglass(), options, &config);
    let loaded = report
        .loaded
        .expect("first touch of a directory warm-starts");
    assert_eq!(loaded.missing, 6, "a fresh directory has no snapshots");
    assert_eq!(loaded.restored, 0);
    let saved = report.saved.expect("snapshot after analysis");
    assert!(saved.entries_written > 0);
    assert!(report.save_error.is_none());

    // Same directory again in the same process: the warm start is a
    // no-op (the guard), the answer is identical.
    let (second, report) = analyze_persistent(&hourglass(), options, &config);
    assert!(report.loaded.is_none(), "{:?}", report.loaded);
    assert_eq!(fingerprint(&first), fingerprint(&second));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_degrades_to_recovery_counters_not_a_wrong_verdict() {
    let _guard = store_guard();
    let dir = scratch_dir("flip");
    let config = CacheDirConfig::at(&dir);
    let options = PipelineOptions::default();

    clear_stage_caches();
    let cold = fingerprint(&analyze(&hourglass(), options));
    persist_now(&config)
        .expect("persistence is enabled")
        .expect("snapshot write succeeds");

    // Flip one payload byte in the verdict snapshot.
    let path = dir.join("verdict.snap");
    let mut bytes = fs::read(&path).expect("snapshot exists");
    let n = bytes.len();
    bytes[n - 3] ^= 0x01;
    fs::write(&path, &bytes).expect("rewrite snapshot");

    // The audit sees the damage, confined to the one kind...
    let audits = audit_cache_dir(&dir);
    assert_eq!(audits.len(), 6);
    let verdict_audit = audits
        .iter()
        .find(|a| a.kind.name() == "verdict")
        .expect("verdict kind audited");
    assert!(!verdict_audit.is_clean(), "{verdict_audit:?}");
    assert!(audits
        .iter()
        .filter(|a| a.kind.name() != "verdict")
        .all(SnapshotAudit::is_clean));

    // ...the load classifies it as a recovery event, not a failure...
    clear_stage_caches();
    let loaded = load_cache_dir(&config).expect("persistence is enabled");
    assert!(loaded.recovery_events() >= 1, "{loaded:?}");

    // ...and the verdict is simply re-derived, byte-identical.
    let recovered = fingerprint(&analyze(&hourglass(), options));
    assert_eq!(cold, recovered);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_skips_only_the_final_record() {
    let _guard = store_guard();
    let dir = scratch_dir("torn");
    let config = CacheDirConfig::at(&dir);
    let options = PipelineOptions::default();

    clear_stage_caches();
    let cold = fingerprint(&analyze(&two_set_agreement(), options));
    persist_now(&config)
        .expect("persistence is enabled")
        .expect("snapshot write succeeds");

    // Tear the split snapshot mid-way through its last record, as a
    // crash without the atomic-rename protocol would.
    let path = dir.join("split.snap");
    let bytes = fs::read(&path).expect("snapshot exists");
    fs::write(&path, &bytes[..bytes.len() - 2]).expect("rewrite snapshot");

    clear_stage_caches();
    let loaded = load_cache_dir(&config).expect("persistence is enabled");
    assert_eq!(loaded.torn_entries, 1, "{loaded:?}");
    assert_eq!(loaded.rejected_snapshots, 0, "{loaded:?}");

    let recovered = fingerprint(&analyze(&two_set_agreement(), options));
    assert_eq!(cold, recovered);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn config_resolution_explicit_beats_env_beats_disabled() {
    let _guard = store_guard();
    let explicit = PathBuf::from("/tmp/chromata-explicit");
    let from_env = PathBuf::from("/tmp/chromata-env");

    std::env::set_var(CACHE_DIR_ENV, &from_env);
    let config = CacheDirConfig::resolve(Some(explicit.clone()));
    assert_eq!(config.dir(), Some(explicit.as_path()));
    let config = CacheDirConfig::resolve(None);
    assert_eq!(config.dir(), Some(from_env.as_path()));
    std::env::remove_var(CACHE_DIR_ENV);

    let config = CacheDirConfig::resolve(None);
    assert!(!config.is_enabled());
    assert_eq!(config.dir(), None);
    // Disabled persistence is inert end to end.
    assert!(warm_start(&config).is_none());
    assert!(persist_now(&config).is_none());
}

#[test]
fn clear_cache_dir_removes_every_snapshot() {
    let _guard = store_guard();
    let dir = scratch_dir("clear");
    let config = CacheDirConfig::at(&dir);
    clear_stage_caches();

    let (_, report) = analyze_persistent(&identity_task(2), PipelineOptions::default(), &config);
    assert!(report.saved.is_some(), "{report:?}");

    let removed = clear_cache_dir(&dir).expect("clear succeeds");
    assert!(
        removed >= 6,
        "all six kind snapshots removed, got {removed}"
    );
    assert!(audit_cache_dir(&dir)
        .iter()
        .all(|a| a.status == SnapshotStatus::Missing));

    let _ = fs::remove_dir_all(&dir);
}
