//! Cross-validation of the combinatorial chromatic subdivision (§2.4)
//! against actual immediate-snapshot executions, and of the subdivision's
//! topological invariants.

use chromata::algebra::homology;
use chromata::subdivision::{
    barycentric_subdivision, chromatic_subdivision, iterated_chromatic_subdivision,
    ordered_partitions,
};
use chromata_runtime::empirical_protocol_complex;
use chromata_topology::{Color, Complex, Simplex, Vertex};

fn triangle() -> Simplex {
    Simplex::from_iter((0..3).map(|i| Vertex::of(i, i64::from(i))))
}

#[test]
fn one_round_executions_equal_ch() {
    let sigma = triangle();
    let empirical = empirical_protocol_complex(&sigma).expect("budget");
    let combinatorial = chromatic_subdivision(&Complex::from_facets([sigma]));
    assert_eq!(empirical, combinatorial.complex);
    assert_eq!(empirical.facet_count(), 13);
}

#[test]
fn edge_and_solo_executions_match() {
    for face in triangle().proper_faces() {
        let empirical = empirical_protocol_complex(&face).expect("budget");
        let combinatorial = chromatic_subdivision(&Complex::from_facets([face.clone()]));
        assert_eq!(empirical, combinatorial.complex, "mismatch on face {face}");
    }
}

#[test]
fn growth_follows_fubini_powers() {
    let k = Complex::from_facets([triangle()]);
    let mut expected = 1usize;
    for r in 0..=3 {
        let sub = iterated_chromatic_subdivision(&k, r);
        assert_eq!(
            sub.complex.facet_count(),
            expected,
            "facet count at round {r}"
        );
        expected *= 13;
    }
}

#[test]
fn subdivision_preserves_homology() {
    // |Ch(K)| = |K|: all Betti numbers agree, for the disk and the circle.
    let disk = Complex::from_facets([triangle()]);
    let circle = disk.skeleton(1);
    for k in [disk, circle] {
        let h0 = homology(&k);
        let h1 = homology(&chromatic_subdivision(&k).complex);
        assert_eq!(h0, h1);
    }
}

#[test]
fn subdivision_is_link_connected() {
    // Protocol complexes are link-connected (used implicitly by the
    // Lemma 4.2 proof); check Ch and Ch² of the triangle.
    let k = Complex::from_facets([triangle()]);
    for r in 1..=2 {
        let sub = iterated_chromatic_subdivision(&k, r);
        assert!(sub.complex.is_link_connected(), "Ch^{r} not link-connected");
    }
}

#[test]
fn carrier_boundaries_are_consistent() {
    // The subdivision of each face sits inside the subdivision of each
    // coface (restriction-to-boundary property of Ch as a carrier map).
    let k = Complex::from_facets([triangle()]);
    let sub = iterated_chromatic_subdivision(&k, 2);
    for tau in k.simplices() {
        let part = sub.carrier.image_of(tau);
        for face in tau.proper_faces() {
            let sub_face = sub.carrier.image_of(&face);
            assert!(sub_face.is_subcomplex_of(part));
        }
        assert!(part.is_subcomplex_of(&sub.complex));
    }
}

#[test]
fn schedules_count_matches_facets_for_two_triangles() {
    // Gluing: two triangles sharing an edge.
    let a = Vertex::of(0, 0);
    let b = Vertex::of(1, 0);
    let k = Complex::from_facets([
        Simplex::from_iter([a.clone(), b.clone(), Vertex::of(2, 0)]),
        Simplex::from_iter([a, b, Vertex::of(2, 1)]),
    ]);
    let sub = chromatic_subdivision(&k);
    let per_triangle = ordered_partitions(&Color::first(3).collect::<Vec<_>>()).len();
    assert_eq!(sub.complex.facet_count(), 2 * per_triangle);
}

#[test]
fn barycentric_agrees_on_topology() {
    let k = Complex::from_facets([triangle()]);
    let b = barycentric_subdivision(&k);
    assert_eq!(homology(&b), homology(&k));
    assert_eq!(b.facet_count(), 6);
    assert!(b.is_chromatic());
}
