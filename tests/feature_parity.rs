//! Build-configuration parity: the `parallel` feature (default) and the
//! `--no-default-features` single-thread build must be observationally
//! identical — same serialized bytes for every library task and the same
//! verdicts.
//!
//! Cross-build identity cannot be checked inside one binary, so both
//! builds are pinned to the *same* committed golden digests: running
//!
//! ```text
//! cargo test -p chromata --test feature_parity
//! cargo test -p chromata --test feature_parity --no-default-features
//! ```
//!
//! green in both configurations certifies parity. The digest is FNV-1a
//! over the `serde_json` encoding, so any byte drift — ordering, interning
//! artifacts, thread scheduling — fails loudly.

use chromata::{analyze, PipelineOptions};
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, constant_task, hourglass, identity_task,
    leader_election, majority_consensus, multi_valued_consensus, pinwheel, renaming,
    simple_example_task, two_process_consensus, two_process_leader_election, two_set_agreement,
};
use chromata_task::Task;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest(task: &Task) -> String {
    let json = serde_json::to_string(task).expect("serialize");
    format!("{}:{:016x}", task.name(), fnv1a(json.as_bytes()))
}

fn library() -> Vec<Task> {
    vec![
        identity_task(1),
        identity_task(2),
        identity_task(3),
        constant_task(3),
        simple_example_task(),
        hourglass(),
        pinwheel(),
        consensus(2),
        consensus(3),
        two_process_consensus(),
        multi_valued_consensus(3),
        majority_consensus(),
        two_set_agreement(),
        leader_election(),
        two_process_leader_election(),
        renaming(4),
        adaptive_renaming(),
        approximate_agreement(2),
    ]
}

/// Golden serialization digests. Identical in every build configuration;
/// regenerate by running this test and copying the printed actual list.
const GOLDEN_DIGESTS: &[&str] = &[
    "identity-1:f3eda6a9012c1113",
    "identity-2:d710968df45fd278",
    "identity-3:076080dbc8105f33",
    "constant-3:a919ab602f1a0ada",
    "fig3-example:2e35ff2f4fd7296f",
    "hourglass:11283723be6ce0df",
    "pinwheel:ba070a2977637003",
    "consensus-2:08733ad152de7a91",
    "consensus-3:befbf7fc346f09a6",
    "consensus-2:08733ad152de7a91",
    "consensus-3x3:967c79c0f7822c7d",
    "majority-consensus:8a0111f853b04fa5",
    "2-set-agreement:48206ec034db442d",
    "leader-election:88e1931b2295807e",
    "leader-election-2:c26771efcac81de4",
    "renaming-4:d254c236b93b90f6",
    "adaptive-renaming:2f5c3bac2dbdd5eb",
    "approx-agreement-2:f86bef0c7bd192d5",
];

#[test]
fn library_serialization_digests_match_golden() {
    let actual: Vec<String> = library().iter().map(digest).collect();
    let expected: Vec<String> = GOLDEN_DIGESTS.iter().map(|s| (*s).to_string()).collect();
    assert_eq!(
        actual, expected,
        "serialization drifted from the committed goldens; \
         if intentional, update GOLDEN_DIGESTS to the actual list above"
    );
}

#[test]
fn verdicts_match_golden_in_every_build() {
    // A fast cross-section of the verdict spectrum (full-library verdicts
    // are exercised by the pipeline's own tests). The expected strings are
    // identical with and without the `parallel` feature.
    let cases: &[(Task, bool)] = &[
        (identity_task(3), true),
        (identity_task(2), true),
        (constant_task(3), true),
        (hourglass(), false),
        (two_process_consensus(), false),
    ];
    for (task, solvable) in cases {
        let verdict = analyze(task, PipelineOptions::default()).verdict;
        assert_eq!(
            verdict.is_solvable(),
            *solvable,
            "verdict flipped for {}: {verdict}",
            task.name()
        );
    }
}
