//! Chaos parity for distributed stage execution: with the `ShardIo`
//! fault seam injecting crashes, stalls, corruption, and partitions at
//! every protocol step, every analysis must still yield a verdict —
//! never a wrong one — and every evidence digest must be byte-identical
//! to the single-machine run:
//!
//! ```text
//! cargo test -p chromata --test shard_faults
//! cargo test -p chromata --test shard_faults --no-default-features
//! ```
//!
//! The matrix mirrors `persist.rs`'s durability torture tests: every
//! `io::ErrorKind` at every dispatch step, a mid-response kill, a
//! corrupted artifact payload, and a partitioned-then-healed shard —
//! each case also asserting the expected fault-taxonomy counter.
//!
//! Every test funnels through [`store_guard`]: the remote engine and
//! the stage caches are process-wide, so tests serialize and reset both.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use chromata::{
    analyze, analyze_batch, clear_decision_cache, clear_remote, clear_stage_caches,
    configure_remote, execute_stage_line, parse_stage_fields, remote_fault_trace, remote_stats,
    Analysis, PipelineOptions, RemotePolicy, ShardIo, ShardIoError, ShardStep, StageOrigin,
};
use chromata_task::library::{
    consensus, hourglass, identity_task, klein_bottle_doubled_loop, loop_agreement, pinwheel,
    two_set_agreement,
};
use chromata_task::Task;
use serde_json::Value;
use std::sync::Arc;

/// Serializes tests that touch the process-wide store + remote engine.
fn store_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Fresh local state: no remote engine, cold stage + verdict caches.
fn reset() {
    clear_remote();
    clear_stage_caches();
    clear_decision_cache();
}

/// The single-machine golden for a task: verdict text + evidence digest.
fn golden(task: &Task, options: PipelineOptions) -> (String, u64) {
    reset();
    let analysis = analyze(task, options);
    let digest = analysis.evidence.deterministic_digest();
    (format!("{}", analysis.verdict), digest)
}

/// Asserts an analysis matches its golden byte-for-byte.
fn assert_parity(task: &Task, analysis: &Analysis, golden: &(String, u64), context: &str) {
    assert_eq!(
        format!("{}", analysis.verdict),
        golden.0,
        "verdict drift on {} under {context}",
        task.name()
    );
    assert_eq!(
        analysis.evidence.deterministic_digest(),
        golden.1,
        "digest drift on {} under {context}",
        task.name()
    );
}

/// In-process shard: answers `ping` and executes `stage` jobs for real.
fn serve_line(line: &str) -> Result<String, ShardIoError> {
    let invalid = |msg: String| ShardIoError {
        step: ShardStep::Recv,
        kind: io::ErrorKind::InvalidData,
        message: msg,
    };
    let value: Value = serde_json::from_str(line).map_err(|e| invalid(e.to_string()))?;
    let Value::Object(entries) = value else {
        return Err(invalid("not an object".to_owned()));
    };
    if entries
        .iter()
        .any(|(k, v)| k == "op" && *v == Value::String("ping".to_owned()))
    {
        return Ok(r#"{"status":"ok","op":"ping"}"#.to_owned());
    }
    let job = parse_stage_fields(&entries).map_err(invalid)?;
    execute_stage_line(&job).map_err(invalid)
}

/// What the fault injector does to an exchange.
#[derive(Clone, Copy, Debug)]
enum FaultMode {
    /// Fail at a protocol step with a chosen error kind.
    Fail(ShardStep, io::ErrorKind),
    /// Kill the shard mid-response: a truncated line reaches the client.
    MidResponseKill,
    /// Deliver a corrupted artifact payload (checksum must catch it).
    CorruptPayload,
    /// Stall past the deadline, then surface the timeout.
    Stall,
}

/// A shard pool whose first `fault_budget` exchanges misbehave per
/// `mode`, then behave; `usize::MAX` misbehaves forever.
struct FaultIo {
    shards: usize,
    mode: FaultMode,
    fault_budget: AtomicUsize,
    exchanges: AtomicUsize,
}

impl FaultIo {
    fn always(shards: usize, mode: FaultMode) -> Self {
        FaultIo {
            shards,
            mode,
            fault_budget: AtomicUsize::new(usize::MAX),
            exchanges: AtomicUsize::new(0),
        }
    }

    fn healing_after(shards: usize, mode: FaultMode, faults: usize) -> Self {
        FaultIo {
            shards,
            mode,
            fault_budget: AtomicUsize::new(faults),
            exchanges: AtomicUsize::new(0),
        }
    }

    fn take_fault(&self) -> bool {
        self.fault_budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n > 0 && n != usize::MAX).then(|| n - 1).or({
                    if n == usize::MAX {
                        Some(n)
                    } else {
                        None
                    }
                })
            })
            .is_ok()
    }
}

impl ShardIo for FaultIo {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn exchange(
        &self,
        _shard: usize,
        line: &str,
        deadline: Option<Duration>,
    ) -> Result<String, ShardIoError> {
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        if !self.take_fault() {
            return serve_line(line);
        }
        match self.mode {
            FaultMode::Fail(step, kind) => Err(ShardIoError {
                step,
                kind,
                message: format!("injected {kind:?} at {}", step.label()),
            }),
            FaultMode::MidResponseKill => {
                let full = serve_line(line)?;
                Ok(full[..full.len() / 2].to_owned())
            }
            FaultMode::CorruptPayload => {
                let full = serve_line(line)?;
                // Flip payload bytes without breaking the JSON framing:
                // the checksum, not the parser, must catch this.
                Ok(full.replace(":[", ":[9,"))
            }
            FaultMode::Stall => {
                std::thread::sleep(
                    deadline
                        .unwrap_or(Duration::from_millis(20))
                        .min(Duration::from_millis(20)),
                );
                Err(ShardIoError {
                    step: ShardStep::Recv,
                    kind: io::ErrorKind::TimedOut,
                    message: "injected stall past the deadline".to_owned(),
                })
            }
        }
    }
}

/// A fast policy for fault loops: one attempt, millisecond backoff.
fn fast_policy(attempts: u32) -> RemotePolicy {
    RemotePolicy {
        attempts,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        stage_deadline_ms: Some(2_000),
        hedge_after_ms: None,
        eject_after: 3,
        probe_every: 2,
    }
}

/// The `persist.rs` durability matrix's error-kind list, reused here so
/// the wire layer is tortured at least as hard as the disk layer.
const ERROR_KINDS: &[io::ErrorKind] = &[
    io::ErrorKind::NotFound,
    io::ErrorKind::PermissionDenied,
    io::ErrorKind::ConnectionRefused,
    io::ErrorKind::ConnectionReset,
    io::ErrorKind::ConnectionAborted,
    io::ErrorKind::NotConnected,
    io::ErrorKind::AddrInUse,
    io::ErrorKind::AddrNotAvailable,
    io::ErrorKind::BrokenPipe,
    io::ErrorKind::AlreadyExists,
    io::ErrorKind::WouldBlock,
    io::ErrorKind::InvalidInput,
    io::ErrorKind::InvalidData,
    io::ErrorKind::TimedOut,
    io::ErrorKind::WriteZero,
    io::ErrorKind::Interrupted,
    io::ErrorKind::Unsupported,
    io::ErrorKind::UnexpectedEof,
    io::ErrorKind::OutOfMemory,
    io::ErrorKind::Other,
];

#[test]
fn every_errorkind_at_every_step_preserves_verdict_and_digest() {
    let _guard = store_guard();
    let task = hourglass();
    let options = PipelineOptions::default();
    let gold = golden(&task, options);
    for &step in &[ShardStep::Connect, ShardStep::Send, ShardStep::Recv] {
        for &kind in ERROR_KINDS {
            reset();
            configure_remote(
                Arc::new(FaultIo::always(2, FaultMode::Fail(step, kind))),
                fast_policy(1),
            );
            let analysis = analyze(&task, options);
            let context = format!("{kind:?} at {}", step.label());
            assert_parity(&task, &analysis, &gold, &context);
            let stats = remote_stats().expect("engine is configured");
            let step_faults = match step {
                ShardStep::Connect => stats.connect_faults,
                ShardStep::Send => stats.send_faults,
                ShardStep::Recv => stats.recv_faults,
                ShardStep::Decode => stats.decode_faults,
            };
            assert!(step_faults >= 1, "no {context} fault counted: {stats:?}");
            assert!(
                stats.local_fallbacks >= 1,
                "no local fallback under {context}: {stats:?}"
            );
            let timed_out = matches!(kind, io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock);
            assert_eq!(
                stats.timeouts > 0,
                timed_out,
                "timeout taxonomy mismatch under {context}: {stats:?}"
            );
            // Every stage the engine could not fetch is recorded as a
            // local fallback in the evidence chain — digest-excluded.
            assert!(
                analysis
                    .evidence
                    .stages
                    .iter()
                    .any(|s| s.origin == StageOrigin::LocalFallback),
                "no local-fallback origin recorded under {context}"
            );
        }
    }
    clear_remote();
}

#[test]
fn mid_response_kill_and_corruption_are_decode_faults_with_parity() {
    let _guard = store_guard();
    let task = pinwheel();
    let options = PipelineOptions::default();
    let gold = golden(&task, options);
    for (mode, context) in [
        (FaultMode::MidResponseKill, "mid-response kill"),
        (FaultMode::CorruptPayload, "corrupted artifact payload"),
    ] {
        reset();
        configure_remote(Arc::new(FaultIo::always(2, mode)), fast_policy(2));
        let analysis = analyze(&task, options);
        assert_parity(&task, &analysis, &gold, context);
        let stats = remote_stats().expect("engine is configured");
        assert!(
            stats.decode_faults >= 1,
            "no decode fault counted under {context}: {stats:?}"
        );
        assert!(
            stats.fetched == 0,
            "a corrupted payload must never be accepted under {context}: {stats:?}"
        );
        assert!(
            stats.local_fallbacks >= 1,
            "no local fallback under {context}: {stats:?}"
        );
        let traces = remote_fault_trace();
        assert!(!traces.is_empty(), "no fault trace under {context}");
        assert!(
            traces
                .iter()
                .all(|t| !t.contains('\n') && t.contains("step=decode")),
            "traces must be one-line decode records under {context}: {traces:?}"
        );
    }
    clear_remote();
}

#[test]
fn stalled_shard_times_out_retries_and_falls_back() {
    let _guard = store_guard();
    let task = two_set_agreement();
    let options = PipelineOptions::default();
    let gold = golden(&task, options);
    reset();
    configure_remote(
        Arc::new(FaultIo::always(2, FaultMode::Stall)),
        fast_policy(2),
    );
    let analysis = analyze(&task, options);
    assert_parity(&task, &analysis, &gold, "stalled shard");
    let stats = remote_stats().expect("engine is configured");
    assert!(
        stats.timeouts >= 1,
        "stall must count as timeout: {stats:?}"
    );
    assert!(stats.retries >= 1, "stall must be retried: {stats:?}");
    assert!(stats.local_fallbacks >= 1, "{stats:?}");
    clear_remote();
}

#[test]
fn partitioned_then_healed_shard_is_ejected_and_readmitted() {
    let _guard = store_guard();
    let options = PipelineOptions::default();
    let tasks = [hourglass(), consensus(3), two_set_agreement()];
    let goldens: Vec<_> = tasks.iter().map(|t| golden(t, options)).collect();
    reset();
    // The single shard refuses 12 exchanges (enough to eject at 3
    // consecutive failures), then heals.
    let io = Arc::new(FaultIo::healing_after(
        1,
        FaultMode::Fail(ShardStep::Connect, io::ErrorKind::ConnectionRefused),
        12,
    ));
    configure_remote(io, fast_policy(1));
    // Phase 1: partitioned. Every analysis degrades to local recompute.
    let partitioned = analyze(&tasks[0], options);
    assert_parity(&tasks[0], &partitioned, &goldens[0], "partitioned shard");
    let stats = remote_stats().expect("engine is configured");
    assert!(stats.ejections >= 1, "partition must eject: {stats:?}");
    // Phase 2: keep analyzing; probes burn through the remaining fault
    // budget and eventually re-admit the healed shard.
    let mut readmitted = false;
    for round in 0..20 {
        reset_caches_only();
        let i = round % tasks.len();
        let analysis = analyze(&tasks[i], options);
        assert_parity(&tasks[i], &analysis, &goldens[i], "during healing");
        let stats = remote_stats().expect("engine is configured");
        if stats.readmissions >= 1 && stats.fetched >= 1 {
            readmitted = true;
            break;
        }
    }
    let stats = remote_stats().expect("engine is configured");
    assert!(
        readmitted,
        "healed shard was never probed back into rotation: {stats:?}"
    );
    assert!(stats.probes >= 1, "{stats:?}");
    clear_remote();
}

/// Clears caches but keeps the configured engine (mid-scenario reset).
fn reset_caches_only() {
    clear_stage_caches();
    clear_decision_cache();
}

#[test]
fn healthy_pool_fans_a_library_batch_and_matches_sequential_goldens() {
    let _guard = store_guard();
    let options = PipelineOptions {
        act_fallback_rounds: 1,
    };
    // A verdict-diverse slice of the library, including the ACT
    // exploration residue (klein-squared) so the explore stage ships too.
    let tasks = vec![
        identity_task(3),
        hourglass(),
        pinwheel(),
        consensus(3),
        two_set_agreement(),
        loop_agreement("loop-klein-squared", klein_bottle_doubled_loop()),
    ];
    let goldens: Vec<_> = tasks.iter().map(|t| golden(t, options)).collect();
    reset();
    configure_remote(
        Arc::new(FaultIo::healing_after(3, FaultMode::Stall, 0)),
        fast_policy(2),
    );
    let batch = analyze_batch(&tasks, options);
    for ((task, analysis), gold) in tasks.iter().zip(&batch).zip(&goldens) {
        assert_parity(task, analysis, gold, "healthy 3-shard pool");
    }
    let stats = remote_stats().expect("engine is configured");
    assert!(
        stats.fetched >= 1,
        "a healthy pool must actually serve stages: {stats:?}"
    );
    // Shard-computed stages carry their provenance in the evidence.
    assert!(
        batch
            .iter()
            .flat_map(|a| &a.evidence.stages)
            .any(|s| { matches!(s.origin, StageOrigin::Shard { .. }) }),
        "no stage evidence records a shard origin"
    );
    clear_remote();
}

#[test]
fn hedged_dispatch_races_a_second_shard_with_parity() {
    let _guard = store_guard();
    let task = hourglass();
    let options = PipelineOptions::default();
    let gold = golden(&task, options);
    reset();
    // Shard exchanges stall 20ms; hedging fires after 5ms to a second
    // shard which stalls too, so every dispatch exhausts and falls back
    // — the interesting assertion is parity plus the hedge counters.
    let policy = RemotePolicy {
        hedge_after_ms: Some(5),
        ..fast_policy(1)
    };
    configure_remote(Arc::new(FaultIo::always(2, FaultMode::Stall)), policy);
    let analysis = analyze(&task, options);
    assert_parity(&task, &analysis, &gold, "hedged stalling pool");
    let stats = remote_stats().expect("engine is configured");
    assert!(stats.hedges >= 1, "no hedge fired: {stats:?}");
    assert!(stats.local_fallbacks >= 1, "{stats:?}");
    clear_remote();

    // And when only the *primary* is slow, the hedge must win: shard
    // exchanges succeed, so the race resolves to a fetched artifact.
    reset();
    let policy = RemotePolicy {
        hedge_after_ms: Some(1),
        ..fast_policy(1)
    };
    configure_remote(
        Arc::new(SlowPrimaryIo {
            inner_calls: AtomicUsize::new(0),
        }),
        policy,
    );
    let analysis = analyze(&task, options);
    assert_parity(&task, &analysis, &gold, "slow-primary hedge");
    let stats = remote_stats().expect("engine is configured");
    assert!(stats.fetched >= 1, "{stats:?}");
    assert!(stats.hedges >= 1, "{stats:?}");
    clear_remote();
}

/// Two shards: shard 0 answers slowly (but correctly), shard 1 fast —
/// the straggler-cutoff scenario hedging exists for.
struct SlowPrimaryIo {
    inner_calls: AtomicUsize,
}

impl ShardIo for SlowPrimaryIo {
    fn shard_count(&self) -> usize {
        2
    }

    fn exchange(
        &self,
        shard: usize,
        line: &str,
        _deadline: Option<Duration>,
    ) -> Result<String, ShardIoError> {
        self.inner_calls.fetch_add(1, Ordering::Relaxed);
        if shard == 0 {
            std::thread::sleep(Duration::from_millis(15));
        }
        serve_line(line)
    }
}

#[test]
fn remote_execution_is_invisible_to_the_digest_under_every_mode() {
    // The cross-cutting invariant, pinned once more end-to-end: the
    // same task analyzed locally, via a healthy pool, and via a faulty
    // pool produces one digest.
    let _guard = store_guard();
    let task = consensus(3);
    let options = PipelineOptions::default();
    let gold = golden(&task, options);
    let modes: Vec<(Arc<dyn ShardIo>, &str)> = vec![
        (
            Arc::new(FaultIo::healing_after(2, FaultMode::Stall, 0)),
            "healthy",
        ),
        (
            Arc::new(FaultIo::always(
                2,
                FaultMode::Fail(ShardStep::Connect, io::ErrorKind::ConnectionRefused),
            )),
            "dead pool",
        ),
        (
            Arc::new(FaultIo::always(2, FaultMode::CorruptPayload)),
            "corrupting pool",
        ),
    ];
    for (io, context) in modes {
        reset();
        configure_remote(io, fast_policy(2));
        let analysis = analyze(&task, options);
        assert_parity(&task, &analysis, &gold, context);
    }
    clear_remote();
}
