//! Crash-fault injection end-to-end: machine-checked wait-freedom of the
//! Figure 7 algorithm under every crash pattern, byte-for-byte replay of
//! seeded faulted schedules, and graceful degradation when the resource
//! budget is starved.

use chromata::{Budget, CancelToken};
use chromata_runtime::{
    explore_crash, initial_memory, processes_for, replay_trace, run_random_faulted,
    verify_figure7_with_crashes, ExploreError, FaultPlan, Fig7Config, Trace, VerifyError,
};
use chromata_task::library::{constant_task, identity_task, two_set_agreement};
use chromata_task::Task;
use chromata_topology::Simplex;

/// The solvable, link-connected library tasks small enough for
/// exhaustive crash-injected exploration.
fn solvable_tasks() -> Vec<Task> {
    vec![identity_task(3), constant_task(3)]
}

fn generous_budget() -> Budget {
    Budget::unlimited()
        .with_max_states(20_000_000)
        .with_max_steps(500)
}

#[test]
fn solvable_tasks_wait_free_under_one_crash() {
    // Wait-freedom is a claim about *every* crash pattern: survivors of
    // any single crash must still decide, and their decisions must form
    // a simplex of Δ applied to the participating inputs.
    for t in solvable_tasks() {
        let r = verify_figure7_with_crashes(&t, &generous_budget(), &CancelToken::new(), 1)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
        assert!(
            r.crashed_outcomes > 0,
            "{}: crash branches must be exercised",
            t.name()
        );
        assert!(
            r.outcomes > r.crashed_outcomes,
            "{}: failure-free outcomes must survive alongside crashed ones",
            t.name()
        );
    }
}

#[test]
fn solvable_tasks_wait_free_under_two_crashes() {
    // With two of three processes crashed the lone survivor must still
    // decide solo — the strongest form of the wait-freedom claim.
    for t in solvable_tasks() {
        let one = verify_figure7_with_crashes(&t, &generous_budget(), &CancelToken::new(), 1)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
        let two = verify_figure7_with_crashes(&t, &generous_budget(), &CancelToken::new(), 2)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
        assert!(
            two.crashed_outcomes > one.crashed_outcomes,
            "{}: two-crash exploration must reach strictly more crashed outcomes",
            t.name()
        );
        assert!(two.states >= one.states, "{}", t.name());
    }
}

#[test]
fn every_enumerated_fault_plan_leaves_survivors_deciding() {
    // Plan-driven (rather than branch-driven) coverage: for every
    // explicit (process, crash point) plan with at most 2 crashes, run
    // seeded schedules and check the survivors' decisions against Δ of
    // the participating inputs.
    for t in solvable_tasks() {
        let sigma: Simplex = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        let inputs: Vec<_> = sigma.vertices().to_vec();
        for plan in FaultPlan::enumerate(3, 2, 3) {
            for seed in 0..5 {
                let (_, outcome) = run_random_faulted(
                    processes_for(&sigma),
                    initial_memory(),
                    &config,
                    seed,
                    2_000,
                    &plan,
                )
                .unwrap_or_else(|e| panic!("{}: plan [{plan}] seed {seed}: {e}", t.name()));
                let decided: Vec<_> = outcome.decided();
                for (pid, _) in &decided {
                    assert!(
                        !outcome.crashed.contains(pid),
                        "{}: crashed process {pid} decided",
                        t.name()
                    );
                }
                if decided.is_empty() {
                    continue;
                }
                let participating =
                    Simplex::from_iter(outcome.participating.iter().map(|&i| inputs[i].clone()));
                let s = Simplex::from_iter(decided.into_iter().map(|(_, v)| v.clone()));
                assert!(
                    t.delta().carries(&participating, &s),
                    "{}: plan [{plan}] seed {seed}: {s} outside Δ({participating})",
                    t.name()
                );
            }
        }
    }
}

#[test]
fn seeded_fault_plans_replay_byte_for_byte() {
    // A faulted schedule serialized to its one-line form must replay to
    // the identical partial outcome after a full format round-trip.
    let t = two_set_agreement();
    let sigma: Simplex = t.input().facets().next().unwrap().clone();
    let config = Fig7Config::new(t);
    for seed in 0..40 {
        let plan = FaultPlan::sample(seed, 3, 2, 4);
        let (trace, outcome) = run_random_faulted(
            processes_for(&sigma),
            initial_memory(),
            &config,
            seed,
            2_000,
            &plan,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: plan [{plan}]: {e}"));
        let line = trace.to_string();
        let parsed: Trace = line.parse().expect("trace line round-trips");
        assert_eq!(parsed, trace, "seed {seed}: parse({line}) != original");
        let replayed = replay_trace(processes_for(&sigma), initial_memory(), &config, &parsed)
            .unwrap_or_else(|e| panic!("seed {seed}: replay of `{line}`: {e}"));
        assert_eq!(
            replayed, outcome,
            "seed {seed}: replay of `{line}` diverged"
        );
    }
}

#[test]
fn starved_state_budget_degrades_to_replayable_diagnostic() {
    // A state budget far below what two-set agreement needs must surface
    // a structured error whose trace replays to a live frontier state —
    // partial diagnostics, not a panic.
    let t = two_set_agreement();
    let sigma: Simplex = t.input().facets().next().unwrap().clone();
    let config = Fig7Config::new(t);
    let budget = Budget::unlimited().with_max_states(50).with_max_steps(500);
    match explore_crash(
        processes_for(&sigma),
        initial_memory(),
        &config,
        &budget,
        &CancelToken::new(),
        1,
    ) {
        Err(ExploreError::StateBudgetExceeded { max_states, trace }) => {
            assert_eq!(max_states, 50);
            let partial = replay_trace(processes_for(&sigma), initial_memory(), &config, &trace)
                .expect("diagnostic trace replays");
            assert!(
                partial.decided().len() < 3,
                "a starved frontier state cannot be terminal"
            );
        }
        other => panic!("expected a state-budget diagnostic, got {other:?}"),
    }
}

#[test]
fn starved_verification_reports_structured_unknown() {
    // The same starvation through the verification facade: the caller
    // sees `VerifyError::Explore` (the "don't know" verdict), never a
    // claimed violation and never a panic.
    let budget = Budget::unlimited().with_max_states(50).with_max_steps(500);
    match verify_figure7_with_crashes(&two_set_agreement(), &budget, &CancelToken::new(), 1) {
        Err(VerifyError::Explore(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("state budget"), "unhelpful diagnostic: {msg}");
        }
        other => panic!("expected a budget error, got {other:?}"),
    }
}

#[test]
fn cancelled_verification_reports_interrupt() {
    let cancel = CancelToken::new();
    cancel.cancel();
    match verify_figure7_with_crashes(&two_set_agreement(), &generous_budget(), &cancel, 1) {
        Err(VerifyError::Explore(ExploreError::Interrupted { interrupt, .. })) => {
            assert_eq!(interrupt.to_string(), "cancelled");
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
}
