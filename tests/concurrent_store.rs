//! Concurrency parity for the shared artifact store: `chromata serve`
//! multiplexes many clients over one process-wide store, so the store
//! must behave — observably — as if the same analyses had run one at a
//! time. Pinned here:
//!
//! 1. **Verdict/digest parity under contention** — N threads analyzing
//!    an overlapping task set produce verdict renderings and
//!    evidence-chain digests byte-identical to a sequential cold
//!    baseline, for every thread and every task.
//! 2. **Counter coherence** — after (and despite) contention,
//!    `stage_cache_stats()` satisfies `lookups == hits + misses` for
//!    every stage cache: every lookup is classified exactly once, no
//!    increment is lost or double-counted under the cache locks.

use std::sync::{Mutex, OnceLock, PoisonError};

use chromata::{analyze, clear_stage_caches, stage_cache_stats, Analysis, PipelineOptions};
use chromata_task::library::{hourglass, identity_task, pinwheel, two_set_agreement};
use chromata_task::Task;

/// Serializes tests in this binary: they clear and repopulate the one
/// process-wide artifact store.
fn store_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// An overlapping task set: every worker analyzes all of these, so the
/// same cache entries are hit from many threads at once.
fn tasks() -> Vec<Task> {
    vec![
        hourglass(),
        two_set_agreement(),
        identity_task(2),
        identity_task(3),
        pinwheel(),
    ]
}

/// `(verdict rendering, evidence digest)` — the full observable answer.
fn fingerprint(a: &Analysis) -> (String, u64) {
    (a.verdict.to_string(), a.evidence.deterministic_digest())
}

fn assert_all_coherent(context: &str) {
    for (kind, stats) in stage_cache_stats() {
        assert!(
            stats.is_coherent(),
            "{context}: {kind} cache incoherent: lookups {} != hits {} + misses {}",
            stats.lookups,
            stats.hits,
            stats.misses
        );
    }
}

#[test]
fn concurrent_analyses_match_the_sequential_baseline() {
    let _guard = store_guard();
    let options = PipelineOptions::default();
    let tasks = tasks();

    // Sequential cold baseline.
    clear_stage_caches();
    let baseline: Vec<(String, u64)> = tasks
        .iter()
        .map(|t| fingerprint(&analyze(t, options)))
        .collect();
    assert_all_coherent("sequential baseline");

    // N threads, each analyzing the full overlapping set (shuffled per
    // thread by rotation so lock acquisition orders differ), against a
    // freshly cleared store.
    clear_stage_caches();
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let results: Vec<Vec<(usize, (String, u64))>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|worker| {
                let tasks = &tasks;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..ROUNDS {
                        for offset in 0..tasks.len() {
                            let i = (worker + round + offset) % tasks.len();
                            out.push((i, fingerprint(&analyze(&tasks[i], options))));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (worker, result) in results.iter().enumerate() {
        for (i, fp) in result {
            assert_eq!(
                fp,
                &baseline[*i],
                "worker {worker}, task #{i} ({}): concurrent answer diverged \
                 from the sequential cold baseline",
                tasks[*i].name()
            );
        }
    }
    assert_all_coherent("after contention");
}

#[test]
fn stats_totals_add_up_under_contention() {
    let _guard = store_guard();
    let options = PipelineOptions::default();
    let tasks = tasks();

    clear_stage_caches();
    const THREADS: usize = 6;
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let tasks = &tasks;
            scope.spawn(move || {
                for offset in 0..tasks.len() {
                    let t = &tasks[(worker + offset) % tasks.len()];
                    let _ = analyze(t, options);
                }
            });
        }
    });

    let stats = stage_cache_stats();
    assert_all_coherent("stats totals");
    // The store actually saw traffic: at least one stage recorded
    // lookups, and repeat analyses of the same tasks produced hits.
    let total_lookups: u64 = stats.iter().map(|(_, s)| s.lookups).sum();
    let total_hits: u64 = stats.iter().map(|(_, s)| s.hits).sum();
    assert!(total_lookups > 0, "no stage cache recorded a lookup");
    assert!(
        total_hits > 0,
        "overlapping analyses from {THREADS} threads produced no cache hit"
    );
}
