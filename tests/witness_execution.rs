//! End-to-end protocol extraction: ACT witnesses found by the core's
//! search are executed as real `r`-round protocols under the exhaustive
//! scheduler, closing the loop between decision maps and algorithms
//! (§2.4: "a map *is* a protocol").

use chromata::{solve_act, ActOutcome};
use chromata_runtime::execute_decision_map;
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, constant_task, identity_task,
};
use chromata_task::Task;
use chromata_topology::Simplex;

fn extract_and_run(task: &Task, max_rounds: usize, max_states: usize) {
    let ActOutcome::Solvable { rounds, map } = solve_act(task, max_rounds) else {
        panic!(
            "{}: expected a witness within {max_rounds} rounds",
            task.name()
        );
    };
    for sigma in task.input().facets() {
        for tau in sigma.faces() {
            let outcomes = execute_decision_map(task, &map, rounds, &tau, max_states)
                .unwrap_or_else(|e| panic!("{}: {e}", task.name()));
            assert!(outcomes >= 1, "{}: no outcomes on {tau}", task.name());
        }
    }
}

#[test]
fn identity_witness_executes() {
    extract_and_run(&identity_task(3), 1, 2_000_000);
}

#[test]
fn constant_witness_executes() {
    extract_and_run(&constant_task(3), 1, 2_000_000);
}

#[test]
fn approximate_agreement_witness_executes() {
    // All 8 input facets and all faces, every interleaving of the
    // extracted protocol.
    extract_and_run(&approximate_agreement(1), 1, 5_000_000);
}

#[test]
fn adaptive_renaming_witness_executes_two_rounds() {
    // The r = 2 witness runs as a two-round IIS protocol; full
    // participation only (the face cases re-run the same machinery on
    // smaller state spaces and are covered above).
    let t = adaptive_renaming();
    let ActOutcome::Solvable { rounds, map } = solve_act(&t, 2) else {
        panic!("adaptive renaming has an r = 2 witness");
    };
    assert_eq!(rounds, 2);
    let sigma: Simplex = t.input().facets().next().unwrap().clone();
    let outcomes = execute_decision_map(&t, &map, rounds, &sigma, 50_000_000).expect("budget");
    // 169 two-round executions collapse to a smaller set of distinct
    // valid namings; schedule-sensitivity shows the witness is not a
    // constant map.
    assert!(
        outcomes > 1,
        "expected schedule-dependent namings, got {outcomes}"
    );
}
