//! Soundness fuzzing: on random three-process tasks, the pipeline verdict
//! and the ACT baseline must never *contradict* each other.
//!
//! * If the bounded ACT search finds a decision map, the task is solvable
//!   — the pipeline must not say `Unsolvable`.
//! * If the pipeline says `Unsolvable`, no ACT search at any budget may
//!   succeed — checked at the affordable budget.
//!
//! (The converse — pipeline `Solvable` implies ACT finds a map — needs an
//! unbounded round budget and is checked on curated tasks in
//! `pipeline_vs_act.rs`.)

use proptest::prelude::*;

use chromata::{analyze, solve_act, PipelineOptions};
use chromata_task::Task;
use chromata_topology::{Complex, Simplex, Vertex};

fn task_from_triples(triples: &[(i64, i64, i64)]) -> Option<Task> {
    if triples.is_empty() {
        return None;
    }
    let facet = Simplex::from_iter((0..3).map(|i| Vertex::of(i, 0)));
    let input = Complex::from_facets([facet]);
    let triangles: Vec<Simplex> = triples
        .iter()
        .map(|(a, b, c)| {
            Simplex::from_iter([Vertex::of(0, *a), Vertex::of(1, *b), Vertex::of(2, *c)])
        })
        .collect();
    Task::from_facet_delta("random", input, move |_| triangles.clone()).ok()
}

/// A variant with pinned solos: each process must decide the designated
/// vertex (when it exists in the derived image), making unsolvable
/// samples much more likely.
fn pinned_task(triples: &[(i64, i64, i64)], pins: (usize, usize, usize)) -> Option<Task> {
    let base = task_from_triples(triples)?;
    let pick = |color: u8, idx: usize| -> Option<Simplex> {
        let img = base.delta().image_of(&Simplex::vertex(
            base.input()
                .vertices()
                .find(|v| v.color().index() == color)?
                .clone(),
        ));
        let verts: Vec<Vertex> = img.vertices().cloned().collect();
        Some(Simplex::vertex(verts[idx % verts.len()].clone()))
    };
    let p0 = pick(0, pins.0)?;
    let p1 = pick(1, pins.1)?;
    let p2 = pick(2, pins.2)?;
    let triangles: Vec<Simplex> = base
        .delta()
        .image_of(base.input().facets().next()?)
        .facets()
        .cloned()
        .collect();
    let edges: std::collections::BTreeMap<Simplex, Vec<Simplex>> = base
        .input()
        .simplices_of_dim(1)
        .map(|e| {
            (
                e.clone(),
                base.delta().image_of(e).facets().cloned().collect(),
            )
        })
        .collect();
    Task::from_delta_fn(
        "random-pinned",
        base.input().clone(),
        move |tau| match tau.dimension() {
            2 => triangles.clone(),
            1 => edges[tau].clone(),
            _ => match tau.vertices()[0].color().index() {
                0 => vec![p0.clone()],
                1 => vec![p1.clone()],
                _ => vec![p2.clone()],
            },
        },
    )
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn verdicts_never_contradict_act(triples in proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..7)) {
        let Some(t) = task_from_triples(&triples) else { return Ok(()); };
        let verdict = analyze(&t, PipelineOptions::default()).verdict;
        let act_found = solve_act(&t, 1).is_solvable();
        if act_found {
            prop_assert!(
                !verdict.is_unsolvable(),
                "ACT found a map but the pipeline says unsolvable"
            );
        }
        if verdict.is_unsolvable() {
            prop_assert!(!act_found, "contradiction");
        }
    }

    #[test]
    fn pinned_verdicts_never_contradict_act(
        triples in proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..7),
        pins in (0usize..4, 0usize..4, 0usize..4),
    ) {
        let Some(t) = pinned_task(&triples, pins) else { return Ok(()); };
        let verdict = analyze(&t, PipelineOptions::default()).verdict;
        let act_found = solve_act(&t, 1).is_solvable();
        if act_found {
            prop_assert!(!verdict.is_unsolvable(), "contradiction on pinned task");
        }
        if verdict.is_unsolvable() {
            prop_assert!(!act_found, "contradiction on pinned task");
        }
    }

    #[test]
    fn degenerate_splits_are_truly_unsolvable(
        triples in proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..7),
        pins in (0usize..4, 0usize..4, 0usize..4),
    ) {
        // Whenever the splitting reports a degenerate solo image, the
        // ACT baseline must not find a map.
        let Some(t) = pinned_task(&triples, pins) else { return Ok(()); };
        let analysis = analyze(&t, PipelineOptions::default());
        if analysis.split.degenerate.is_some() {
            prop_assert!(analysis.verdict.is_unsolvable());
            prop_assert!(!solve_act(&t, 1).is_solvable());
        }
    }
}
