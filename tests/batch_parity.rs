//! Golden batch parity: `analyze_batch` must be observationally
//! identical to per-task `analyze` on the whole task library — same
//! verdict `Display` bytes and the same evidence-chain digests — in both
//! build configurations:
//!
//! ```text
//! cargo test -p chromata --test batch_parity
//! cargo test -p chromata --test batch_parity --no-default-features
//! ```
//!
//! The evidence digest covers `(stage, detail, work)` for every stage
//! plus the deciding stage, and is cold/warm-stable by construction
//! (cache replays reproduce the recorded traces), so parity holds no
//! matter how the batch fan-out interleaves with the per-task runs.

use chromata::{analyze, analyze_batch, stage_cache_stats, ArtifactKind, PipelineOptions, Verdict};
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, constant_task, disk_complex, hourglass,
    identity_task, klein_bottle_doubled_loop, klein_bottle_single_loop, leader_election,
    loop_agreement, majority_consensus, multi_valued_consensus, pinwheel, projective_plane_complex,
    renaming, simple_example_task, sphere_complex, torus_complex, two_process_consensus,
    two_process_leader_election, two_set_agreement,
};
use chromata_task::Task;

/// The full task library: every registry entry plus the small-arity
/// controls `feature_parity` pins.
fn library() -> Vec<Task> {
    vec![
        identity_task(1),
        identity_task(2),
        identity_task(3),
        constant_task(3),
        simple_example_task(),
        hourglass(),
        pinwheel(),
        consensus(2),
        consensus(3),
        two_process_consensus(),
        multi_valued_consensus(3),
        majority_consensus(),
        two_set_agreement(),
        leader_election(),
        two_process_leader_election(),
        renaming(4),
        renaming(5),
        adaptive_renaming(),
        approximate_agreement(2),
        approximate_agreement(3),
        loop_agreement("loop-disk", disk_complex()),
        loop_agreement("loop-sphere", sphere_complex()),
        loop_agreement("loop-torus", torus_complex()),
        loop_agreement("loop-rp2", projective_plane_complex()),
        loop_agreement("loop-klein-torsion", klein_bottle_single_loop()),
        loop_agreement("loop-klein-squared", klein_bottle_doubled_loop()),
    ]
}

#[test]
fn batch_verdicts_and_evidence_match_sequential_analysis() {
    let tasks = library();
    let options = PipelineOptions::default();
    let batch = analyze_batch(&tasks, options);
    assert_eq!(batch.len(), tasks.len());
    for (task, batched) in tasks.iter().zip(&batch) {
        let solo = analyze(task, options);
        assert_eq!(
            format!("{}", batched.verdict),
            format!("{}", solo.verdict),
            "verdict drift on {}",
            task.name()
        );
        assert_eq!(
            batched.evidence.deterministic_digest(),
            solo.evidence.deterministic_digest(),
            "evidence drift on {}",
            task.name()
        );
        assert_eq!(
            batched.evidence.decided_by,
            solo.evidence.decided_by,
            "deciding-stage drift on {}",
            task.name()
        );
    }
}

#[test]
fn batch_with_act_fallback_matches_sequential_analysis() {
    // The Klein-bottle doubled loop is the library's undecidable residue:
    // homology is inconclusive, so the ACT exploration ladder runs. The
    // fallback path must be batch/sequential-identical too.
    let tasks = vec![
        loop_agreement("loop-klein-squared", klein_bottle_doubled_loop()),
        identity_task(3),
        consensus(3),
    ];
    let options = PipelineOptions {
        act_fallback_rounds: 1,
    };
    let batch = analyze_batch(&tasks, options);
    for (task, batched) in tasks.iter().zip(&batch) {
        let solo = analyze(task, options);
        assert_eq!(
            format!("{}", batched.verdict),
            format!("{}", solo.verdict),
            "verdict drift on {}",
            task.name()
        );
        assert_eq!(
            batched.evidence.deterministic_digest(),
            solo.evidence.deterministic_digest(),
            "evidence drift on {}",
            task.name()
        );
    }
}

#[test]
fn batch_reruns_share_artifacts_through_the_stage_caches() {
    // A second pass over the same batch must be answered from the verdict
    // cache: hits strictly increase while the evidence digests (which
    // exclude cache events by design) stay fixed.
    let tasks = vec![identity_task(3), hourglass(), consensus(3)];
    let options = PipelineOptions::default();
    let first = analyze_batch(&tasks, options);
    let hits_before: u64 = stage_cache_stats()
        .iter()
        .filter(|(kind, _)| *kind == ArtifactKind::Verdict)
        .map(|(_, stats)| stats.hits)
        .sum();
    let second = analyze_batch(&tasks, options);
    let hits_after: u64 = stage_cache_stats()
        .iter()
        .filter(|(kind, _)| *kind == ArtifactKind::Verdict)
        .map(|(_, stats)| stats.hits)
        .sum();
    assert!(
        hits_after >= hits_before + tasks.len() as u64,
        "expected at least {} new verdict-cache hits, got {hits_before} -> {hits_after}",
        tasks.len()
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.evidence.deterministic_digest(),
            b.evidence.deterministic_digest()
        );
        assert_eq!(format!("{}", a.verdict), format!("{}", b.verdict));
    }
}

#[test]
fn batch_covers_every_verdict_class() {
    // Sanity: the library exercises all three verdicts, so parity above
    // is not vacuous for any class.
    let tasks = library();
    let batch = analyze_batch(&tasks, PipelineOptions::default());
    let has = |want: fn(&Verdict) -> bool| batch.iter().any(|a| want(&a.verdict));
    assert!(has(|v| matches!(v, Verdict::Solvable { .. })));
    assert!(has(|v| matches!(v, Verdict::Unsolvable { .. })));
    assert!(has(|v| matches!(v, Verdict::Unknown { .. })));
}
