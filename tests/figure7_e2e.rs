//! End-to-end verification of the Figure 7 algorithm (Lemma 5.3) under
//! the exhaustive scheduler and the adversarial color-agnostic oracle.

use chromata_runtime::{
    explore, initial_memory, processes_for, run_random, verify_figure7, ExploreError, Fig7Config,
};
use chromata_task::library::{constant_task, identity_task, two_set_agreement};
use chromata_task::Task;
use chromata_topology::Simplex;

#[test]
fn identity_exhaustive() {
    let r = verify_figure7(&identity_task(3), 5_000_000).expect("budget");
    assert_eq!(r.participant_sets, 7);
    assert!(r.outcomes >= 1);
}

#[test]
fn constant_exhaustive() {
    let r = verify_figure7(&constant_task(3), 5_000_000).expect("budget");
    assert!(r.outcomes >= 1);
}

#[test]
fn two_set_agreement_exhaustive() {
    // The flagship: link-connected, wait-free unsolvable, yet Figure 7
    // correctly chromatizes every adversarial A_C behaviour — Lemma 5.3
    // is about the transformation, not about realizing A_C.
    let r = verify_figure7(&two_set_agreement(), 20_000_000).expect("budget");
    assert!(r.outcomes > 10, "rich outcome variety expected");
    assert!(r.states > 100_000, "non-trivial exploration expected");
}

#[test]
fn pivots_exist_in_every_two_set_outcome() {
    // Claim 2: in every terminal outcome at least one process decided a
    // vertex of its own color *from the core* — observable as: the
    // decided simplex always has full dimension ≤ 2 and respects Δ, and
    // runs never deadlock (checked by explore's termination).
    let t = two_set_agreement();
    let sigma = t.input().facets().next().unwrap().clone();
    let config = Fig7Config::new(t.clone());
    let explored = explore(
        processes_for(&sigma),
        initial_memory(),
        &config,
        20_000_000,
        500,
    )
    .expect("budget");
    for outcome in &explored.outcomes {
        let s = Simplex::new(outcome.clone());
        assert!(t.delta().carries(&sigma, &s), "outcome {s} outside Δ(σ)");
        // ≤ 2 distinct values decided (the task's safety property).
        let mut vals: Vec<_> = outcome
            .iter()
            .map(|v| v.value().as_int().expect("int outputs"))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 2, "2-set agreement violated: {vals:?}");
    }
}

#[test]
fn termination_bound_is_respected() {
    // Fig. 7 terminates within a number of steps proportional to the
    // longest link path; for these tasks a generous constant suffices on
    // every random schedule.
    for t in [identity_task(3), two_set_agreement()] {
        let sigma: Simplex = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        for seed in 0..200 {
            let outcome = run_random(
                processes_for(&sigma),
                initial_memory(),
                &config,
                seed,
                2_000,
            )
            .unwrap_or_else(|e| panic!("{}: seed {seed}: {e}", t.name()));
            assert!(t.delta().carries(&sigma, &Simplex::new(outcome)));
        }
    }
}

#[test]
fn large_tasks_verified_on_random_schedules() {
    // Exhaustive exploration of adaptive renaming exceeds memory budgets
    // (60 facets × late-binding oracle); seeded random schedules provide
    // broad coverage instead.
    for t in [
        chromata_task::library::adaptive_renaming(),
        chromata_task::library::approximate_agreement(1),
    ] {
        let sigma: Simplex = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        for seed in 0..500 {
            let outcome = run_random(
                processes_for(&sigma),
                initial_memory(),
                &config,
                seed,
                100_000,
            )
            .unwrap_or_else(|e| panic!("{}: seed {seed}: {e}", t.name()));
            let s = Simplex::new(outcome);
            assert!(
                t.delta().carries(&sigma, &s),
                "{}: outcome {s} violates Δ(σ)",
                t.name()
            );
        }
    }
}

#[test]
fn link_connectivity_hypothesis_is_necessary() {
    // Running Fig. 7 on the (not link-connected) hourglass must fail:
    // some schedule drives the negotiation into a disconnected link. The
    // worker's diagnostic panic is caught by the scheduler and surfaced
    // as a structured error with a replayable schedule — which we
    // assert, demonstrating that Lemma 5.3's hypothesis is not
    // incidental.
    let t: Task = chromata_task::library::hourglass();
    let sigma = t.input().facets().next().unwrap().clone();
    let config = Fig7Config::new(t);
    let result = explore(
        processes_for(&sigma),
        initial_memory(),
        &config,
        20_000_000,
        500,
    );
    match result {
        Err(ExploreError::WorkerPanicked { message, trace }) => {
            assert!(
                message.contains("not link-connected"),
                "unexpected panic message: {message}"
            );
            // The offending schedule is replayable evidence, not noise.
            assert!(!trace.is_empty(), "diagnostic trace must be non-empty");
        }
        Err(other) => panic!("expected a worker panic diagnostic, got {other}"),
        Ok(_) => {
            // If no schedule hits the disconnection the adversary was not
            // strong enough — that would weaken the test, so fail loudly.
            panic!("hourglass negotiation unexpectedly survived all schedules");
        }
    }
}
