//! Theorem 3.1: a task is solvable iff its canonical form is — exercised
//! through the ACT baseline and through structural properties of the
//! canonicalization.

use chromata::subdivision::iterated_chromatic_subdivision;
use chromata::{solve_act, validate_witness, ActOutcome};
use chromata_task::library::{
    consensus, constant_task, hourglass, identity_task, simple_example_task,
};
use chromata_task::{
    canonical_decision, canonical_preimage, canonicalize, is_canonical, project_canonical_simplex,
};
use chromata_topology::Simplex;

#[test]
fn canonicalization_always_yields_canonical_tasks() {
    for t in [
        identity_task(3),
        constant_task(3),
        consensus(3),
        hourglass(),
        simple_example_task(),
    ] {
        let c = canonicalize(&t);
        assert!(is_canonical(&c), "{}", t.name());
        assert_eq!(c.input(), t.input(), "inputs untouched");
        // Δ* image facet counts match Δ's (bijective per input simplex).
        for (tau, img) in t.delta().iter() {
            let cimg = c.delta().image_of(tau);
            assert_eq!(
                img.facet_count(),
                cimg.facet_count(),
                "{}: facet count changed at {tau}",
                t.name()
            );
        }
    }
}

#[test]
fn solvable_direction_via_act_witness_transport() {
    // If T is solvable, T* is: take the ACT witness for T* and project it
    // back; both must validate.
    for t in [identity_task(3), constant_task(3), simple_example_task()] {
        let c = canonicalize(&t);
        let ActOutcome::Solvable { rounds, map } = solve_act(&c, 1) else {
            panic!("{}: canonical form should be solvable", t.name());
        };
        let sub = iterated_chromatic_subdivision(c.input(), rounds);
        assert!(validate_witness(&sub, &c, &map));
        // Project the canonical decisions down to original decisions
        // (Theorem 3.1, easy direction) and check they respect Δ.
        for (tau, part) in sub.carrier.iter() {
            for xi in part.facets() {
                let img = map.apply(xi).expect("total witness");
                let back = project_canonical_simplex(&img).expect("canonical vertices");
                assert!(
                    t.delta().carries(tau, &back),
                    "{}: projected decision {back} escapes Δ({tau})",
                    t.name()
                );
            }
        }
    }
}

#[test]
fn unsolvable_direction_consistency() {
    // If T is unsolvable, T* must not become solvable.
    for t in [consensus(3), hourglass()] {
        let c = canonicalize(&t);
        assert!(!solve_act(&t, 1).is_solvable(), "{}", t.name());
        assert!(!solve_act(&c, 1).is_solvable(), "{}*", t.name());
    }
}

#[test]
fn canonical_vertices_project_consistently() {
    let t = simple_example_task();
    let c = canonicalize(&t);
    for w in c.output().vertices() {
        let x = canonical_preimage(w).expect("pair-valued");
        let y = canonical_decision(w).expect("pair-valued");
        // Canonicity: at most one input vertex maps to w at the vertex
        // level, and when one exists it is exactly the paired pre-image.
        // (Vertices reachable only through higher-dimensional images have
        // zero vertex-level pre-images — solo executions never decide
        // them.)
        let ws = Simplex::vertex(w.clone());
        let preimages: Vec<_> = c
            .input()
            .simplices_of_dim(0)
            .filter(|xs| c.delta().image_of(xs).contains(&ws))
            .collect();
        assert!(preimages.len() <= 1, "vertex {w} has several pre-images");
        if let Some(p) = preimages.first() {
            assert_eq!(**p, Simplex::vertex(x));
        }
        assert!(t.output().contains_vertex(&y));
    }
}

#[test]
fn double_canonicalization_is_still_canonical() {
    let t = consensus(3);
    let cc = canonicalize(&canonicalize(&t));
    assert!(is_canonical(&cc));
    // Facet counts stabilize after the first canonicalization.
    assert_eq!(
        canonicalize(&t).output().facet_count(),
        cc.output().facet_count()
    );
}
