//! Variations on the hourglass construction — the ablation study around
//! the splitting deformation that DESIGN.md calls for:
//!
//! * a *double* hourglass (two pinches on one facet) with solos pinned in
//!   three different lobes: two splits, three components, unsolvable;
//! * the same complex with solo freedom: the splitting is identical but
//!   consistent choices exist — solvable (the obstruction is the
//!   *interaction* of pinning and pinches, not the pinches alone);
//! * the original hourglass with its waist *filled*: no LAPs remain and
//!   the task flips to solvable.

use chromata::{analyze, laps, split_all, PipelineOptions};
use chromata_task::{canonicalize, Task};
use chromata_topology::{Complex, Simplex, Vertex};

fn o(c: u8, v: i64) -> Vertex {
    Vertex::of(c, v)
}

fn single_facet_input() -> Complex {
    Complex::from_facets([Simplex::from_iter((0..3).map(|i| Vertex::of(i, 0)))])
}

fn chain_triangles() -> Vec<Simplex> {
    vec![
        // Lobe A.
        Simplex::from_iter([o(0, 0), o(1, 1), o(2, 1)]),
        Simplex::from_iter([o(0, 1), o(1, 1), o(2, 1)]),
        // Lobe B — meets A only at (0,1), C only at (1,5).
        Simplex::from_iter([o(0, 1), o(1, 5), o(2, 2)]),
        // Lobe C.
        Simplex::from_iter([o(0, 2), o(1, 5), o(2, 3)]),
        Simplex::from_iter([o(0, 2), o(1, 6), o(2, 3)]),
    ]
}

/// Edge images: all color-matching faces of the chain (the "rich" edge
/// level, so only the solo level distinguishes the variants).
fn edge_faces(triangles: &[Simplex], tau: &Simplex) -> Vec<Simplex> {
    let colors = tau.colors();
    let mut out = Vec::new();
    for t in triangles {
        let verts: Vec<Vertex> = t
            .iter()
            .filter(|v| colors.contains(v.color()))
            .cloned()
            .collect();
        out.push(Simplex::new(verts));
    }
    out
}

/// The double hourglass with solos pinned in three different lobes.
fn double_hourglass_pinned() -> Task {
    let triangles = chain_triangles();
    Task::from_delta_fn("double-hourglass", single_facet_input(), move |tau| {
        match tau.dimension() {
            2 => triangles.clone(),
            1 => edge_faces(&triangles, tau),
            _ => {
                // P0 in lobe A, P2 in lobe B, P1 in lobe C.
                let pin = match tau.vertices()[0].color().index() {
                    0 => o(0, 0),
                    1 => o(1, 6),
                    _ => o(2, 2),
                };
                vec![Simplex::vertex(pin)]
            }
        }
    })
    .expect("valid task")
}

/// Same complex, full solo freedom.
fn double_hourglass_free() -> Task {
    let triangles = chain_triangles();
    Task::from_facet_delta("double-hourglass-free", single_facet_input(), move |_| {
        triangles.clone()
    })
    .expect("valid task")
}

/// The original hourglass with one extra triangle filling the waist.
fn filled_hourglass() -> Task {
    let base = chromata_task::library::hourglass();
    let filler = Simplex::from_iter([o(0, 1), o(1, 1), o(2, 2)]);
    Task::from_delta_fn("filled-hourglass", base.input().clone(), move |tau| {
        let mut facets: Vec<Simplex> = base.delta().image_of(tau).facets().cloned().collect();
        if tau.dimension() == 2 {
            facets.push(filler.clone());
        }
        facets
    })
    .expect("valid task")
}

#[test]
fn double_hourglass_two_laps_three_components() {
    let t = canonicalize(&double_hourglass_pinned());
    let found = laps(&t);
    assert_eq!(found.len(), 2, "two pinches: {found:?}");
    let out = split_all(&t);
    assert!(out.degenerate.is_none());
    assert_eq!(out.steps.len(), 2);
    assert!(out.task.is_link_connected());
    assert_eq!(
        out.task.output().connected_components().len(),
        3,
        "three lobes separate"
    );
}

#[test]
fn pinned_solos_make_it_unsolvable() {
    let verdict = analyze(&double_hourglass_pinned(), PipelineOptions::default()).verdict;
    assert!(verdict.is_unsolvable(), "{verdict:?}");
    assert!(!chromata::solve_act(&double_hourglass_pinned(), 1).is_solvable());
}

#[test]
fn solo_freedom_makes_the_same_complex_solvable() {
    // Identical output complex and splitting; only the solo level
    // differs. The obstruction is pinning × pinches, not pinches alone.
    let t = double_hourglass_free();
    assert_eq!(laps(&canonicalize(&t)).len(), 2, "same pinches");
    let verdict = analyze(&t, PipelineOptions::default()).verdict;
    assert!(verdict.is_solvable(), "{verdict:?}");
    assert!(chromata::solve_act(&t, 1).is_solvable());
}

#[test]
fn filling_the_waist_restores_solvability() {
    let t = filled_hourglass();
    assert!(
        laps(&canonicalize(&t)).is_empty(),
        "the filled waist reconnects the link"
    );
    let verdict = analyze(&t, PipelineOptions::default()).verdict;
    assert!(verdict.is_solvable(), "{verdict:?}");
    // The unfilled original stays unsolvable (control).
    assert!(analyze(
        &chromata_task::library::hourglass(),
        PipelineOptions::default()
    )
    .verdict
    .is_unsolvable());
}

#[test]
fn splitting_order_does_not_change_the_outcome_shape() {
    // Split starting from either LAP; final facet/component counts agree
    // (the elimination is confluent for the invariants we report).
    let t = canonicalize(&double_hourglass_pinned());
    let found = laps(&t);
    assert_eq!(found.len(), 2);
    let mut results = Vec::new();
    for first in &found {
        let after_first = chromata::split_once(&t, first).expect("non-degenerate");
        let out = split_all(&after_first);
        assert!(out.degenerate.is_none());
        results.push((
            out.task.output().facet_count(),
            out.task.output().connected_components().len(),
        ));
    }
    assert_eq!(results[0], results[1]);
}
