//! Property-based validation of the two-process decider (Prop 5.4)
//! against the ACT baseline, over randomly generated two-process tasks.
//!
//! For 1-dimensional tasks the continuous condition is a *complete*
//! decision procedure; the ACT search at sufficient depth must agree on
//! the solvable side, and must never find maps for tasks the decider
//! rejects.

use proptest::prelude::*;

use chromata::{decide_two_process, solve_act};
use chromata_task::Task;
use chromata_topology::{Complex, Simplex, Vertex};

/// A random two-process task on a single input edge: `Δ(edge)` is a
/// random set of output pairs over a small value pool, solos are the
/// maximal monotone extension optionally thinned by masks.
fn task_from(pairs: &[(i64, i64)], solo_masks: (u8, u8)) -> Option<Task> {
    if pairs.is_empty() {
        return None;
    }
    let input_edge = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]);
    let input = Complex::from_facets([input_edge]);
    let facets: Vec<Simplex> = pairs
        .iter()
        .map(|(a, b)| Simplex::from_iter([Vertex::of(0, *a), Vertex::of(1, *b)]))
        .collect();
    let t = Task::from_facet_delta("random-2p", input.clone(), |_| facets.clone()).ok()?;
    // Thin the solo images: keep the k-th derived vertex iff bit k set
    // (always keep at least one).
    let thin = |img: &Complex, mask: u8| -> Vec<Simplex> {
        let kept: Vec<Simplex> = img
            .vertices()
            .enumerate()
            .filter(|(k, _)| mask >> (k % 8) & 1 == 1)
            .map(|(_, v)| Simplex::vertex(v.clone()))
            .collect();
        if kept.is_empty() {
            vec![Simplex::vertex(
                img.vertices().next().expect("non-empty").clone(),
            )]
        } else {
            kept
        }
    };
    let d0 = thin(
        t.delta().image_of(&Simplex::vertex(Vertex::of(0, 0))),
        solo_masks.0,
    );
    let d1 = thin(
        t.delta().image_of(&Simplex::vertex(Vertex::of(1, 0))),
        solo_masks.1,
    );
    Task::from_delta_fn("random-2p", input, |tau| {
        if tau.dimension() == 1 {
            facets.clone()
        } else if tau.contains(&Vertex::of(0, 0)) {
            d0.clone()
        } else {
            d1.clone()
        }
    })
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solvable_tasks_have_act_witnesses(
        pairs in proptest::collection::vec((0i64..4, 0i64..4), 1..8),
        masks in (1u8.., 1u8..),
    ) {
        let Some(t) = task_from(&pairs, masks) else { return Ok(()); };
        let solvable = decide_two_process(&t);
        if solvable {
            // Output paths here have ≤ 16 edges; Ch³ of an edge has 27
            // segments, enough granularity for any walk the decider found.
            prop_assert!(
                solve_act(&t, 3).is_solvable(),
                "decider says solvable but ACT(≤3) found nothing"
            );
        } else {
            // Soundness of the baseline: no map may exist at any depth we
            // can afford to check.
            prop_assert!(!solve_act(&t, 2).is_solvable());
        }
    }

    #[test]
    fn decider_is_deterministic_and_total(
        pairs in proptest::collection::vec((0i64..4, 0i64..4), 1..8),
        masks in (1u8.., 1u8..),
    ) {
        let Some(t) = task_from(&pairs, masks) else { return Ok(()); };
        let a = decide_two_process(&t);
        let b = decide_two_process(&t);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn full_solo_freedom_tasks_are_solvable(
        pairs in proptest::collection::vec((0i64..4, 0i64..4), 1..8),
    ) {
        // With maximal solo freedom the task is solvable iff some output
        // pair's endpoints are reachable — which the maximal extension
        // guarantees: pick any facet's endpoints as the solo decisions.
        let Some(t) = task_from(&pairs, (0xFF, 0xFF)) else { return Ok(()); };
        prop_assert!(decide_two_process(&t), "maximal extension must be solvable");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthesized_witnesses_validate_and_execute(
        pairs in proptest::collection::vec((0i64..4, 0i64..4), 1..8),
        masks in (1u8.., 1u8..),
    ) {
        use chromata::synthesize_two_process;
        use chromata_runtime::execute_decision_map;

        let Some(t) = task_from(&pairs, masks) else { return Ok(()); };
        match synthesize_two_process(&t) {
            Some((rounds, map)) => {
                prop_assert!(decide_two_process(&t), "synthesis implies solvable");
                // Execute the synthesized protocol end to end: every
                // interleaving on every participant set must respect Δ.
                for sigma in t.input().facets() {
                    for tau in sigma.faces() {
                        let n = execute_decision_map(&t, &map, rounds, &tau, 5_000_000)
                            .expect("within budget");
                        prop_assert!(n >= 1);
                    }
                }
            }
            None => prop_assert!(!decide_two_process(&t), "no synthesis implies unsolvable"),
        }
    }
}

#[test]
fn synthesis_matches_decider_on_controls() {
    use chromata::synthesize_two_process;
    use chromata_task::library::{constant_task, identity_task, two_process_consensus};
    assert!(synthesize_two_process(&identity_task(2)).is_some());
    assert!(synthesize_two_process(&constant_task(2)).is_some());
    assert!(synthesize_two_process(&two_process_consensus()).is_none());
}
