//! Cross-validation of the paper's characterization (Theorem 5.1 pipeline)
//! against the Herlihy–Shavit ACT baseline, across the task library.
//!
//! Solvable verdicts must be confirmed by an explicit chromatic decision
//! map from some `Ch^r(I)`; unsolvable verdicts must be consistent with
//! the bounded search failing.

use chromata::subdivision::iterated_chromatic_subdivision;
use chromata::{analyze, solve_act, validate_witness, ActOutcome, PipelineOptions, Verdict};
use chromata_task::library::{
    adaptive_renaming, approximate_agreement, consensus, constant_task, disk_complex, hourglass,
    identity_task, leader_election, loop_agreement, majority_consensus, pinwheel,
    simple_example_task, sphere_complex, two_process_consensus, two_set_agreement,
};
use chromata_task::Task;

fn pipeline_verdict(t: &Task) -> Verdict {
    analyze(t, PipelineOptions::default()).verdict
}

#[test]
fn solvable_tasks_confirmed_by_act_witness() {
    for (t, rounds) in [
        (identity_task(3), 1),
        (constant_task(3), 1),
        (simple_example_task(), 1),
        (loop_agreement("disk", disk_complex()), 1),
    ] {
        assert!(
            pipeline_verdict(&t).is_solvable(),
            "{} should be pipeline-solvable",
            t.name()
        );
        match solve_act(&t, rounds) {
            ActOutcome::Solvable { rounds, map } => {
                let sub = iterated_chromatic_subdivision(t.input(), rounds);
                assert!(
                    validate_witness(&sub, &t, &map),
                    "{}: ACT witness failed re-validation",
                    t.name()
                );
            }
            other => {
                panic!(
                    "{}: pipeline says solvable but ACT returned {other:?}",
                    t.name()
                )
            }
        }
    }
}

#[test]
fn sphere_loop_agreement_agrees() {
    // Larger solvable case kept separate (bigger search space).
    let t = loop_agreement("sphere", sphere_complex());
    assert!(pipeline_verdict(&t).is_solvable());
    assert!(solve_act(&t, 1).is_solvable());
}

#[test]
fn unsolvable_tasks_never_get_act_witnesses() {
    for t in [
        hourglass(),
        majority_consensus(),
        pinwheel(),
        two_set_agreement(),
        consensus(3),
        two_process_consensus(),
    ] {
        assert!(
            pipeline_verdict(&t).is_unsolvable(),
            "{} should be pipeline-unsolvable",
            t.name()
        );
        assert!(
            !solve_act(&t, 1).is_solvable(),
            "{}: ACT found a map for an unsolvable task — soundness bug",
            t.name()
        );
    }
}

#[test]
fn act_round_budget_matters_for_renaming() {
    // The pipeline certifies adaptive renaming directly; the ACT baseline
    // is exhausted at r ≤ 1 and only finds a decision map at r = 2 — the
    // round-guessing problem the paper's characterization removes.
    let t = adaptive_renaming();
    assert!(pipeline_verdict(&t).is_solvable());
    assert!(!solve_act(&t, 1).is_solvable());
    match solve_act(&t, 2) {
        ActOutcome::Solvable { rounds, map } => {
            assert_eq!(rounds, 2);
            let sub = iterated_chromatic_subdivision(t.input(), rounds);
            assert!(validate_witness(&sub, &t, &map));
        }
        other => panic!("adaptive renaming solvable at r = 2, got {other:?}"),
    }
}

#[test]
fn leader_election_and_approximate_agreement_cross_checked() {
    let le = leader_election();
    assert!(pipeline_verdict(&le).is_unsolvable());
    assert!(!solve_act(&le, 1).is_solvable());
    let aa = approximate_agreement(1);
    assert!(pipeline_verdict(&aa).is_solvable());
    assert!(solve_act(&aa, 1).is_solvable());
}

#[test]
fn two_process_decider_agrees_with_act() {
    use chromata::decide_two_process;
    for (t, expect) in [
        (identity_task(2), true),
        (constant_task(2), true),
        (two_process_consensus(), false),
    ] {
        assert_eq!(decide_two_process(&t), expect, "{}", t.name());
        assert_eq!(solve_act(&t, 2).is_solvable(), expect, "{}", t.name());
    }
}

#[test]
fn canonical_and_split_tasks_get_same_verdict() {
    use chromata_task::canonicalize;
    // Theorem 3.1 + Lemma 4.2 at the level of verdicts: the pipeline run
    // on the already-canonicalized (or already-split) task agrees.
    for t in [hourglass(), pinwheel(), identity_task(3)] {
        let v1 = pipeline_verdict(&t);
        let v2 = pipeline_verdict(&canonicalize(&t));
        assert_eq!(
            v1.is_solvable(),
            v2.is_solvable(),
            "{}: canonicalization changed the verdict",
            t.name()
        );
        assert_eq!(v1.is_unsolvable(), v2.is_unsolvable(), "{}", t.name());
    }
}

#[test]
fn solvable_tasks_have_solvable_two_process_restrictions() {
    // Necessary condition: a protocol for the full task also solves every
    // participant restriction, so pipeline-Solvable tasks must pass the
    // complete two-process decider (Prop 5.4) on all three edges.
    use chromata::decide_two_process;
    use chromata_task::library::{adaptive_renaming, approximate_agreement};
    use chromata_task::two_process_restrictions;
    for t in [
        identity_task(3),
        constant_task(3),
        adaptive_renaming(),
        approximate_agreement(2),
    ] {
        assert!(pipeline_verdict(&t).is_solvable(), "{}", t.name());
        for sub in two_process_restrictions(&t) {
            assert!(
                decide_two_process(&sub),
                "{}: solvable task with unsolvable restriction {}",
                t.name(),
                sub.name()
            );
        }
    }
    // The contrapositive catches the hourglass immediately: its P0–P1
    // restriction is a solvable path task, but P1–P2 and P0–P2 are too —
    // the obstruction is genuinely three-dimensional.
    use chromata_task::library::hourglass;
    for sub in two_process_restrictions(&hourglass()) {
        assert!(
            decide_two_process(&sub),
            "hourglass restrictions are all solvable: the 3-process pipeline is needed"
        );
    }
}
