//! Exhaustive and randomized schedulers over asynchronous processes.
//!
//! Processes are deterministic state machines taking one atomic shared-
//! memory operation per step (§2.1); the *exhaustive* scheduler is a
//! state-memoizing model checker that enumerates every interleaving (and
//! every internal nondeterministic branch, used by the adversarial
//! oracle), collecting the set of reachable terminal outcomes. This is
//! strictly stronger than testing on real hardware: a property checked
//! here holds on **all** schedules.
//!
//! Every failure mode is structured: budget exhaustion, cooperative
//! cancellation, stuck processes and panicking workers all surface as
//! [`ExploreError`] variants carrying a **replayable [`Trace`]** — the
//! exact schedule (steps plus injected crash faults) that reproduces the
//! failing state from the initial configuration, rendered as a one-line
//! string (see [`Trace`]'s `Display`/`FromStr`).

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::str::FromStr;
use std::sync::Arc;

use chromata_topology::{
    try_par_map, Budget, BuildStructuralHasher, CancelToken, Interrupt, Vertex,
};

use crate::memory::Memory;

/// An asynchronous process: a deterministic (up to explicit branching)
/// state machine performing one atomic operation per step.
///
/// States are hashed for memoization, so implementations must keep
/// `Hash` consistent with `Eq` (derive both).
pub trait Process: Clone + Ord + Hash {
    /// Shared immutable configuration (the task, oracle strategy, …) —
    /// excluded from the memoized state.
    type Config;

    /// The decided output, if the process has terminated.
    fn decided(&self) -> Option<&Vertex>;

    /// Performs one atomic step, returning every possible successor
    /// (more than one only for nondeterministic steps such as oracle
    /// calls). Must return an empty vector only when decided.
    fn step(&self, config: &Self::Config, memory: &Memory) -> Vec<(Self, Memory)>;

    /// Whether this process has taken at least one step. Used by the
    /// crash-fault analysis ([`crate::fault`]) to decide *participation*:
    /// a process that crashes before its first step never announced its
    /// input, so correctness is judged against the remaining participants
    /// only. The default is conservatively `true` (always counted as a
    /// participant), which is sound for any implementation.
    fn has_started(&self) -> bool {
        true
    }
}

/// A terminal outcome: the decided vertex of each process, in process
/// order.
pub type Outcome = Vec<Vertex>;

/// The result of exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Explored {
    /// Every reachable terminal outcome.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct (process states, memory) system states visited.
    pub states: usize,
}

/// One event of a recorded schedule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum TraceEvent {
    /// A process took one atomic step, choosing the given successor
    /// branch (0 for deterministic steps).
    Step {
        /// Index of the process that took the step.
        process: usize,
        /// Index of the successor branch chosen.
        branch: usize,
    },
    /// A process crashed (permanently stops taking steps).
    Crash {
        /// Index of the crashed process.
        process: usize,
    },
}

/// A recorded schedule: the exact step sequence plus injected crash
/// faults. Replayable via [`replay`] (failure-free traces) or
/// [`crate::fault::replay_trace`] (traces with crashes).
///
/// The `Display`/`FromStr` pair is a compact one-line format suitable for
/// bug reports: steps are `process.branch`, crashes are `!process`,
/// separated by spaces; the empty trace is `-`. Example: `0.0 1.2 !2 0.1`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Trace(pub Vec<TraceEvent>);

impl Trace {
    /// Number of events (steps and crashes) in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "-");
        }
        for (k, ev) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            match ev {
                TraceEvent::Step { process, branch } => write!(f, "{process}.{branch}")?,
                TraceEvent::Crash { process } => write!(f, "!{process}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(Trace::default());
        }
        let mut events = Vec::new();
        for tok in s.split_whitespace() {
            if let Some(p) = tok.strip_prefix('!') {
                let process = p.parse().map_err(|_| format!("bad crash event `{tok}`"))?;
                events.push(TraceEvent::Crash { process });
            } else {
                let (p, b) = tok
                    .split_once('.')
                    .ok_or_else(|| format!("bad step event `{tok}` (want `proc.branch`)"))?;
                let process = p.parse().map_err(|_| format!("bad process in `{tok}`"))?;
                let branch = b.parse().map_err(|_| format!("bad branch in `{tok}`"))?;
                events.push(TraceEvent::Step { process, branch });
            }
        }
        Ok(Trace(events))
    }
}

/// Errors from exploration. Every variant that can point at a concrete
/// schedule carries a replayable [`Trace`] to the offending state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExploreError {
    /// The state budget was exhausted; the trace reaches one of the
    /// still-unexplored frontier states.
    StateBudgetExceeded {
        /// The state budget that was exceeded.
        max_states: usize,
        /// Schedule reaching a frontier state at the budget boundary.
        trace: Trace,
    },
    /// A process ran for more steps than the bound without deciding
    /// (possible livelock or runaway).
    StepBoundExceeded(usize),
    /// An undecided, non-crashed process returned no successors — it can
    /// never decide on this schedule.
    StuckProcess {
        /// Index of the stuck process.
        pid: usize,
        /// Schedule reaching the stuck state.
        trace: Trace,
    },
    /// A process `step` (or other worker code) panicked; the panic was
    /// caught and converted into this structured error.
    WorkerPanicked {
        /// The panic payload rendered as text.
        message: String,
        /// Schedule reaching the state whose expansion panicked.
        trace: Trace,
    },
    /// The exploration was cancelled or ran past its deadline.
    Interrupted {
        /// Whether cancellation or the deadline fired.
        interrupt: Interrupt,
        /// Distinct states visited before interruption.
        states: usize,
        /// Schedule reaching one in-flight frontier state (partial
        /// diagnostic; empty if interruption hit before the first level).
        trace: Trace,
    },
    /// A replayed trace does not belong to this system (references a
    /// decided/crashed process or an out-of-range branch).
    InvalidTrace {
        /// Index of the offending event.
        at: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A decision map under execution has no assignment for a reachable
    /// protocol vertex, so the run cannot decide.
    IncompleteDecisionMap {
        /// The unmapped vertex, rendered as text.
        vertex: String,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateBudgetExceeded { max_states, trace } => write!(
                f,
                "exploration exceeded the state budget of {max_states}; frontier trace: {trace}"
            ),
            ExploreError::StepBoundExceeded(n) => {
                write!(f, "a run exceeded {n} steps without terminating")
            }
            ExploreError::StuckProcess { pid, trace } => write!(
                f,
                "process {pid} is undecided but has no successors; trace: {trace}"
            ),
            ExploreError::WorkerPanicked { message, trace } => {
                write!(f, "worker panicked ({message}); trace: {trace}")
            }
            ExploreError::Interrupted {
                interrupt,
                states,
                trace,
            } => write!(
                f,
                "exploration {interrupt} after {states} states; frontier trace: {trace}"
            ),
            ExploreError::InvalidTrace { at, reason } => {
                write!(f, "invalid trace at event {at}: {reason}")
            }
            ExploreError::IncompleteDecisionMap { vertex } => {
                write!(
                    f,
                    "decision map has no assignment for protocol vertex {vertex}"
                )
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// A persistent (structurally shared) schedule suffix: each explored
/// state keeps an `Arc` link to its parent's trace, so recording costs
/// one small allocation per state and full traces are materialized only
/// on error paths.
pub(crate) type TraceLink = Option<Arc<TraceNode>>;

/// One deduplicated BFS level: interned states paired with the trace
/// link of the first schedule that reached them.
pub(crate) type Level<S> = Vec<(Arc<S>, TraceLink)>;

/// One node of the shared trace list.
pub(crate) struct TraceNode {
    event: TraceEvent,
    parent: TraceLink,
}

/// Extends a trace link by one event.
pub(crate) fn trace_push(parent: &TraceLink, event: TraceEvent) -> TraceLink {
    Some(Arc::new(TraceNode {
        event,
        parent: parent.clone(),
    }))
}

/// Materializes a linked trace into an ordered [`Trace`].
pub(crate) fn trace_collect(link: &TraceLink) -> Trace {
    let mut events = Vec::new();
    let mut cur = link;
    while let Some(node) = cur {
        events.push(node.event);
        cur = &node.parent;
    }
    events.reverse();
    Trace(events)
}

/// What a single state contributed to its breadth-first level: either a
/// terminal outcome or its successor states (with their trace links).
enum LevelStep<P> {
    Terminal(Outcome),
    Expanded(Vec<(Vec<P>, Memory, TraceLink)>),
}

/// Exhaustively explores all interleavings (and internal branches) from
/// the initial system state, memoizing visited states.
///
/// Unlimited except for `max_states` and `max_depth`; see
/// [`explore_governed`] for deadline- and cancellation-aware exploration.
///
/// # Errors
///
/// Returns an error if more than `max_states` distinct states are
/// visited, or some path exceeds `max_depth` steps without terminating.
pub fn explore<P>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    max_states: usize,
    max_depth: usize,
) -> Result<Explored, ExploreError>
where
    P: Process + Send + Sync,
    P::Config: Sync,
{
    explore_governed(
        processes,
        memory,
        config,
        &Budget::unlimited()
            .with_max_states(max_states)
            .with_max_steps(max_depth),
        &CancelToken::new(),
    )
}

/// [`explore`] under a full [`Budget`] and [`CancelToken`]: the search is
/// additionally bounded by the budget's wall-clock deadline and can be
/// cancelled cooperatively from another thread (both are checked once per
/// breadth-first level).
///
/// The search is a level-synchronous breadth-first traversal: each level
/// of distinct unvisited states is expanded as a batch (in parallel with
/// the `parallel` feature; [`try_par_map`] preserves batch order, so the
/// outcome and state sets are identical either way). Worker panics are
/// caught and surfaced as [`ExploreError::WorkerPanicked`] with the
/// schedule that reaches the offending state.
///
/// # Errors
///
/// Structured [`ExploreError`]s for budget exhaustion, interruption,
/// stuck processes and worker panics.
pub fn explore_governed<P>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    budget: &Budget,
    cancel: &CancelToken,
) -> Result<Explored, ExploreError>
where
    P: Process + Send + Sync,
    P::Config: Sync,
{
    // Keyed by the structural (FNV) hasher: interned vertices/simplices
    // replay precomputed fingerprints, so state hashing is a cheap mix
    // rather than SipHash over the whole state. States are `Arc`-shared
    // between the visited set and the work list — one hash and zero deep
    // clones per deduplication. Trace links ride alongside (outside the
    // memoized key): the first schedule reaching each state is kept as
    // its replayable witness.
    let mut visited: HashSet<Arc<(Vec<P>, Memory)>, BuildStructuralHasher> = HashSet::default();
    let mut outcomes: BTreeSet<Outcome> = BTreeSet::new();
    let mut frontier: Vec<(Vec<P>, Memory, TraceLink)> = vec![(processes, memory, None)];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        if let Err(interrupt) = budget.check(cancel) {
            return Err(ExploreError::Interrupted {
                interrupt,
                states: visited.len(),
                trace: trace_collect(&frontier[0].2),
            });
        }
        // Deduplicate this level against everything seen so far.
        let mut level: Level<(Vec<P>, Memory)> = Vec::with_capacity(frontier.len());
        for (procs, mem, trace) in frontier.drain(..) {
            let st = Arc::new((procs, mem));
            if visited.insert(Arc::clone(&st)) {
                if visited.len() > budget.max_states {
                    return Err(ExploreError::StateBudgetExceeded {
                        max_states: budget.max_states,
                        trace: trace_collect(&trace),
                    });
                }
                level.push((st, trace));
            }
        }
        let expanded = try_par_map(&level, |(st, trace)| {
            let (procs, mem) = st.as_ref();
            let undecided: Vec<usize> = procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.decided().is_none())
                .map(|(i, _)| i)
                .collect();
            if undecided.is_empty() {
                let outcome: Outcome = procs.iter().filter_map(|p| p.decided().cloned()).collect();
                return Ok(LevelStep::Terminal(outcome));
            }
            let mut next = Vec::new();
            for i in undecided {
                let successors = procs[i].step(config, mem);
                if successors.is_empty() {
                    return Err(i);
                }
                for (branch, (next_p, next_mem)) in successors.into_iter().enumerate() {
                    let mut next_procs = procs.clone();
                    next_procs[i] = next_p;
                    let link = trace_push(trace, TraceEvent::Step { process: i, branch });
                    next.push((next_procs, next_mem, link));
                }
            }
            Ok(LevelStep::Expanded(next))
        })
        .map_err(|panic| ExploreError::WorkerPanicked {
            message: panic.message.clone(),
            trace: trace_collect(&level[panic.index].1),
        })?;
        let mut any_expansion = false;
        for (step, (_, trace)) in expanded.into_iter().zip(&level) {
            match step {
                Ok(LevelStep::Terminal(o)) => {
                    outcomes.insert(o);
                }
                Ok(LevelStep::Expanded(next)) => {
                    any_expansion = true;
                    frontier.extend(next);
                }
                Err(pid) => {
                    return Err(ExploreError::StuckProcess {
                        pid,
                        trace: trace_collect(trace),
                    });
                }
            }
        }
        if any_expansion {
            // A non-terminal state at depth `max_steps` means some path
            // needs more than `max_steps` steps.
            if depth >= budget.max_steps {
                return Err(ExploreError::StepBoundExceeded(budget.max_steps));
            }
            depth += 1;
        }
    }
    Ok(Explored {
        outcomes,
        states: visited.len(),
    })
}

/// Searches all interleavings for a terminal outcome violating
/// `acceptable`, returning the exact schedule that produces it — the
/// model checker's counterexample extractor.
///
/// Returns `None` if every reachable terminal outcome is acceptable.
///
/// # Errors
///
/// Returns an error when the budgets are exceeded (same as [`explore`]).
pub fn find_violation<P, F>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    max_states: usize,
    max_depth: usize,
    mut acceptable: F,
) -> Result<Option<(Trace, Outcome)>, ExploreError>
where
    P: Process,
    F: FnMut(&Outcome) -> bool,
{
    let mut visited: HashSet<(Vec<P>, Memory), BuildStructuralHasher> = HashSet::default();
    let mut stack: Vec<(Vec<P>, Memory, Vec<TraceEvent>)> = vec![(processes, memory, Vec::new())];
    while let Some((procs, mem, trace)) = stack.pop() {
        if !visited.insert((procs.clone(), mem.clone())) {
            continue;
        }
        if visited.len() > max_states {
            return Err(ExploreError::StateBudgetExceeded {
                max_states,
                trace: Trace(trace),
            });
        }
        if procs.iter().all(|p| p.decided().is_some()) {
            let outcome: Outcome = procs.iter().filter_map(|p| p.decided().cloned()).collect();
            if !acceptable(&outcome) {
                return Ok(Some((Trace(trace), outcome)));
            }
            continue;
        }
        if trace.len() >= max_depth {
            return Err(ExploreError::StepBoundExceeded(max_depth));
        }
        for (i, p) in procs.iter().enumerate() {
            if p.decided().is_some() {
                continue;
            }
            let successors = p.step(config, &mem);
            if successors.is_empty() {
                return Err(ExploreError::StuckProcess {
                    pid: i,
                    trace: Trace(trace),
                });
            }
            for (branch, (next_p, next_mem)) in successors.into_iter().enumerate() {
                let mut next_procs = procs.clone();
                next_procs[i] = next_p;
                let mut next_trace = trace.clone();
                next_trace.push(TraceEvent::Step { process: i, branch });
                stack.push((next_procs, next_mem, next_trace));
            }
        }
    }
    Ok(None)
}

/// Replays a recorded failure-free trace exactly, returning the outcome.
///
/// Traces containing crash events are replayed with
/// [`crate::fault::replay_trace`], which returns the partial outcome.
///
/// # Errors
///
/// Returns [`ExploreError::StepBoundExceeded`] if the trace ends before
/// all processes decide, and [`ExploreError::InvalidTrace`] if an event
/// references a decided/crashed process or an out-of-range branch (the
/// trace does not belong to this system).
pub fn replay<P: Process>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    trace: &Trace,
) -> Result<Outcome, ExploreError> {
    let partial = crate::fault::replay_trace(processes, memory, config, trace)?;
    partial
        .complete()
        .ok_or(ExploreError::StepBoundExceeded(trace.len()))
}

/// Runs a single pseudo-random schedule (uniform choice among undecided
/// processes; nondeterministic branches resolved uniformly), returning
/// the outcome.
///
/// # Errors
///
/// Returns [`ExploreError::StepBoundExceeded`] if the run does not
/// terminate within `max_steps`, and [`ExploreError::StuckProcess`] if an
/// undecided process has no successors.
pub fn run_random<P: Process>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    seed: u64,
    max_steps: usize,
) -> Result<Outcome, ExploreError> {
    let (_, partial) = crate::fault::run_random_faulted(
        processes,
        memory,
        config,
        seed,
        max_steps,
        &crate::fault::FaultPlan::none(),
    )?;
    partial
        .complete()
        .ok_or(ExploreError::StepBoundExceeded(max_steps))
}

/// Runs one specific schedule: at each step the next undecided process in
/// `schedule` takes a step (entries naming decided processes are
/// skipped); branches are resolved by always taking the first successor.
/// Useful for reproducing a particular interleaving.
///
/// # Errors
///
/// Returns [`ExploreError::StepBoundExceeded`] if the schedule ends
/// before all processes decide, and [`ExploreError::StuckProcess`] if an
/// undecided process has no successors.
pub fn run_schedule<P: Process>(
    mut processes: Vec<P>,
    mut memory: Memory,
    config: &P::Config,
    schedule: &[usize],
) -> Result<Outcome, ExploreError> {
    let mut trace = Vec::new();
    for &i in schedule {
        if processes.iter().all(|p| p.decided().is_some()) {
            break;
        }
        if processes[i].decided().is_some() {
            continue;
        }
        let successors = processes[i].step(config, &memory);
        let Some((p, m)) = successors.into_iter().next() else {
            return Err(ExploreError::StuckProcess {
                pid: i,
                trace: Trace(trace),
            });
        };
        trace.push(TraceEvent::Step {
            process: i,
            branch: 0,
        });
        processes[i] = p;
        memory = m;
    }
    let outcome: Option<Outcome> = processes.iter().map(|p| p.decided().cloned()).collect();
    outcome.ok_or(ExploreError::StepBoundExceeded(schedule.len()))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::cell::Cell;

    /// A toy process: writes its id, scans, decides on the count of
    /// writers it saw (encoded as a vertex value).
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub(crate) struct Toy {
        pub(crate) id: usize,
        pub(crate) phase: u8,
        pub(crate) decided: Option<Vertex>,
    }

    impl Process for Toy {
        type Config = ();

        fn decided(&self) -> Option<&Vertex> {
            self.decided.as_ref()
        }

        fn has_started(&self) -> bool {
            self.phase > 0
        }

        fn step(&self, (): &(), memory: &Memory) -> Vec<(Self, Memory)> {
            match self.phase {
                0 => {
                    let mut m = memory.clone();
                    m.update("r", self.id, Cell::Int(1));
                    vec![(
                        Toy {
                            phase: 1,
                            ..self.clone()
                        },
                        m,
                    )]
                }
                _ => {
                    let seen = memory.present("r").len() as i64;
                    vec![(
                        Toy {
                            decided: Some(Vertex::of(self.id as u8, seen)),
                            ..self.clone()
                        },
                        memory.clone(),
                    )]
                }
            }
        }
    }

    pub(crate) fn toys(n: usize) -> (Vec<Toy>, Memory) {
        (
            (0..n)
                .map(|id| Toy {
                    id,
                    phase: 0,
                    decided: None,
                })
                .collect(),
            Memory::with_objects(&["r"], n),
        )
    }

    #[test]
    fn exhaustive_finds_all_view_combinations() {
        let (procs, mem) = toys(2);
        let r = explore(procs, mem, &(), 10_000, 100).expect("small system");
        // Each process sees 1 or 2 writes, but not both seeing 1 (the
        // later scanner must see both writes).
        let as_counts: BTreeSet<Vec<i64>> = r
            .outcomes
            .iter()
            .map(|o| o.iter().map(|v| v.value().as_int().unwrap()).collect())
            .collect();
        assert!(as_counts.contains(&vec![1, 2]));
        assert!(as_counts.contains(&vec![2, 1]));
        assert!(as_counts.contains(&vec![2, 2]));
        assert!(!as_counts.contains(&vec![1, 1]), "impossible outcome");
        assert_eq!(as_counts.len(), 3);
    }

    #[test]
    fn random_runs_terminate_and_agree_with_exhaustive() {
        let (procs, mem) = toys(3);
        let all = explore(procs.clone(), mem.clone(), &(), 100_000, 1000)
            .expect("small system")
            .outcomes;
        for seed in 0..50 {
            let o = run_random(procs.clone(), mem.clone(), &(), seed, 1000).expect("terminates");
            assert!(
                all.contains(&o),
                "random outcome {o:?} not in exhaustive set"
            );
        }
    }

    #[test]
    fn schedule_runner_is_deterministic() {
        let (procs, mem) = toys(2);
        let sched = [0usize, 0, 1, 1];
        let a = run_schedule(procs.clone(), mem.clone(), &(), &sched).unwrap();
        let b = run_schedule(procs, mem, &(), &sched).unwrap();
        assert_eq!(a, b);
        // P0 runs solo first: sees only itself.
        assert_eq!(a[0].value().as_int(), Some(1));
        assert_eq!(a[1].value().as_int(), Some(2));
    }

    #[test]
    fn violation_finder_returns_replayable_traces() {
        // Ask for an impossible property: "P0 always sees 2 writers" —
        // the solo-start schedule violates it; the returned trace must
        // replay to the same outcome.
        let (procs, mem) = toys(2);
        let found = find_violation(procs.clone(), mem.clone(), &(), 10_000, 100, |o| {
            o[0].value().as_int() == Some(2)
        })
        .expect("within budget");
        let (trace, outcome) = found.expect("a violating schedule exists");
        assert_eq!(outcome[0].value().as_int(), Some(1));
        let replayed = replay(procs, mem, &(), &trace).expect("trace is complete");
        assert_eq!(replayed, outcome);
    }

    #[test]
    fn violation_finder_confirms_valid_properties() {
        // "someone sees both writers" holds on every schedule.
        let (procs, mem) = toys(2);
        let found = find_violation(procs, mem, &(), 10_000, 100, |o| {
            o.iter().any(|v| v.value().as_int() == Some(2))
        })
        .expect("within budget");
        assert!(found.is_none());
    }

    #[test]
    fn budget_errors() {
        let (procs, mem) = toys(3);
        match explore(procs.clone(), mem.clone(), &(), 2, 100) {
            Err(ExploreError::StateBudgetExceeded {
                max_states: 2,
                trace,
            }) => {
                // The trace must replay to a real (reachable) state.
                assert!(trace.len() <= 100);
            }
            other => panic!("expected state-budget error, got {other:?}"),
        }
        assert!(matches!(
            run_schedule(procs, mem, &(), &[0]),
            Err(ExploreError::StepBoundExceeded(_))
        ));
    }

    #[test]
    fn cancellation_interrupts_exploration() {
        let (procs, mem) = toys(3);
        let cancel = CancelToken::new();
        cancel.cancel();
        match explore_governed(procs, mem, &(), &Budget::unlimited(), &cancel) {
            Err(ExploreError::Interrupted {
                interrupt: Interrupt::Cancelled,
                ..
            }) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_interrupts_exploration() {
        let (procs, mem) = toys(3);
        let budget = Budget::unlimited().with_deadline_in(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        match explore_governed(procs, mem, &(), &budget, &CancelToken::new()) {
            Err(ExploreError::Interrupted {
                interrupt: Interrupt::DeadlineExceeded,
                ..
            }) => {}
            other => panic!("expected deadline interruption, got {other:?}"),
        }
    }

    #[test]
    fn worker_panics_become_structured_errors_with_replayable_traces() {
        /// Panics when stepped after the shared memory holds 2 writes.
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        struct Grenade(Toy);

        impl Process for Grenade {
            type Config = ();

            fn decided(&self) -> Option<&Vertex> {
                self.0.decided()
            }

            fn step(&self, (): &(), memory: &Memory) -> Vec<(Self, Memory)> {
                assert!(
                    memory.present("r").len() < 2 || self.0.phase == 0,
                    "two writers observed"
                );
                self.0
                    .step(&(), memory)
                    .into_iter()
                    .map(|(t, m)| (Grenade(t), m))
                    .collect()
            }
        }

        let (toys, mem) = toys(2);
        let procs: Vec<Grenade> = toys.into_iter().map(Grenade).collect();
        match explore(procs.clone(), mem.clone(), &(), 10_000, 100) {
            Err(ExploreError::WorkerPanicked { message, trace }) => {
                assert!(message.contains("two writers observed"), "{message}");
                // The trace replays to the panicking state: stepping every
                // process once from the replayed state must panic again.
                assert!(!trace.is_empty());
                let line = trace.to_string();
                let parsed: Trace = line.parse().expect("round-trip");
                assert_eq!(parsed, trace);
            }
            other => panic!("expected a structured worker panic, got {other:?}"),
        }
    }

    #[test]
    fn trace_format_round_trips() {
        let t = Trace(vec![
            TraceEvent::Step {
                process: 0,
                branch: 2,
            },
            TraceEvent::Crash { process: 1 },
            TraceEvent::Step {
                process: 2,
                branch: 0,
            },
        ]);
        let s = t.to_string();
        assert_eq!(s, "0.2 !1 2.0");
        assert_eq!(s.parse::<Trace>().unwrap(), t);
        assert_eq!("-".parse::<Trace>().unwrap(), Trace::default());
        assert_eq!(Trace::default().to_string(), "-");
        assert!("x.y".parse::<Trace>().is_err());
        assert!("5".parse::<Trace>().is_err());
        assert!("!x".parse::<Trace>().is_err());
    }
}
