//! Exhaustive and randomized schedulers over asynchronous processes.
//!
//! Processes are deterministic state machines taking one atomic shared-
//! memory operation per step (§2.1); the *exhaustive* scheduler is a
//! state-memoizing model checker that enumerates every interleaving (and
//! every internal nondeterministic branch, used by the adversarial
//! oracle), collecting the set of reachable terminal outcomes. This is
//! strictly stronger than testing on real hardware: a property checked
//! here holds on **all** schedules.

use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;

use chromata_topology::{par_map, BuildStructuralHasher, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::memory::Memory;

/// An asynchronous process: a deterministic (up to explicit branching)
/// state machine performing one atomic operation per step.
///
/// States are hashed for memoization, so implementations must keep
/// `Hash` consistent with `Eq` (derive both).
pub trait Process: Clone + Ord + Hash {
    /// Shared immutable configuration (the task, oracle strategy, …) —
    /// excluded from the memoized state.
    type Config;

    /// The decided output, if the process has terminated.
    fn decided(&self) -> Option<&Vertex>;

    /// Performs one atomic step, returning every possible successor
    /// (more than one only for nondeterministic steps such as oracle
    /// calls). Must return an empty vector only when decided.
    fn step(&self, config: &Self::Config, memory: &Memory) -> Vec<(Self, Memory)>;
}

/// A terminal outcome: the decided vertex of each process, in process
/// order.
pub type Outcome = Vec<Vertex>;

/// The result of exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Explored {
    /// Every reachable terminal outcome.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct (process states, memory) system states visited.
    pub states: usize,
}

/// Errors from exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExploreError {
    /// The state budget was exhausted.
    StateBudgetExceeded(usize),
    /// A process ran for more steps than the bound without deciding
    /// (possible livelock or runaway).
    StepBoundExceeded(usize),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateBudgetExceeded(n) => {
                write!(f, "exploration exceeded the state budget of {n}")
            }
            ExploreError::StepBoundExceeded(n) => {
                write!(f, "a run exceeded {n} steps without terminating")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// What a single state contributed to its breadth-first level: either a
/// terminal outcome or its successor states.
enum LevelStep<P> {
    Terminal(Outcome),
    Expanded(Vec<(Vec<P>, Memory)>),
}

/// Exhaustively explores all interleavings (and internal branches) from
/// the initial system state, memoizing visited states.
///
/// The search is a level-synchronous breadth-first traversal: each level
/// of distinct unvisited states is expanded as a batch (in parallel with
/// the `parallel` feature; [`par_map`] preserves batch order, so the
/// outcome and state sets are identical either way).
///
/// # Errors
///
/// Returns an error if more than `max_states` distinct states are
/// visited, or some path exceeds `max_depth` steps without terminating.
pub fn explore<P>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    max_states: usize,
    max_depth: usize,
) -> Result<Explored, ExploreError>
where
    P: Process + Send + Sync,
    P::Config: Sync,
{
    // Keyed by the structural (FNV) hasher: interned vertices/simplices
    // replay precomputed fingerprints, so state hashing is a cheap mix
    // rather than SipHash over the whole state. States are `Arc`-shared
    // between the visited set and the work list — one hash and zero deep
    // clones per deduplication.
    let mut visited: HashSet<std::sync::Arc<(Vec<P>, Memory)>, BuildStructuralHasher> =
        HashSet::default();
    let mut outcomes: BTreeSet<Outcome> = BTreeSet::new();
    let mut frontier: Vec<(Vec<P>, Memory)> = vec![(processes, memory)];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        // Deduplicate this level against everything seen so far.
        let mut level: Vec<std::sync::Arc<(Vec<P>, Memory)>> = Vec::with_capacity(frontier.len());
        for st in frontier.drain(..) {
            let st = std::sync::Arc::new(st);
            if visited.insert(std::sync::Arc::clone(&st)) {
                if visited.len() > max_states {
                    return Err(ExploreError::StateBudgetExceeded(max_states));
                }
                level.push(st);
            }
        }
        let expanded = par_map(&level, |st| {
            let (procs, mem) = st.as_ref();
            if procs.iter().all(|p| p.decided().is_some()) {
                return LevelStep::Terminal(
                    procs
                        .iter()
                        .map(|p| p.decided().expect("all decided").clone())
                        .collect(),
                );
            }
            let mut next = Vec::new();
            for (i, p) in procs.iter().enumerate() {
                if p.decided().is_some() {
                    continue;
                }
                let successors = p.step(config, mem);
                assert!(
                    !successors.is_empty(),
                    "undecided process returned no successors"
                );
                for (next_p, next_mem) in successors {
                    let mut next_procs = procs.clone();
                    next_procs[i] = next_p;
                    next.push((next_procs, next_mem));
                }
            }
            LevelStep::Expanded(next)
        });
        let mut any_expansion = false;
        for step in expanded {
            match step {
                LevelStep::Terminal(o) => {
                    outcomes.insert(o);
                }
                LevelStep::Expanded(next) => {
                    any_expansion = true;
                    frontier.extend(next);
                }
            }
        }
        if any_expansion {
            // A non-terminal state at depth `max_depth` means some path
            // needs more than `max_depth` steps.
            if depth >= max_depth {
                return Err(ExploreError::StepBoundExceeded(max_depth));
            }
            depth += 1;
        }
    }
    Ok(Explored {
        outcomes,
        states: visited.len(),
    })
}

/// One step of a recorded schedule: which process moved and which
/// nondeterministic branch it took.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// Index of the process that took the step.
    pub process: usize,
    /// Index of the successor branch chosen (0 for deterministic steps).
    pub branch: usize,
}

/// Searches all interleavings for a terminal outcome violating
/// `acceptable`, returning the exact schedule that produces it — the
/// model checker's counterexample extractor.
///
/// Returns `None` if every reachable terminal outcome is acceptable.
///
/// # Errors
///
/// Returns an error when the budgets are exceeded (same as [`explore`]).
pub fn find_violation<P, F>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    max_states: usize,
    max_depth: usize,
    mut acceptable: F,
) -> Result<Option<(Vec<TraceStep>, Outcome)>, ExploreError>
where
    P: Process,
    F: FnMut(&Outcome) -> bool,
{
    let mut visited: HashSet<(Vec<P>, Memory), BuildStructuralHasher> = HashSet::default();
    let mut stack: Vec<(Vec<P>, Memory, Vec<TraceStep>)> = vec![(processes, memory, Vec::new())];
    while let Some((procs, mem, trace)) = stack.pop() {
        if !visited.insert((procs.clone(), mem.clone())) {
            continue;
        }
        if visited.len() > max_states {
            return Err(ExploreError::StateBudgetExceeded(max_states));
        }
        if procs.iter().all(|p| p.decided().is_some()) {
            let outcome: Outcome = procs
                .iter()
                .map(|p| p.decided().expect("all decided").clone())
                .collect();
            if !acceptable(&outcome) {
                return Ok(Some((trace, outcome)));
            }
            continue;
        }
        if trace.len() >= max_depth {
            return Err(ExploreError::StepBoundExceeded(max_depth));
        }
        for (i, p) in procs.iter().enumerate() {
            if p.decided().is_some() {
                continue;
            }
            for (branch, (next_p, next_mem)) in p.step(config, &mem).into_iter().enumerate() {
                let mut next_procs = procs.clone();
                next_procs[i] = next_p;
                let mut next_trace = trace.clone();
                next_trace.push(TraceStep { process: i, branch });
                stack.push((next_procs, next_mem, next_trace));
            }
        }
    }
    Ok(None)
}

/// Replays a recorded trace exactly, returning the outcome.
///
/// # Errors
///
/// Returns [`ExploreError::StepBoundExceeded`] if the trace ends before
/// all processes decide.
///
/// # Panics
///
/// Panics if a trace step references a decided process or an
/// out-of-range branch (the trace does not belong to this system).
pub fn replay<P: Process>(
    mut processes: Vec<P>,
    mut memory: Memory,
    config: &P::Config,
    trace: &[TraceStep],
) -> Result<Outcome, ExploreError> {
    for step in trace {
        let p = &processes[step.process];
        assert!(p.decided().is_none(), "trace steps a decided process");
        let mut successors = p.step(config, &memory);
        assert!(step.branch < successors.len(), "trace branch out of range");
        let (next_p, next_mem) = successors.swap_remove(step.branch);
        processes[step.process] = next_p;
        memory = next_mem;
    }
    if processes.iter().all(|p| p.decided().is_some()) {
        Ok(processes
            .iter()
            .map(|p| p.decided().expect("all decided").clone())
            .collect())
    } else {
        Err(ExploreError::StepBoundExceeded(trace.len()))
    }
}

/// Runs a single pseudo-random schedule (uniform choice among undecided
/// processes; nondeterministic branches resolved uniformly), returning
/// the outcome.
///
/// # Errors
///
/// Returns [`ExploreError::StepBoundExceeded`] if the run does not
/// terminate within `max_steps`.
pub fn run_random<P: Process>(
    mut processes: Vec<P>,
    mut memory: Memory,
    config: &P::Config,
    seed: u64,
    max_steps: usize,
) -> Result<Outcome, ExploreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..max_steps {
        let pending: Vec<usize> = processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.decided().is_none())
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            return Ok(processes
                .iter()
                .map(|p| p.decided().expect("all decided").clone())
                .collect());
        }
        let i = pending[rng.gen_range(0..pending.len())];
        let successors = processes[i].step(config, &memory);
        assert!(!successors.is_empty(), "undecided process stuck");
        let k = rng.gen_range(0..successors.len());
        let (p, m) = successors.into_iter().nth(k).expect("in range");
        processes[i] = p;
        memory = m;
    }
    Err(ExploreError::StepBoundExceeded(max_steps))
}

/// Runs one specific schedule: at each step the next undecided process in
/// `schedule` takes a step (entries naming decided processes are
/// skipped); branches are resolved by always taking the first successor.
/// Useful for reproducing a particular interleaving.
///
/// # Errors
///
/// Returns [`ExploreError::StepBoundExceeded`] if the schedule ends
/// before all processes decide.
pub fn run_schedule<P: Process>(
    mut processes: Vec<P>,
    mut memory: Memory,
    config: &P::Config,
    schedule: &[usize],
) -> Result<Outcome, ExploreError> {
    for &i in schedule {
        if processes.iter().all(|p| p.decided().is_some()) {
            break;
        }
        if processes[i].decided().is_some() {
            continue;
        }
        let successors = processes[i].step(config, &memory);
        let (p, m) = successors
            .into_iter()
            .next()
            .expect("undecided process stuck");
        processes[i] = p;
        memory = m;
    }
    if processes.iter().all(|p| p.decided().is_some()) {
        Ok(processes
            .iter()
            .map(|p| p.decided().expect("all decided").clone())
            .collect())
    } else {
        Err(ExploreError::StepBoundExceeded(schedule.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    /// A toy process: writes its id, scans, decides on the count of
    /// writers it saw (encoded as a vertex value).
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    struct Toy {
        id: usize,
        phase: u8,
        decided: Option<Vertex>,
    }

    impl Process for Toy {
        type Config = ();

        fn decided(&self) -> Option<&Vertex> {
            self.decided.as_ref()
        }

        fn step(&self, (): &(), memory: &Memory) -> Vec<(Self, Memory)> {
            match self.phase {
                0 => {
                    let mut m = memory.clone();
                    m.update("r", self.id, Cell::Int(1));
                    vec![(
                        Toy {
                            phase: 1,
                            ..self.clone()
                        },
                        m,
                    )]
                }
                _ => {
                    let seen = memory.present("r").len() as i64;
                    vec![(
                        Toy {
                            decided: Some(Vertex::of(self.id as u8, seen)),
                            ..self.clone()
                        },
                        memory.clone(),
                    )]
                }
            }
        }
    }

    fn toys(n: usize) -> (Vec<Toy>, Memory) {
        (
            (0..n)
                .map(|id| Toy {
                    id,
                    phase: 0,
                    decided: None,
                })
                .collect(),
            Memory::with_objects(&["r"], n),
        )
    }

    #[test]
    fn exhaustive_finds_all_view_combinations() {
        let (procs, mem) = toys(2);
        let r = explore(procs, mem, &(), 10_000, 100).expect("small system");
        // Each process sees 1 or 2 writes, but not both seeing 1 (the
        // later scanner must see both writes).
        let as_counts: BTreeSet<Vec<i64>> = r
            .outcomes
            .iter()
            .map(|o| o.iter().map(|v| v.value().as_int().unwrap()).collect())
            .collect();
        assert!(as_counts.contains(&vec![1, 2]));
        assert!(as_counts.contains(&vec![2, 1]));
        assert!(as_counts.contains(&vec![2, 2]));
        assert!(!as_counts.contains(&vec![1, 1]), "impossible outcome");
        assert_eq!(as_counts.len(), 3);
    }

    #[test]
    fn random_runs_terminate_and_agree_with_exhaustive() {
        let (procs, mem) = toys(3);
        let all = explore(procs.clone(), mem.clone(), &(), 100_000, 1000)
            .expect("small system")
            .outcomes;
        for seed in 0..50 {
            let o = run_random(procs.clone(), mem.clone(), &(), seed, 1000).expect("terminates");
            assert!(
                all.contains(&o),
                "random outcome {o:?} not in exhaustive set"
            );
        }
    }

    #[test]
    fn schedule_runner_is_deterministic() {
        let (procs, mem) = toys(2);
        let sched = [0usize, 0, 1, 1];
        let a = run_schedule(procs.clone(), mem.clone(), &(), &sched).unwrap();
        let b = run_schedule(procs, mem, &(), &sched).unwrap();
        assert_eq!(a, b);
        // P0 runs solo first: sees only itself.
        assert_eq!(a[0].value().as_int(), Some(1));
        assert_eq!(a[1].value().as_int(), Some(2));
    }

    #[test]
    fn violation_finder_returns_replayable_traces() {
        // Ask for an impossible property: "P0 always sees 2 writers" —
        // the solo-start schedule violates it; the returned trace must
        // replay to the same outcome.
        let (procs, mem) = toys(2);
        let found = find_violation(procs.clone(), mem.clone(), &(), 10_000, 100, |o| {
            o[0].value().as_int() == Some(2)
        })
        .expect("within budget");
        let (trace, outcome) = found.expect("a violating schedule exists");
        assert_eq!(outcome[0].value().as_int(), Some(1));
        let replayed = replay(procs, mem, &(), &trace).expect("trace is complete");
        assert_eq!(replayed, outcome);
    }

    #[test]
    fn violation_finder_confirms_valid_properties() {
        // "someone sees both writers" holds on every schedule.
        let (procs, mem) = toys(2);
        let found = find_violation(procs, mem, &(), 10_000, 100, |o| {
            o.iter().any(|v| v.value().as_int() == Some(2))
        })
        .expect("within budget");
        assert!(found.is_none());
    }

    #[test]
    fn budget_errors() {
        let (procs, mem) = toys(3);
        assert!(matches!(
            explore(procs.clone(), mem.clone(), &(), 2, 100),
            Err(ExploreError::StateBudgetExceeded(2))
        ));
        assert!(matches!(
            run_schedule(procs, mem, &(), &[0]),
            Err(ExploreError::StepBoundExceeded(_))
        ));
    }
}
