//! One-shot immediate snapshot (Borowsky–Gafni) and the empirical
//! protocol complex.
//!
//! The paper's model assumes processes communicate by immediate snapshots
//! (§2.1), whose one-round executions form the standard chromatic
//! subdivision (§2.4). This module implements the classic Borowsky–Gafni
//! *levels* algorithm from update/scan operations and, by running it under
//! the exhaustive scheduler, regenerates the protocol complex
//! *empirically* — cross-validated against the combinatorial
//! `chromata_subdivision::chromatic_subdivision` (13 facets for a
//! triangle).

use std::collections::BTreeSet;

use chromata_topology::{Complex, Simplex, Value, Vertex};

use crate::cell::Cell;
use crate::explore::{explore, ExploreError, Process};
use crate::memory::Memory;

/// The Borowsky–Gafni one-shot immediate snapshot for process `id` with
/// input `input`, over `n` processes.
///
/// Each process descends through levels `n, n-1, …`: at level `ℓ` it
/// writes its level, scans, and returns the set of processes at level
/// `≤ ℓ` if that set has at least `ℓ` members.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ImmediateSnapshot {
    id: u8,
    input: Vertex,
    n: usize,
    level: usize,
    pending_scan: bool,
    decided: Option<Vertex>,
}

/// Configuration: none needed (inputs are per-process).
#[derive(Clone, Debug, Default)]
pub struct IisConfig;

impl ImmediateSnapshot {
    /// Creates the processes for inputs given as a chromatic simplex.
    #[must_use]
    pub fn processes_for(inputs: &Simplex, n: usize) -> Vec<ImmediateSnapshot> {
        inputs
            .iter()
            .map(|x| ImmediateSnapshot {
                id: x.color().index(),
                input: x.clone(),
                n,
                level: n + 1,
                pending_scan: false,
                decided: None,
            })
            .collect()
    }

    /// Initial memory: a `level` object and an `input` object.
    #[must_use]
    pub fn initial_memory(n: usize) -> Memory {
        Memory::with_objects(&["level", "input"], n)
    }
}

impl Process for ImmediateSnapshot {
    type Config = IisConfig;

    fn decided(&self) -> Option<&Vertex> {
        self.decided.as_ref()
    }

    fn step(&self, _config: &IisConfig, memory: &Memory) -> Vec<(Self, Memory)> {
        if !self.pending_scan {
            // Descend one level: write (input, level).
            let mut m = memory.clone();
            let level = self.level - 1;
            m.update("input", self.id as usize, Cell::Vertex(self.input.clone()));
            m.update("level", self.id as usize, Cell::Int(level as i64));
            return vec![(
                ImmediateSnapshot {
                    level,
                    pending_scan: true,
                    ..self.clone()
                },
                m,
            )];
        }
        // Scan: collect the processes at level ≤ mine.
        let levels = memory.present("level");
        let at_or_below: Vec<usize> = levels
            .iter()
            .filter(|(_, c)| c.as_int().expect("levels are ints") <= self.level as i64) // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
            .map(|(slot, _)| *slot)
            .collect();
        if at_or_below.len() >= self.level {
            let view: BTreeSet<Vertex> = at_or_below
                .iter()
                .map(|&slot| {
                    memory
                        .read("input", slot)
                        .expect("input written with level") // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
                        .as_vertex()
                        .expect("inputs are vertices") // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
                        .clone()
                })
                .collect();
            let out = Vertex::new(chromata_topology::Color::new(self.id), Value::view(view));
            return vec![(
                ImmediateSnapshot {
                    decided: Some(out),
                    ..self.clone()
                },
                memory.clone(),
            )];
        }
        vec![(
            ImmediateSnapshot {
                pending_scan: false,
                ..self.clone()
            },
            memory.clone(),
        )]
    }
}

/// Runs all one-round immediate-snapshot executions on `inputs` and
/// returns the complex of decided view-simplices — the *empirical*
/// protocol complex `Ch(σ)`.
///
/// # Errors
///
/// Propagates exploration budget errors.
pub fn empirical_protocol_complex(inputs: &Simplex) -> Result<Complex, ExploreError> {
    // Levels descend from the participant count; register slots are
    // indexed by color, so size them by the largest color present.
    let n = inputs.colors().len();
    let slots = inputs
        .iter()
        .map(|v| v.color().index() as usize + 1)
        .max()
        .unwrap_or(0);
    let procs = ImmediateSnapshot::processes_for(inputs, n);
    let explored = explore(
        procs,
        ImmediateSnapshot::initial_memory(slots),
        &IisConfig,
        5_000_000,
        10_000,
    )?;
    Ok(Complex::from_facets(
        explored.outcomes.into_iter().map(Simplex::new),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_subdivision::chromatic_subdivision;

    fn sigma(n: u8) -> Simplex {
        Simplex::from_iter((0..n).map(|i| Vertex::of(i, i64::from(i))))
    }

    #[test]
    fn two_process_executions_match_ch() {
        let s = sigma(2);
        let empirical = empirical_protocol_complex(&s).expect("small");
        assert_eq!(empirical.facet_count(), 3, "3 ordered partitions of 2");
        let combinatorial = chromatic_subdivision(&Complex::from_facets([s]));
        assert_eq!(empirical, combinatorial.complex);
    }

    #[test]
    fn three_process_executions_match_ch() {
        let s = sigma(3);
        let empirical = empirical_protocol_complex(&s).expect("within budget");
        assert_eq!(empirical.facet_count(), 13, "the 13 facets of Ch(Δ²)");
        let combinatorial = chromatic_subdivision(&Complex::from_facets([s]));
        assert_eq!(empirical, combinatorial.complex);
    }

    #[test]
    fn views_are_immediate_snapshots() {
        // Self-inclusion and comparability of the decided views.
        let s = sigma(3);
        let empirical = empirical_protocol_complex(&s).expect("within budget");
        for facet in empirical.facets() {
            for v in facet {
                let view = v.value().as_view().expect("views");
                assert!(
                    view.iter().any(|u| u.color() == v.color()),
                    "self-inclusion"
                );
            }
            // Views within one execution are totally ordered by inclusion.
            let mut views: Vec<&[Vertex]> = facet
                .iter()
                .map(|v| v.value().as_view().expect("views"))
                .collect();
            views.sort_by_key(|v| v.len());
            for w in views.windows(2) {
                let small: BTreeSet<&Vertex> = w[0].iter().collect();
                let big: BTreeSet<&Vertex> = w[1].iter().collect();
                assert!(small.is_subset(&big), "views form a chain");
            }
        }
    }

    #[test]
    fn solo_execution_sees_itself_only() {
        let solo = Simplex::vertex(Vertex::of(1, 1));
        let procs = ImmediateSnapshot::processes_for(&solo, 3);
        let explored = explore(
            procs,
            ImmediateSnapshot::initial_memory(3),
            &IisConfig,
            10_000,
            1000,
        )
        .expect("tiny");
        assert_eq!(explored.outcomes.len(), 1);
        let out = explored.outcomes.iter().next().unwrap();
        let view = out[0].value().as_view().unwrap();
        assert_eq!(view, &[Vertex::of(1, 1)]);
    }
}
