//! End-to-end verification of the Figure 7 algorithm against a task
//! specification (the executable content of Lemma 5.3).
//!
//! Two verification regimes:
//!
//! * [`verify_figure7`] — failure-free: every participant set, every
//!   interleaving, every adversarial-oracle branch;
//! * [`verify_figure7_with_crashes`] — additionally injects every crash
//!   pattern with up to `max_crashes` crash faults
//!   ([`crate::fault::explore_crash`]), machine-checking *wait-freedom*:
//!   survivors must decide, and their outputs must form a simplex of
//!   `Δ(participants)` where the participating set excludes processes
//!   that crashed before announcing their input.
//!
//! Specification violations are structured [`VerifyError::Violation`]s
//! (carrying the participant set and the offending outcome), not panics,
//! so callers can degrade gracefully and report partial diagnostics.

use chromata_task::Task;
use chromata_topology::{Budget, CancelToken, Simplex};

use crate::color_fix::{initial_memory, processes_for, Fig7Config};
use crate::explore::{explore_governed, ExploreError};
use crate::fault::explore_crash;

/// Aggregate statistics from exhaustively verifying Figure 7 on a task.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// Participant sets exercised (faces of the input facets).
    pub participant_sets: usize,
    /// Distinct terminal outcomes observed (all verified correct).
    pub outcomes: usize,
    /// Total distinct system states explored.
    pub states: usize,
}

/// Aggregate statistics from crash-injected verification.
#[derive(Clone, Debug, Default)]
pub struct CrashVerificationReport {
    /// Participant sets exercised (faces of the input facets).
    pub participant_sets: usize,
    /// Distinct terminal (partial) outcomes observed, all verified.
    pub outcomes: usize,
    /// Outcomes in which at least one process crashed.
    pub crashed_outcomes: usize,
    /// Total distinct (process states, crash set, memory) states.
    pub states: usize,
}

/// Why verification failed: either the exploration could not finish, or
/// an outcome actually violates the specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// Exploration failed (budget, cancellation, stuck process, panic) —
    /// carries a replayable trace where one exists.
    Explore(ExploreError),
    /// An execution produced a specification-violating outcome: Lemma 5.3
    /// fails empirically on this task.
    Violation {
        /// The task under verification.
        task: String,
        /// The participant set (and, for crash runs, the participating
        /// subset) the outcome was checked against.
        participants: String,
        /// What was wrong.
        detail: String,
    },
}

impl From<ExploreError> for VerifyError {
    fn from(e: ExploreError) -> Self {
        VerifyError::Explore(e)
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Explore(e) => write!(f, "verification did not finish: {e}"),
            VerifyError::Violation {
                task,
                participants,
                detail,
            } => write!(
                f,
                "specification violation on task {task}, participants {participants}: {detail}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Explore(e) => Some(e),
            VerifyError::Violation { .. } => None,
        }
    }
}

/// Exhaustively runs Figure 7 on every face of every input facet of
/// `task`, over every interleaving and every adversarial-oracle branch —
/// and checks that each terminal outcome is a simplex of
/// `Δ(participants)` with every process deciding a vertex of its own
/// color.
///
/// # Errors
///
/// [`VerifyError::Explore`] if the state budget is exhausted;
/// [`VerifyError::Violation`] if Lemma 5.3 fails empirically.
pub fn verify_figure7(task: &Task, max_states: usize) -> Result<VerificationReport, VerifyError> {
    verify_figure7_governed(
        task,
        &Budget::unlimited()
            .with_max_states(max_states)
            .with_max_steps(500),
        &CancelToken::new(),
    )
}

/// [`verify_figure7`] under a full [`Budget`] and [`CancelToken`]: the
/// per-participant-set explorations additionally respect the wall-clock
/// deadline and cooperative cancellation.
///
/// # Errors
///
/// As [`verify_figure7`], plus [`ExploreError::Interrupted`] (wrapped)
/// when the deadline passes or the token is cancelled.
pub fn verify_figure7_governed(
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
) -> Result<VerificationReport, VerifyError> {
    let mut report = VerificationReport::default();
    for sigma in task.input().facets() {
        for tau in sigma.faces() {
            report.participant_sets += 1;
            let config = Fig7Config::new(task.clone());
            let explored = explore_governed(
                processes_for(&tau),
                initial_memory(),
                &config,
                budget,
                cancel,
            )?;
            report.states += explored.states;
            for outcome in &explored.outcomes {
                report.outcomes += 1;
                // Own colors, in participant order.
                for (x, v) in tau.iter().zip(outcome) {
                    if x.color() != v.color() {
                        return Err(violation(
                            task,
                            &tau,
                            format!("process {} decided a foreign-colored vertex {v}", x.color()),
                        ));
                    }
                }
                let decided = Simplex::new(outcome.clone());
                if !task.delta().carries(&tau, &decided) {
                    return Err(violation(
                        task,
                        &tau,
                        format!("outcome {decided} violates Δ({tau})"),
                    ));
                }
            }
        }
    }
    Ok(report)
}

/// Machine-checks *wait-freedom* of Figure 7 (Lemma 5.3 under crashes):
/// for every participant set and every crash pattern with at most
/// `max_crashes` crash faults injected at every possible point, every
/// surviving process decides, and the survivors' outputs form a simplex
/// of `Δ(π)` where `π` is the *participating* set — the processes that
/// announced their input before crashing (a process crashed before its
/// first step is indistinguishable from one that never arrived).
///
/// This subsumes checking every explicit "crash `p` after step `k`"
/// [`crate::fault::FaultPlan`]: crashes only remove future steps, so
/// branching the crash decision at every scheduling point reaches
/// exactly the same partial executions.
///
/// # Errors
///
/// [`VerifyError::Explore`] on budget exhaustion / interruption (with a
/// replayable trace where one exists); [`VerifyError::Violation`] if a
/// survivor is undecided or the surviving outputs escape the carrier.
pub fn verify_figure7_with_crashes(
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
    max_crashes: usize,
) -> Result<CrashVerificationReport, VerifyError> {
    let mut report = CrashVerificationReport::default();
    for sigma in task.input().facets() {
        for tau in sigma.faces() {
            report.participant_sets += 1;
            let config = Fig7Config::new(task.clone());
            let explored = explore_crash(
                processes_for(&tau),
                initial_memory(),
                &config,
                budget,
                cancel,
                max_crashes,
            )?;
            report.states += explored.states;
            let inputs: Vec<_> = tau.iter().collect();
            for outcome in &explored.outcomes {
                report.outcomes += 1;
                if !outcome.crashed.is_empty() {
                    report.crashed_outcomes += 1;
                }
                // Wait-freedom: every non-crashed process decided.
                for (i, input) in inputs.iter().enumerate() {
                    if !outcome.crashed.contains(&i) && outcome.decisions[i].is_none() {
                        return Err(violation(
                            task,
                            &tau,
                            format!(
                                "survivor {} is undecided in terminal outcome {outcome:?}",
                                input.color()
                            ),
                        ));
                    }
                }
                let decided = outcome.decided();
                if decided.is_empty() {
                    continue; // everyone crashed undecided; nothing to check
                }
                // Own colors.
                for &(i, v) in &decided {
                    if inputs[i].color() != v.color() {
                        return Err(violation(
                            task,
                            &tau,
                            format!(
                                "process {} decided a foreign-colored vertex {v}",
                                inputs[i].color()
                            ),
                        ));
                    }
                }
                // Carrier: decisions form a simplex of Δ(participating).
                let participating =
                    Simplex::from_iter(outcome.participating.iter().map(|&i| inputs[i].clone()));
                let s = Simplex::from_iter(decided.iter().map(|(_, v)| (*v).clone()));
                if !task.delta().carries(&participating, &s) {
                    return Err(VerifyError::Violation {
                        task: task.name().to_owned(),
                        participants: format!("{tau} (participating: {participating})"),
                        detail: format!(
                            "surviving outputs {s} escape Δ({participating}) \
                             [crashed: {:?}]",
                            outcome.crashed
                        ),
                    });
                }
            }
        }
    }
    Ok(report)
}

fn violation(task: &Task, tau: &Simplex, detail: String) -> VerifyError {
    VerifyError::Violation {
        task: task.name().to_owned(),
        participants: tau.to_string(),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{constant_task, identity_task};

    #[test]
    fn identity_fully_verified() {
        let r = verify_figure7(&identity_task(3), 2_000_000).expect("budget");
        assert_eq!(r.participant_sets, 7, "all faces of the input triangle");
        assert!(r.outcomes >= 1);
    }

    #[test]
    fn constant_fully_verified() {
        let r = verify_figure7(&constant_task(3), 2_000_000).expect("budget");
        assert!(r.outcomes >= 1);
        assert!(r.states > 0);
    }

    #[test]
    fn starved_budget_surfaces_a_structured_error() {
        let err = verify_figure7(&identity_task(3), 5).expect_err("5 states cannot suffice");
        match err {
            VerifyError::Explore(ExploreError::StateBudgetExceeded { max_states: 5, .. }) => {}
            other => panic!("expected a state-budget error, got {other:?}"),
        }
        assert!(err.to_string().contains("did not finish"));
    }

    #[test]
    fn constant_task_wait_free_under_one_crash() {
        // Solo + pair participant sets with a single injected crash: fast
        // enough for a unit test; the full 2-crash sweeps live in the
        // fault-injection integration tests.
        let t = constant_task(3);
        let r = verify_figure7_with_crashes(
            &t,
            &Budget::unlimited()
                .with_max_states(2_000_000)
                .with_max_steps(500),
            &CancelToken::new(),
            1,
        )
        .expect("constant task is wait-free under crashes");
        assert_eq!(r.participant_sets, 7);
        assert!(r.crashed_outcomes > 0, "crash branches were explored");
        assert!(r.outcomes > r.crashed_outcomes, "crash-free outcomes too");
    }
}
