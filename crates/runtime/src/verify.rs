//! End-to-end verification of the Figure 7 algorithm against a task
//! specification (the executable content of Lemma 5.3).

use chromata_task::Task;
use chromata_topology::Simplex;

use crate::color_fix::{initial_memory, processes_for, Fig7Config};
use crate::explore::{explore, ExploreError};

/// Aggregate statistics from exhaustively verifying Figure 7 on a task.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// Participant sets exercised (faces of the input facets).
    pub participant_sets: usize,
    /// Distinct terminal outcomes observed (all verified correct).
    pub outcomes: usize,
    /// Total distinct system states explored.
    pub states: usize,
}

/// Exhaustively runs Figure 7 on every face of every input facet of
/// `task`, over every interleaving and every adversarial-oracle branch —
/// and checks that each terminal outcome is a simplex of
/// `Δ(participants)` with every process deciding a vertex of its own
/// color.
///
/// # Errors
///
/// Propagates exploration budget errors.
///
/// # Panics
///
/// Panics if some outcome violates the task specification — i.e. if
/// Lemma 5.3 fails empirically.
pub fn verify_figure7(task: &Task, max_states: usize) -> Result<VerificationReport, ExploreError> {
    let mut report = VerificationReport::default();
    for sigma in task.input().facets() {
        for tau in sigma.faces() {
            report.participant_sets += 1;
            let config = Fig7Config::new(task.clone());
            let explored = explore(
                processes_for(&tau),
                initial_memory(),
                &config,
                max_states,
                500,
            )?;
            report.states += explored.states;
            for outcome in &explored.outcomes {
                report.outcomes += 1;
                // Own colors, in participant order.
                for (x, v) in tau.iter().zip(outcome) {
                    assert_eq!(
                        x.color(),
                        v.color(),
                        "process {} decided a foreign-colored vertex {v}",
                        x.color()
                    );
                }
                let decided = Simplex::new(outcome.clone());
                assert!(
                    task.delta().carries(&tau, &decided),
                    "outcome {decided} violates Δ({tau}) [task {}]",
                    task.name()
                );
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{constant_task, identity_task};

    #[test]
    fn identity_fully_verified() {
        let r = verify_figure7(&identity_task(3), 2_000_000).expect("budget");
        assert_eq!(r.participant_sets, 7, "all faces of the input triangle");
        assert!(r.outcomes >= 1);
    }

    #[test]
    fn constant_fully_verified() {
        let r = verify_figure7(&constant_task(3), 2_000_000).expect("budget");
        assert!(r.outcomes >= 1);
        assert!(r.states > 0);
    }
}
