//! Shared-memory runtime: schedulers, snapshot objects and the paper's
//! Figure 7 algorithm.
//!
//! This crate makes the operational side of *"Solvability
//! Characterization for General Three-Process Tasks"* (PODC 2025)
//! executable:
//!
//! * [`Memory`] / [`Cell`] — simulated single-writer snapshot objects
//!   with atomic `update`/`scan` (§2.1);
//! * [`explore`] — a state-memoizing model checker enumerating **every**
//!   interleaving (and internal nondeterministic branch) of a set of
//!   [`Process`] state machines, plus seeded-random and fixed-schedule
//!   runners;
//! * [`oracle_register`] / [`oracle_return`] — the late-binding
//!   adversarial *color-agnostic* oracle standing in for the `A_C` of
//!   §5.2 (see DESIGN.md, substitutions);
//! * [`Fig7`] — the paper's Figure 7 algorithm as an explicit state
//!   machine, with [`verify_figure7`] exhaustively validating Lemma 5.3;
//! * [`explore_crash`] / [`FaultPlan`] — crash-fault injection: the
//!   adversary may crash processes at any point, and
//!   [`verify_figure7_with_crashes`] machine-checks *wait-freedom*
//!   (survivors decide within `Δ(participating)`) under every crash
//!   pattern; every failure carries a replayable one-line [`Trace`];
//! * [`ImmediateSnapshot`] — the Borowsky–Gafni one-shot immediate
//!   snapshot; [`empirical_protocol_complex`] regenerates `Ch(σ)` from
//!   actual executions (cross-validated against the combinatorial
//!   subdivision);
//! * [`execute_decision_map`] — protocol extraction: a chromatic decision
//!   map `δ : Ch^r(I) → O` run as an actual `r`-round protocol and
//!   model-checked against the task;
//! * [`AtomicSnapshot`] — a real multi-threaded double-collect snapshot
//!   with embedded scans, stress-tested under true parallelism.
//!
//! ```
//! use chromata_runtime::verify_figure7;
//! use chromata_task::library::identity_task;
//!
//! // Exhaustively verify Lemma 5.3 on the identity task: all participant
//! // sets, all interleavings, all oracle behaviours.
//! let report = verify_figure7(&identity_task(3), 1_000_000)?;
//! assert_eq!(report.participant_sets, 7);
//! # Ok::<(), chromata_runtime::VerifyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod color_fix;
mod explore;
mod fault;
mod iis;
mod iterated;
mod memory;
mod oracle;
mod protocol;
mod snapshot;
mod stage;
mod verify;

pub use cell::Cell;
pub use chromata_topology::{Budget, CancelToken, Interrupt};
pub use color_fix::{initial_memory, processes_for, Fig7, Fig7Config, OBJECTS};
pub use explore::{
    explore, explore_governed, find_violation, replay, run_random, run_schedule, ExploreError,
    Explored, Outcome, Process, Trace, TraceEvent,
};
pub use fault::{
    explore_crash, replay_trace, run_random_faulted, CrashExplored, CrashFault, CrashOutcome,
    FaultPlan,
};
pub use iis::{empirical_protocol_complex, IisConfig, ImmediateSnapshot};
pub use iterated::{
    empirical_iterated_protocol_complex, IteratedConfig, IteratedImmediateSnapshot, MAX_ROUNDS,
};
pub use memory::{Memory, ObjectId};
pub use oracle::{
    branch_count, oracle_register, oracle_return, ORACLE_PARTICIPANTS, ORACLE_TARGET,
};
pub use protocol::{execute_decision_map, DecisionConfig, DecisionProtocol};
pub use snapshot::AtomicSnapshot;
pub use stage::{verify_figure7_crash_staged, verify_figure7_staged, RuntimeEvidence};
pub use verify::{
    verify_figure7, verify_figure7_governed, verify_figure7_with_crashes, CrashVerificationReport,
    VerificationReport, VerifyError,
};
