//! Register contents for the simulated shared memory.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use chromata_topology::Vertex;

/// A value stored in a single-writer register of a simulated snapshot
/// object. The Figure 7 algorithm writes vertices (`M_in`, `M_cless`),
/// views (`M_snap`) and decision triples (`M_decisions`); the oracle
/// object stores registration marks.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cell {
    /// A single chromatic vertex.
    Vertex(Vertex),
    /// A set of vertices (an immediate-snapshot or scan view),
    /// `Arc`-shared: registers are cloned on every atomic step of the
    /// model checker, so set payloads are refcounted rather than copied.
    View(Arc<BTreeSet<Vertex>>),
    /// A Figure 7 `M_decisions` entry `(vᵢ, v′, V*)`: the anchor vertex
    /// (set once), the current proposal, and the core.
    Decision {
        /// The anchor `vᵢ` — never changes after the first write.
        anchor: Vertex,
        /// The process's current proposal `v′`.
        current: Vertex,
        /// The core `V*` at the time of writing (`Arc`-shared, like
        /// [`Cell::View`]).
        core: Arc<BTreeSet<Vertex>>,
    },
    /// An integer payload (used by the immediate-snapshot levels).
    Int(i64),
}

impl Cell {
    /// The vertex payload, if this is a [`Cell::Vertex`].
    #[must_use]
    pub fn as_vertex(&self) -> Option<&Vertex> {
        match self {
            Cell::Vertex(v) => Some(v),
            _ => None,
        }
    }

    /// The view payload, if this is a [`Cell::View`].
    #[must_use]
    pub fn as_view(&self) -> Option<&BTreeSet<Vertex>> {
        match self {
            Cell::View(v) => Some(v.as_ref()),
            _ => None,
        }
    }

    /// The decision payload, if this is a [`Cell::Decision`].
    #[must_use]
    pub fn as_decision(&self) -> Option<(&Vertex, &Vertex, &BTreeSet<Vertex>)> {
        match self {
            Cell::Decision {
                anchor,
                current,
                core,
            } => Some((anchor, current, core)),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Cell::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Vertex(v) => write!(f, "{v}"),
            Cell::View(vs) => {
                write!(f, "{{")?;
                for (k, v) in vs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Cell::Decision {
                anchor,
                current,
                core,
            } => {
                write!(f, "({anchor}, {current}, |core|={})", core.len())
            }
            Cell::Int(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Vertex::of(0, 1);
        assert_eq!(Cell::Vertex(v.clone()).as_vertex(), Some(&v));
        assert!(Cell::Int(3).as_vertex().is_none());
        assert_eq!(Cell::Int(3).as_int(), Some(3));
        let view: Arc<BTreeSet<Vertex>> = Arc::new([v.clone()].into_iter().collect());
        assert_eq!(Cell::View(Arc::clone(&view)).as_view(), Some(view.as_ref()));
        let d = Cell::Decision {
            anchor: v.clone(),
            current: v.clone(),
            core: view,
        };
        assert!(d.as_decision().is_some());
        assert!(d.as_view().is_none());
    }

    #[test]
    fn ordering_is_total() {
        let mut cells = [Cell::Int(2), Cell::Vertex(Vertex::of(0, 0)), Cell::Int(1)];
        cells.sort();
        assert_eq!(cells.len(), 3);
    }
}
