//! Executing a decision map as a protocol.
//!
//! The ACT direction made operational: a chromatic simplicial map
//! `δ : Ch^r(I) → O` carried by `Δ` *is* an algorithm — run `r` rounds of
//! iterated immediate snapshot and decide `δ(final view)` (§2.4). This
//! module wraps a witness map found by the `chromata` core's ACT search
//! into an executable [`Process`], so solvability witnesses can be
//! model-checked end-to-end: every interleaving of the extracted protocol
//! must produce outputs in `Δ(participants)`.

use std::collections::BTreeMap;

use chromata_task::Task;
use chromata_topology::{Simplex, SimplicialMap, Vertex};

use crate::explore::{explore, ExploreError, Process};
use crate::iterated::{IteratedConfig, IteratedImmediateSnapshot};
use crate::memory::Memory;

/// A process executing "`r` rounds of IIS, then apply the decision map".
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DecisionProtocol {
    inner: IteratedImmediateSnapshot,
    decided: Option<Vertex>,
}

/// Configuration: the decision map (`Ch^r(I)` view vertices → output
/// vertices).
#[derive(Clone, Debug)]
pub struct DecisionConfig {
    map: BTreeMap<Vertex, Vertex>,
}

impl DecisionConfig {
    /// Wraps a witness map. For `rounds = 0` the map is applied directly
    /// to the input vertices.
    #[must_use]
    pub fn new(map: &SimplicialMap) -> Self {
        DecisionConfig {
            map: map.iter().map(|(a, b)| (a.clone(), b.clone())).collect(),
        }
    }
}

impl DecisionProtocol {
    /// Processes for the participants of `inputs` running `rounds` rounds
    /// before deciding.
    ///
    /// For `rounds = 0` processes decide immediately from their input.
    #[must_use]
    pub fn processes_for(inputs: &Simplex, n: usize, rounds: usize) -> Vec<Self> {
        if rounds == 0 {
            return inputs
                .iter()
                .map(|x| DecisionProtocol {
                    // A dummy inner machine; never stepped.
                    inner: IteratedImmediateSnapshot::processes_for(
                        &Simplex::vertex(x.clone()),
                        n,
                        1,
                    )
                    .remove(0),
                    decided: Some(x.clone()),
                })
                .collect();
        }
        IteratedImmediateSnapshot::processes_for(inputs, n, rounds)
            .into_iter()
            .map(|inner| DecisionProtocol {
                inner,
                decided: None,
            })
            .collect()
    }

    /// Initial memory (same layout as the iterated snapshot).
    #[must_use]
    pub fn initial_memory(slots: usize, rounds: usize) -> Memory {
        IteratedImmediateSnapshot::initial_memory(slots, rounds.max(1))
    }
}

impl Process for DecisionProtocol {
    type Config = DecisionConfig;

    fn decided(&self) -> Option<&Vertex> {
        self.decided.as_ref()
    }

    fn step(&self, config: &DecisionConfig, memory: &Memory) -> Vec<(Self, Memory)> {
        // `decided` pre-set only in the rounds = 0 construction, where the
        // map is applied below before any step; normal operation drives
        // the inner IIS machine and applies the map to its final view.
        self.inner
            .step(&IteratedConfig, memory)
            .into_iter()
            .map(|(inner, m)| {
                let decided = inner.decided().map(|view_vertex| {
                    config
                        .map
                        .get(view_vertex)
                        .unwrap_or_else(|| {
                            // chromata-lint: allow(P1): step() cannot return Result; the panic is caught by try_par_map and surfaced as ExploreError::WorkerPanicked
                            panic!(
                                "decision map has no assignment for protocol vertex {view_vertex}"
                            )
                        })
                        .clone()
                });
                (DecisionProtocol { inner, decided }, m)
            })
            .collect()
    }
}

/// Exhaustively executes the extracted protocol on `participants` and
/// checks every outcome against `Δ(participants)`.
///
/// For `rounds = 0` the map is applied to the inputs directly (no
/// communication).
///
/// # Errors
///
/// Propagates exploration budget errors, and returns
/// [`ExploreError::IncompleteDecisionMap`] when the map lacks an
/// assignment for a reachable input vertex (`rounds = 0`; deeper rounds
/// surface the same defect as [`ExploreError::WorkerPanicked`]).
///
/// # Panics
///
/// Panics if some outcome violates the task (i.e. the witness map was not
/// actually carried by `Δ`) or if a process's own color is not preserved.
pub fn execute_decision_map(
    task: &Task,
    map: &SimplicialMap,
    rounds: usize,
    participants: &Simplex,
    max_states: usize,
) -> Result<usize, ExploreError> {
    let n = participants.colors().len();
    let slots = participants
        .iter()
        .map(|v| v.color().index() as usize + 1)
        .max()
        .unwrap_or(0);
    let config = DecisionConfig::new(map);
    if rounds == 0 {
        // Decide δ(input) immediately; a single "outcome".
        let outcome: Vec<Vertex> = participants
            .iter()
            .map(|x| {
                config
                    .map
                    .get(x)
                    .ok_or_else(|| ExploreError::IncompleteDecisionMap {
                        vertex: x.to_string(),
                    })
                    .cloned()
            })
            .collect::<Result<_, _>>()?;
        check_outcome(task, participants, &outcome);
        return Ok(1);
    }
    let explored = explore(
        DecisionProtocol::processes_for(participants, n, rounds),
        DecisionProtocol::initial_memory(slots, rounds),
        &config,
        max_states,
        100_000,
    )?;
    for outcome in &explored.outcomes {
        check_outcome(task, participants, outcome);
    }
    Ok(explored.outcomes.len())
}

fn check_outcome(task: &Task, participants: &Simplex, outcome: &[Vertex]) {
    for (x, v) in participants.iter().zip(outcome) {
        assert_eq!(
            x.color(),
            v.color(),
            "extracted protocol broke color preservation"
        );
    }
    let s = Simplex::new(outcome.to_vec());
    assert!(
        task.delta().carries(participants, &s),
        "extracted protocol produced {s} outside Δ({participants})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::constant_task;
    use chromata_topology::SimplicialMap;

    #[test]
    fn constant_map_executes_at_zero_rounds() {
        let t = constant_task(3);
        let sigma = t.input().facets().next().unwrap().clone();
        // δ: input vertex ↦ (color, 0).
        let map: SimplicialMap = t
            .input()
            .vertices()
            .map(|x| (x.clone(), x.with_value(chromata_topology::Value::Int(0))))
            .collect();
        for tau in sigma.faces() {
            let outcomes = execute_decision_map(&t, &map, 0, &tau, 1_000_000).expect("budget");
            assert_eq!(outcomes, 1);
        }
    }

    #[test]
    #[should_panic(expected = "outside Δ")]
    fn invalid_maps_are_caught() {
        let t = constant_task(3);
        let sigma = t.input().facets().next().unwrap().clone();
        // δ: everyone outputs 1 — not allowed by the constant-0 task.
        let map: SimplicialMap = t
            .input()
            .vertices()
            .map(|x| (x.clone(), x.with_value(chromata_topology::Value::Int(1))))
            .collect();
        let _ = execute_decision_map(&t, &map, 0, &sigma, 1_000_000);
    }
}
