//! Evidence-reporting adapters around the Figure 7 verifiers.
//!
//! The verdict engine in `chromata` records per-stage evidence (detail,
//! work counter, wall clock) for every analysis. The runtime crate does
//! not depend on `chromata`, so it carries its own lightweight record —
//! shape-compatible with the engine's `StageEvidence` — letting callers
//! (the CLI, benches, experiment scripts) fold operational verification
//! runs into the same evidence tables as the decision stages.

use std::time::Duration;

use chromata_task::Task;
use chromata_topology::{Budget, CancelToken, Stopwatch};

use crate::verify::{
    verify_figure7_governed, verify_figure7_with_crashes, CrashVerificationReport,
    VerificationReport, VerifyError,
};

/// One operational stage's evidence: what ran, how much state it
/// explored, and how long it took.
#[derive(Clone, Debug)]
pub struct RuntimeEvidence {
    /// Stage name (`"verify-fig7"` or `"verify-fig7-crash"`).
    pub stage: &'static str,
    /// Deterministic human-readable summary of the run.
    pub detail: String,
    /// Work counter: total distinct system states explored (0 when the
    /// exploration failed before reporting).
    pub work: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

/// [`verify_figure7_governed`] with an evidence record: the report (or
/// error) plus the stage's states-explored counter and wall clock.
pub fn verify_figure7_staged(
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
) -> (Result<VerificationReport, VerifyError>, RuntimeEvidence) {
    let clock = Stopwatch::start();
    let result = verify_figure7_governed(task, budget, cancel);
    let (detail, work) = match &result {
        Ok(r) => (
            format!(
                "{} participant set(s), {} outcome(s), {} state(s)",
                r.participant_sets, r.outcomes, r.states
            ),
            r.states as u64,
        ),
        Err(e) => (format!("verification failed: {e}"), 0),
    };
    let evidence = RuntimeEvidence {
        stage: "verify-fig7",
        detail,
        work,
        wall: clock.elapsed(),
    };
    (result, evidence)
}

/// [`verify_figure7_with_crashes`] with an evidence record.
pub fn verify_figure7_crash_staged(
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
    max_crashes: usize,
) -> (
    Result<CrashVerificationReport, VerifyError>,
    RuntimeEvidence,
) {
    let clock = Stopwatch::start();
    let result = verify_figure7_with_crashes(task, budget, cancel, max_crashes);
    let (detail, work) = match &result {
        Ok(r) => (
            format!(
                "{} participant set(s), {} outcome(s) ({} crashed), {} state(s), ≤{max_crashes} crash(es)",
                r.participant_sets, r.outcomes, r.crashed_outcomes, r.states
            ),
            r.states as u64,
        ),
        Err(e) => (format!("verification failed: {e}"), 0),
    };
    let evidence = RuntimeEvidence {
        stage: "verify-fig7-crash",
        detail,
        work,
        wall: clock.elapsed(),
    };
    (result, evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::identity_task;

    #[test]
    fn staged_verification_reports_states_as_work() {
        let budget = Budget::unlimited()
            .with_max_states(1_000_000)
            .with_max_steps(500);
        let (result, evidence) =
            verify_figure7_staged(&identity_task(2), &budget, &CancelToken::new());
        let report = result.expect("identity is verifiable");
        assert_eq!(evidence.stage, "verify-fig7");
        assert_eq!(evidence.work, report.states as u64);
        assert!(
            evidence.detail.contains("participant set(s)"),
            "{}",
            evidence.detail
        );
    }

    #[test]
    fn staged_verification_surfaces_failures_in_evidence() {
        // A zero-state budget cannot finish exploring: the error is
        // returned and the evidence records the failure with zero work.
        let budget = Budget::unlimited().with_max_states(1).with_max_steps(500);
        let (result, evidence) =
            verify_figure7_staged(&identity_task(2), &budget, &CancelToken::new());
        assert!(result.is_err());
        assert_eq!(evidence.work, 0);
        assert!(evidence.detail.contains("failed"), "{}", evidence.detail);
    }

    #[test]
    fn staged_crash_verification_counts_crashed_outcomes() {
        let budget = Budget::unlimited()
            .with_max_states(2_000_000)
            .with_max_steps(500);
        let (result, evidence) =
            verify_figure7_crash_staged(&identity_task(2), &budget, &CancelToken::new(), 1);
        let report = result.expect("identity is crash-verifiable");
        assert_eq!(evidence.stage, "verify-fig7-crash");
        assert_eq!(evidence.work, report.states as u64);
        assert!(evidence.detail.contains("crash"), "{}", evidence.detail);
    }
}
