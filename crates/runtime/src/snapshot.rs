//! A real multi-threaded atomic snapshot from single-writer registers.
//!
//! The simulated runtime makes scans atomic by construction; this module
//! complements it with an actual shared-memory implementation of the
//! classic *bounded double collect with embedded scans* construction
//! (Afek et al., "Atomic Snapshots of Shared Memory"): each register
//! carries a sequence number and a copy of the writer's last embedded
//! scan; a scanner retries until it sees two identical collects (a clean
//! double collect) or observes a writer move twice, in which case it
//! borrows that writer's embedded scan. Either way the result is
//! linearizable. A thread stress test exercises it under real
//! parallelism.

use std::sync::Arc;

use parking_lot::Mutex;

/// A `(sequence, value, embedded scan)` triple read during a collect.
type CollectEntry<T> = (u64, Option<T>, Option<Vec<Option<T>>>);

/// One single-writer register with its sequence number and embedded scan.
#[derive(Clone, Debug)]
struct Register<T: Clone> {
    seq: u64,
    value: Option<T>,
    embedded: Option<Vec<Option<T>>>,
}

impl<T: Clone> Default for Register<T> {
    fn default() -> Self {
        Register {
            seq: 0,
            value: None,
            embedded: None,
        }
    }
}

/// An `n`-slot atomic snapshot object usable from multiple threads.
///
/// # Examples
///
/// ```
/// use chromata_runtime::AtomicSnapshot;
///
/// let snap: AtomicSnapshot<i32> = AtomicSnapshot::new(2);
/// snap.update(0, 7);
/// let view = snap.scan();
/// assert_eq!(view[0], Some(7));
/// assert_eq!(view[1], None);
/// ```
#[derive(Clone, Debug)]
pub struct AtomicSnapshot<T: Clone> {
    regs: Arc<Vec<Mutex<Register<T>>>>,
}

impl<T: Clone> AtomicSnapshot<T> {
    /// Creates a snapshot object with `n` single-writer slots.
    #[must_use]
    pub fn new(n: usize) -> Self {
        AtomicSnapshot {
            regs: Arc::new((0..n).map(|_| Mutex::new(Register::default())).collect()),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the object has zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    fn collect(&self) -> Vec<CollectEntry<T>> {
        self.regs
            .iter()
            .map(|r| {
                let g = r.lock();
                (g.seq, g.value.clone(), g.embedded.clone())
            })
            .collect()
    }

    /// Update slot `i` (single writer per slot): embeds a scan so that
    /// concurrent scanners interfered with twice can borrow it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&self, i: usize, value: T) {
        let embedded = self.scan();
        let mut g = self.regs[i].lock();
        g.seq += 1;
        g.value = Some(value);
        g.embedded = Some(embedded);
    }

    /// A linearizable scan of all slots.
    pub fn scan(&self) -> Vec<Option<T>> {
        let mut moved: Vec<u32> = vec![0; self.regs.len()];
        let mut prev = self.collect();
        loop {
            let cur = self.collect();
            if prev
                .iter()
                .zip(&cur)
                .all(|((s1, _, _), (s2, _, _))| s1 == s2)
            {
                // Clean double collect.
                return cur.into_iter().map(|(_, v, _)| v).collect();
            }
            for (i, ((s1, _, _), (s2, _, e2))) in prev.iter().zip(&cur).enumerate() {
                if s1 != s2 {
                    moved[i] += 1;
                    if moved[i] >= 2 {
                        // The writer moved twice during our scan: its
                        // embedded scan is linearizable within our
                        // interval.
                        if let Some(e) = e2 {
                            return e.clone();
                        }
                    }
                }
            }
            prev = cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sequential_semantics() {
        let s: AtomicSnapshot<u64> = AtomicSnapshot::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.scan(), vec![None, None, None]);
        s.update(1, 42);
        s.update(2, 7);
        assert_eq!(s.scan(), vec![None, Some(42), Some(7)]);
        s.update(1, 43);
        assert_eq!(s.scan()[1], Some(43));
    }

    #[test]
    fn concurrent_scans_are_monotone() {
        // Writers publish strictly increasing counters; every scanned view
        // must be coordinate-wise monotone over time (linearizability of
        // scans against single-writer counters).
        const WRITES: u64 = 300;
        let s: AtomicSnapshot<u64> = AtomicSnapshot::new(3);
        let mut handles = Vec::new();
        for w in 0..3usize {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for k in 1..=WRITES {
                    s.update(w, k);
                }
            }));
        }
        let scanner = {
            let s = s.clone();
            thread::spawn(move || {
                let mut last = vec![0u64; 3];
                for _ in 0..500 {
                    let view: Vec<u64> = s
                        .scan()
                        .into_iter()
                        .map(Option::unwrap_or_default)
                        .collect();
                    for i in 0..3 {
                        assert!(
                            view[i] >= last[i],
                            "scan went backwards at slot {i}: {last:?} -> {view:?}"
                        );
                    }
                    last = view;
                }
            })
        };
        for h in handles {
            h.join().expect("writer");
        }
        scanner.join().expect("scanner");
        assert_eq!(s.scan(), vec![Some(WRITES), Some(WRITES), Some(WRITES)]);
    }

    #[test]
    fn embedded_scan_borrowing_is_reachable() {
        // With heavy write traffic, scans still terminate (either via a
        // clean double collect or a borrowed embedded scan).
        let s: AtomicSnapshot<u64> = AtomicSnapshot::new(2);
        let writer = {
            let s = s.clone();
            thread::spawn(move || {
                for k in 0..2000 {
                    s.update(0, k);
                }
            })
        };
        for _ in 0..200 {
            let _ = s.scan();
        }
        writer.join().expect("writer");
    }
}
