//! Adversarial color-agnostic oracles (the `A_C` of §5.2).
//!
//! Lemma 5.3 assumes a *color-agnostic* algorithm `A_C` whose outputs,
//! across all participants, lie on a single simplex of `Δ(τ)` for the
//! participating set `τ` — but a process may receive a vertex of the
//! wrong color. The paper obtains `A_C` from the colorless ACT; here we
//! *simulate* it with the **maximal adversary** (see DESIGN.md):
//!
//! The oracle separates **registration** from **return** — a real `A_C`
//! is a multi-step protocol, so its output is determined at return time,
//! when more processes may have registered than at invocation time (late
//! binding; without it the adversary provably misses real behaviours,
//! e.g. a first-returned hourglass output already sitting on the pinch
//! vertex). [`oracle_register`] atomically records the caller; a later
//! [`oracle_return`] hands the caller *any* vertex `y` such that
//! `R ∪ {y}` is a simplex of `Δ(τ)`, where `R` is the set of outputs
//! returned so far and `τ` the inputs registered so far — every choice
//! is a branch explored by the model checker.
//!
//! This is exactly the interface contract of a correct `A_C`: at every
//! prefix the returned outputs form a simplex of `Δ` of the then-current
//! participants (the run where nobody else ever joins must be correct),
//! and by monotonicity of `Δ` the final output set is a simplex of
//! `Δ(τ_final)`. Every behaviour of every real `A_C` is a branch of this
//! oracle, so properties verified against it hold against all
//! color-agnostic solutions — and failures it finds (e.g. the hourglass
//! negotiation entering a disconnected link) are genuine. Because `Δ`
//! images are non-empty and face-closed, the oracle is never stuck, even
//! for tasks with no real `A_C`.

use std::collections::BTreeSet;
use std::sync::Arc;

use chromata_task::Task;
use chromata_topology::{Simplex, Vertex};

use crate::cell::Cell;
use crate::memory::Memory;

/// The memory object holding the oracle's participant registrations.
pub const ORACLE_PARTICIPANTS: &str = "oracle";
/// The memory object holding the oracle's output set so far (slot 0).
pub const ORACLE_TARGET: &str = "otgt";

/// Atomically registers process slot `me` (with input `input`) as an
/// oracle participant.
#[must_use]
pub fn oracle_register(memory: &Memory, me: usize, input: &Vertex) -> Memory {
    let mut m = memory.clone();
    m.update(ORACLE_PARTICIPANTS, me, Cell::Vertex(input.clone()));
    m
}

/// Atomically completes an oracle call registered earlier: returns every
/// `(received vertex, successor memory)` branch. The choice is
/// late-bound: constrained by the outputs returned *so far* and the
/// participants registered *by now*.
///
/// # Panics
///
/// Panics if the task has no image for the registered participant set
/// (impossible for validated tasks).
#[must_use]
pub fn oracle_return(task: &Task, memory: &Memory) -> Vec<(Vertex, Memory)> {
    let tau = Simplex::from_iter(
        memory
            .present(ORACLE_PARTICIPANTS)
            .into_iter()
            .map(|(_, c)| c.as_vertex().expect("oracle holds inputs").clone()), // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
    );
    let so_far: Arc<BTreeSet<Vertex>> = match memory.read(ORACLE_TARGET, 0) {
        Some(Cell::View(v)) => v,
        Some(other) => panic!("output set is a view, found {other}"), // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
        None => Arc::new(BTreeSet::new()),
    };
    let img = task.delta().image_of(&tau);
    let mut out = Vec::new();
    for y in img.vertices() {
        let mut joint: Vec<Vertex> = so_far.iter().cloned().collect();
        joint.push(y.clone());
        if !img.contains(&Simplex::new(joint)) {
            continue;
        }
        let mut m2 = memory.clone();
        let mut next = (*so_far).clone();
        next.insert(y.clone());
        m2.update(ORACLE_TARGET, 0, Cell::View(Arc::new(next)));
        out.push((y.clone(), m2));
    }
    assert!(
        !out.is_empty(),
        "face-closure guarantees an extension of the output set within Δ({tau})"
    );
    out
}

/// The number of first-invocation branches for participants `tau`
/// (diagnostic helper): the vertices of `Δ(τ)`.
#[must_use]
pub fn branch_count(task: &Task, tau: &Simplex) -> usize {
    task.delta().image_of(tau).vertex_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{hourglass, identity_task, two_set_agreement};

    fn oracle_memory() -> Memory {
        Memory::with_objects(&[ORACLE_PARTICIPANTS, ORACLE_TARGET], 3)
    }

    #[test]
    fn identity_oracle_is_deterministic_solo() {
        let t = identity_task(3);
        let sigma = t.input().facets().next().unwrap().clone();
        let x0 = sigma.vertices()[0].clone();
        let m = oracle_register(&oracle_memory(), 0, &x0);
        let branches = oracle_return(&t, &m);
        // Δ(x0) = {x0}: one vertex.
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].0, x0);
    }

    #[test]
    fn outputs_stay_on_a_common_simplex() {
        let t = two_set_agreement();
        let sigma = t.input().facets().next().unwrap().clone();
        let vs = sigma.vertices();
        // P1 registers and returns solo, then P0, then P2; at each step
        // the output set must be a simplex of Δ of the participants.
        let m = oracle_register(&oracle_memory(), 1, &vs[1]);
        let (y1, m) = oracle_return(&t, &m).remove(0);
        assert_eq!(y1.value().as_int(), Some(2), "solo decides own value");
        let m = oracle_register(&m, 0, &vs[0]);
        for (y0, m2) in oracle_return(&t, &m) {
            let pair = Simplex::from_iter([y1.clone(), y0.clone()]);
            let tau01 = Simplex::from_iter([vs[0].clone(), vs[1].clone()]);
            assert!(t.delta().image_of(&tau01).contains(&pair));
            let m3 = oracle_register(&m2, 2, &vs[2]);
            for (y2, _) in oracle_return(&t, &m3) {
                let all = Simplex::from_iter([y1.clone(), y0.clone(), y2.clone()]);
                assert!(t.delta().image_of(&sigma).contains(&all));
            }
        }
    }

    #[test]
    fn wrong_colored_outputs_are_offered() {
        let t = two_set_agreement();
        let sigma = t.input().facets().next().unwrap().clone();
        let vs = sigma.vertices();
        let m = oracle_register(&oracle_memory(), 1, &vs[1]);
        let (_, m) = oracle_return(&t, &m).remove(0);
        let m = oracle_register(&m, 0, &vs[0]);
        let branches = oracle_return(&t, &m);
        assert!(branches.iter().any(|(y, _)| y.color() != vs[0].color()));
        // Duplicates (the exact same vertex again) are also offered.
        assert!(branches.iter().any(|(y, _)| y.value().as_int() == Some(2)));
    }

    #[test]
    fn late_binding_reaches_the_pinch_first() {
        // Both processes register before either returns: the very first
        // returned output may already be the hourglass pinch vertex (0,1)
        // — the seed of the counterexample schedule for Fig. 7 on the
        // hourglass, unreachable under invocation-time binding.
        let t = hourglass();
        let sigma = t.input().facets().next().unwrap().clone();
        let vs = sigma.vertices();
        let m = oracle_register(&oracle_memory(), 0, &vs[0]);
        let m = oracle_register(&m, 1, &vs[1]);
        let branches = oracle_return(&t, &m);
        assert!(branches
            .iter()
            .any(|(y, _)| *y == chromata_topology::Vertex::of(0, 1)));
    }

    #[test]
    fn branch_count_diagnostic() {
        let t = two_set_agreement();
        let sigma = t.input().facets().next().unwrap().clone();
        assert_eq!(branch_count(&t, &sigma), 9, "the 9 vertices of Δ(σ)");
    }
}
