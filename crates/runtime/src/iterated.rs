//! Iterated immediate snapshot: the full-information protocol of §2.4.
//!
//! Round `r + 1`'s input is the view vertex produced by round `r`; after
//! `R` rounds the decided views generate — execution by execution — the
//! iterated chromatic subdivision `Ch^R(σ)`, which this module
//! cross-validates against the combinatorial construction.

use std::collections::BTreeSet;

use chromata_topology::{Color, Complex, Simplex, Value, Vertex};

use crate::cell::Cell;
use crate::explore::{explore, ExploreError, Process};
use crate::memory::Memory;

/// Maximum supported round count (object names are static).
pub const MAX_ROUNDS: usize = 4;

const LEVEL_OBJECTS: [&str; MAX_ROUNDS] = ["level0", "level1", "level2", "level3"];
const INPUT_OBJECTS: [&str; MAX_ROUNDS] = ["input0", "input1", "input2", "input3"];

/// One process of the `R`-round iterated immediate-snapshot protocol
/// (each round a Borowsky–Gafni one-shot immediate snapshot).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IteratedImmediateSnapshot {
    id: u8,
    current: Vertex,
    rounds: usize,
    round: usize,
    n: usize,
    level: usize,
    pending_scan: bool,
    decided: Option<Vertex>,
}

/// Configuration: none.
#[derive(Clone, Debug, Default)]
pub struct IteratedConfig;

impl IteratedImmediateSnapshot {
    /// Processes for the participants of `inputs`, running `rounds`
    /// rounds among `n` potential processes.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or exceeds [`MAX_ROUNDS`].
    #[must_use]
    pub fn processes_for(inputs: &Simplex, n: usize, rounds: usize) -> Vec<Self> {
        assert!(
            (1..=MAX_ROUNDS).contains(&rounds),
            "1..={MAX_ROUNDS} rounds"
        );
        inputs
            .iter()
            .map(|x| IteratedImmediateSnapshot {
                id: x.color().index(),
                current: x.clone(),
                rounds,
                round: 0,
                n,
                level: n + 1,
                pending_scan: false,
                decided: None,
            })
            .collect()
    }

    /// Initial memory for `slots` register slots.
    #[must_use]
    pub fn initial_memory(slots: usize, rounds: usize) -> Memory {
        let names: Vec<&'static str> = LEVEL_OBJECTS[..rounds]
            .iter()
            .chain(&INPUT_OBJECTS[..rounds])
            .copied()
            .collect();
        Memory::with_objects(&names, slots)
    }
}

impl Process for IteratedImmediateSnapshot {
    type Config = IteratedConfig;

    fn decided(&self) -> Option<&Vertex> {
        self.decided.as_ref()
    }

    fn step(&self, _config: &IteratedConfig, memory: &Memory) -> Vec<(Self, Memory)> {
        let level_obj = LEVEL_OBJECTS[self.round];
        let input_obj = INPUT_OBJECTS[self.round];
        if !self.pending_scan {
            let mut m = memory.clone();
            let level = self.level - 1;
            m.update(
                input_obj,
                self.id as usize,
                Cell::Vertex(self.current.clone()),
            );
            m.update(level_obj, self.id as usize, Cell::Int(level as i64));
            return vec![(
                IteratedImmediateSnapshot {
                    level,
                    pending_scan: true,
                    ..self.clone()
                },
                m,
            )];
        }
        let at_or_below: Vec<usize> = memory
            .present(level_obj)
            .into_iter()
            .filter(|(_, c)| c.as_int().expect("levels") <= self.level as i64) // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
            .map(|(slot, _)| slot)
            .collect();
        if at_or_below.len() >= self.level {
            let view: BTreeSet<Vertex> = at_or_below
                .iter()
                .map(|&slot| {
                    memory
                        .read(input_obj, slot)
                        .expect("input written with level") // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
                        .as_vertex()
                        .expect("inputs are vertices") // chromata-lint: allow(P1): memory-layout invariant maintained by this protocol's own writes; step() panics surface as ExploreError::WorkerPanicked
                        .clone()
                })
                .collect();
            let out = Vertex::new(Color::new(self.id), Value::view(view));
            if self.round + 1 == self.rounds {
                return vec![(
                    IteratedImmediateSnapshot {
                        decided: Some(out),
                        ..self.clone()
                    },
                    memory.clone(),
                )];
            }
            return vec![(
                IteratedImmediateSnapshot {
                    current: out,
                    round: self.round + 1,
                    level: self.n + 1,
                    pending_scan: false,
                    ..self.clone()
                },
                memory.clone(),
            )];
        }
        vec![(
            IteratedImmediateSnapshot {
                pending_scan: false,
                ..self.clone()
            },
            memory.clone(),
        )]
    }
}

/// Enumerates every `rounds`-round iterated-immediate-snapshot execution
/// on `inputs`, returning the complex generated by the decided views —
/// the empirical `Ch^rounds(σ)`.
///
/// # Errors
///
/// Propagates exploration budget errors.
///
/// # Panics
///
/// Panics if `rounds` is out of range.
pub fn empirical_iterated_protocol_complex(
    inputs: &Simplex,
    rounds: usize,
) -> Result<Complex, ExploreError> {
    let n = inputs.colors().len();
    let slots = inputs
        .iter()
        .map(|v| v.color().index() as usize + 1)
        .max()
        .unwrap_or(0);
    let procs = IteratedImmediateSnapshot::processes_for(inputs, n, rounds);
    let explored = explore(
        procs,
        IteratedImmediateSnapshot::initial_memory(slots, rounds),
        &IteratedConfig,
        50_000_000,
        100_000,
    )?;
    Ok(Complex::from_facets(
        explored.outcomes.into_iter().map(Simplex::new),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_subdivision::iterated_chromatic_subdivision;

    fn sigma(n: u8) -> Simplex {
        Simplex::from_iter((0..n).map(|i| Vertex::of(i, i64::from(i))))
    }

    #[test]
    fn one_round_matches_one_shot_module() {
        let s = sigma(3);
        let iterated = empirical_iterated_protocol_complex(&s, 1).expect("budget");
        let oneshot = crate::iis::empirical_protocol_complex(&s).expect("budget");
        assert_eq!(iterated, oneshot);
    }

    #[test]
    fn two_rounds_two_processes_match_ch2() {
        let s = sigma(2);
        let empirical = empirical_iterated_protocol_complex(&s, 2).expect("budget");
        assert_eq!(empirical.facet_count(), 9, "3² edges");
        let combinatorial = iterated_chromatic_subdivision(&Complex::from_facets([s]), 2);
        assert_eq!(empirical, combinatorial.complex);
    }

    #[test]
    fn two_rounds_three_processes_match_ch2() {
        let s = sigma(3);
        let empirical = empirical_iterated_protocol_complex(&s, 2).expect("budget");
        assert_eq!(empirical.facet_count(), 169, "13² triangles");
        let combinatorial = iterated_chromatic_subdivision(&Complex::from_facets([s]), 2);
        assert_eq!(empirical, combinatorial.complex);
    }

    #[test]
    fn three_rounds_two_processes_match_ch3() {
        let s = sigma(2);
        let empirical = empirical_iterated_protocol_complex(&s, 3).expect("budget");
        assert_eq!(empirical.facet_count(), 27);
        let combinatorial = iterated_chromatic_subdivision(&Complex::from_facets([s]), 3);
        assert_eq!(empirical, combinatorial.complex);
    }

    #[test]
    #[should_panic(expected = "rounds")]
    fn zero_rounds_rejected() {
        let _ = IteratedImmediateSnapshot::processes_for(&sigma(2), 2, 0);
    }
}
