//! Simulated shared memory: named single-writer snapshot objects.
//!
//! The paper's model (§2.1) gives each process a single-writer
//! multi-reader register per object, with atomic `update` and `scan`
//! operations. The scheduler makes each operation one atomic step, so
//! updates and scans are linearizable by construction; the model checker
//! in [`crate::explore`] enumerates the interleavings of these steps.

use std::fmt;
use std::sync::Arc;

use crate::cell::Cell;

/// A named snapshot object identifier.
pub type ObjectId = &'static str;

/// The entire shared memory: name-sorted single-writer register arrays.
///
/// The model checker clones memory on every atomic step and hashes it for
/// state memoization, so the register arrays are `Arc`-shared: a clone is
/// one small allocation plus refcount bumps, and an `update` copies only
/// the one array it touches (copy-on-write via [`Arc::make_mut`]).
/// Equality, ordering and hashing all see through the `Arc` to the
/// register contents, so memoization semantics are unchanged.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Memory {
    objects: Vec<(ObjectId, Arc<Vec<Option<Cell>>>)>,
}

impl Memory {
    /// Creates a memory with the given objects, each an array of `n`
    /// empty registers.
    #[must_use]
    pub fn with_objects(names: &[ObjectId], n: usize) -> Self {
        let mut objects: Vec<(ObjectId, Arc<Vec<Option<Cell>>>)> = names
            .iter()
            .map(|&name| (name, Arc::new(vec![None; n])))
            .collect();
        objects.sort_by_key(|(name, _)| *name);
        Memory { objects }
    }

    fn regs(&self, object: ObjectId) -> &Vec<Option<Cell>> {
        self.objects
            .iter()
            .find(|(name, _)| *name == object)
            .map(|(_, regs)| regs.as_ref())
            .unwrap_or_else(|| panic!("unknown object {object}")) // chromata-lint: allow(P1): registering objects before use is the Memory contract, documented under # Panics
    }

    /// Atomic update: writes `value` into register `slot` of `object`.
    ///
    /// # Panics
    ///
    /// Panics if the object or slot does not exist.
    pub fn update(&mut self, object: ObjectId, slot: usize, value: Cell) {
        let regs = self
            .objects
            .iter_mut()
            .find(|(name, _)| *name == object)
            .map(|(_, regs)| Arc::make_mut(regs))
            .unwrap_or_else(|| panic!("unknown object {object}")); // chromata-lint: allow(P1): registering objects before use is the Memory contract, documented under # Panics
        assert!(slot < regs.len(), "slot {slot} out of range for {object}");
        regs[slot] = Some(value);
    }

    /// Atomic scan: returns the contents of every register of `object`.
    ///
    /// # Panics
    ///
    /// Panics if the object does not exist.
    #[must_use]
    pub fn scan(&self, object: ObjectId) -> Vec<Option<Cell>> {
        self.regs(object).clone()
    }

    /// Atomic read of a single register.
    ///
    /// # Panics
    ///
    /// Panics if the object or slot does not exist.
    #[must_use]
    pub fn read(&self, object: ObjectId, slot: usize) -> Option<Cell> {
        let regs = self.regs(object);
        assert!(slot < regs.len(), "slot {slot} out of range for {object}");
        regs[slot].clone()
    }

    /// The non-empty registers of `object` as `(slot, cell)` pairs.
    #[must_use]
    pub fn present(&self, object: ObjectId) -> Vec<(usize, Cell)> {
        self.regs(object)
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c.clone())))
            .collect()
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, regs) in &self.objects {
            write!(f, "{name}: [")?;
            for (k, r) in regs.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                match r {
                    Some(c) => write!(f, "{c}")?,
                    None => write!(f, "⊥")?,
                }
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_topology::Vertex;

    #[test]
    fn update_scan_roundtrip() {
        let mut m = Memory::with_objects(&["in", "out"], 3);
        assert!(m.scan("in").iter().all(Option::is_none));
        m.update("in", 1, Cell::Int(7));
        assert_eq!(m.read("in", 1), Some(Cell::Int(7)));
        assert_eq!(m.read("in", 0), None);
        assert_eq!(m.present("in"), vec![(1, Cell::Int(7))]);
    }

    #[test]
    fn single_writer_overwrite() {
        let mut m = Memory::with_objects(&["x"], 1);
        m.update("x", 0, Cell::Int(1));
        m.update("x", 0, Cell::Int(2));
        assert_eq!(m.read("x", 0), Some(Cell::Int(2)));
    }

    #[test]
    #[should_panic(expected = "unknown object")]
    fn unknown_object_panics() {
        let m = Memory::with_objects(&["x"], 1);
        let _ = m.scan("y");
    }

    #[test]
    fn memory_is_ordered_for_memoization() {
        let mut a = Memory::with_objects(&["x"], 1);
        let b = a.clone();
        assert_eq!(a, b);
        a.update("x", 0, Cell::Vertex(Vertex::of(0, 0)));
        assert_ne!(a, b);
        let mut set = std::collections::BTreeSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
    }
}
