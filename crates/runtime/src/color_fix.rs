//! The Figure 7 algorithm: from a color-agnostic solution to a chromatic
//! one (paper, §5.2, Lemma 5.3).
//!
//! Each process runs the color-agnostic oracle, then fixes colors through
//! a sequence of snapshots: processes whose *core* (minimal view) already
//! contains a vertex of their color decide it (*pivots*, Claim 2); the at
//! most two non-pivots negotiate along the lexicographically smallest
//! shortest path in the link of the core vertex until they sit on a
//! common link edge.
//!
//! Every `update`/`scan` is one atomic step, so the exhaustive scheduler
//! in [`crate::explore`] verifies the algorithm over *all* interleavings
//! and all adversarial oracle behaviours.
//!
//! Two clarifications relative to the paper's pseudocode, both found by
//! running the exhaustive checker (see EXPERIMENTS.md, F7):
//!
//! 1. The participant scan used to build the link graph for the path
//!    negotiation (step (13)) is taken *after* observing the other
//!    non-pivot in `M_decisions`, so both negotiators compute the link in
//!    the same complex `Δ(τ)` (at that point all three `M_in` entries are
//!    visible to both).
//! 2. A non-pivot's anchor (steps (7b)/(10)) completes the **largest view
//!    it saw in `M_snap`**, not merely its core. Completing only the core
//!    admits a counterexample: a pivot that scanned `M_snap` before
//!    others wrote can decide an own-colored vertex of its *larger* core
//!    that a singleton-core non-pivot never accounts for (e.g. a rainbow
//!    outcome in 2-set agreement). The largest seen view is sound: for
//!    every pivot, either its `M_snap` entry precedes my scan (its view
//!    is ≤ my largest seen view) or its scan follows my write (its core ⊆
//!    my view); in both cases its decision lies in my largest seen view.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use chromata_task::Task;
use chromata_topology::{Color, Graph, Simplex, Vertex};

use crate::cell::Cell;
use crate::explore::Process;
use crate::memory::Memory;
use crate::oracle::{oracle_register, oracle_return, ORACLE_PARTICIPANTS, ORACLE_TARGET};

/// Shared-memory object names used by the algorithm.
pub const OBJECTS: [&str; 6] = [
    "in",
    ORACLE_PARTICIPANTS,
    ORACLE_TARGET,
    "cless",
    "snap",
    "dec",
];

/// Immutable per-run configuration.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// The (link-connected) task being solved; the adversarial
    /// color-agnostic oracle ([`crate::oracle_return`]) is derived from
    /// it.
    pub task: Task,
    /// Per-run memo of link graphs `lk_{Δ(τ)}(v*)`: the exhaustive
    /// scheduler revisits the same `(τ, v*)` pair in thousands of states,
    /// and τ/v* are interned, so the key is cheap. Shared across clones
    /// of the config (the model checker clones per level).
    links: LinkCache,
}

/// Memo table for link graphs, keyed by `(τ, v*)`.
type LinkCache = Arc<Mutex<HashMap<(Simplex, Vertex), Arc<Graph>>>>;

impl Fig7Config {
    /// Configuration for one run on `task`.
    #[must_use]
    pub fn new(task: Task) -> Self {
        Fig7Config {
            task,
            links: Arc::default(),
        }
    }

    /// The (memoized) link graph `lk_{Δ(τ)}(v*)`.
    fn link_graph(&self, tau: &Simplex, pivot_vertex: &Vertex) -> Arc<Graph> {
        let key = (tau.clone(), pivot_vertex.clone());
        if let Some(g) = self
            .links
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return Arc::clone(g);
        }
        let g = Arc::new(Graph::from_complex(
            &self.task.delta().image_of(tau).link(pivot_vertex),
        ));
        self.links
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
            .or_insert(g)
            .clone()
    }
}

/// Creates the initial memory for a run of the algorithm.
#[must_use]
pub fn initial_memory() -> Memory {
    Memory::with_objects(&OBJECTS, 3)
}

/// Creates the processes for the participants of `facet` (a face of the
/// strategy's input facet).
#[must_use]
pub fn processes_for(participants: &Simplex) -> Vec<Fig7> {
    participants
        .iter()
        .map(|x| Fig7 {
            id: x.color(),
            input: x.clone(),
            pc: Pc::Init,
            anchor: None,
            core: Arc::new(BTreeSet::new()),
            seen: Arc::new(BTreeSet::new()),
            other: None,
            decided: None,
        })
        .collect()
}

/// Program counter of the Figure 7 state machine; numbers refer to the
/// paper's pseudocode lines.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Pc {
    /// (1) update `M_in[i] ← xᵢ`.
    Init,
    /// (2) register with the color-agnostic oracle.
    Oracle,
    /// (2) receive the (late-bound) oracle output.
    OracleReturn,
    /// (3) update `M_cless[i] ← yᵢ` — carries the oracle result.
    WriteCless(Vertex),
    /// (3) scan `M_cless` into the view `Vᵢ`.
    ScanCless,
    /// (4) update `M_snap[i] ← Vᵢ` — carries the view.
    WriteSnap(Arc<BTreeSet<Vertex>>),
    /// (4)–(6) scan `M_snap`, compute the core, decide if pivot.
    ScanSnap,
    /// (7a) scan `M_in` (two-vertex core).
    ScanInPair,
    /// (7c) update `M_decisions[i]`.
    WriteDecPair,
    /// (7c)–(7e) scan `M_decisions`.
    ScanDecPair,
    /// (9) scan `M_in` (singleton core).
    ScanInSingle,
    /// (11) update `M_decisions[i]`.
    WriteDecSingle,
    /// (12) scan `M_decisions`.
    ScanDecSingle,
    /// (13) re-scan `M_in` and set up the path negotiation.
    PathSetup,
    /// (14a–b) update `M_decisions[i]` with the next proposal.
    LoopWrite(Vertex),
    /// (14b–c) scan `M_decisions` and re-check the exit condition.
    LoopScan(Vertex),
}

/// The Figure 7 algorithm for one process, as an explicit state machine.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fig7 {
    id: Color,
    input: Vertex,
    pc: Pc,
    /// The anchor `vᵢ` (paper: set at most once, at (7b) or (10)).
    anchor: Option<Vertex>,
    /// The core `V*` (`Arc`-shared: process states are cloned on every
    /// expansion of the model checker).
    core: Arc<BTreeSet<Vertex>>,
    /// The largest view seen in the `M_snap` scan (anchor completion
    /// target; see module docs, clarification 2).
    seen: Arc<BTreeSet<Vertex>>,
    /// The other non-pivot's slot, once observed.
    other: Option<u8>,
    decided: Option<Vertex>,
}

impl Fig7 {
    fn slot(&self) -> usize {
        self.id.index() as usize
    }

    /// Scans `M_in` into a participant simplex.
    fn scan_tau(memory: &Memory) -> Simplex {
        Simplex::from_iter(
            memory
                .present("in")
                .into_iter()
                .map(|(_, c)| c.as_vertex().expect("M_in holds vertices").clone()), // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
        )
    }

    /// The anchor: the vertex of this process's color in the largest view
    /// it saw, if any; otherwise the smallest own-colored vertex
    /// completing that view to a simplex of `Δ(τ)` (module docs,
    /// clarification 2).
    fn pick_anchor(&self, config: &Fig7Config, tau: &Simplex) -> Vertex {
        if let Some(v) = self.seen.iter().find(|v| v.color() == self.id) {
            return v.clone();
        }
        let img = config.task.delta().image_of(tau);
        img.vertices()
            .find(|v| {
                v.color() == self.id && {
                    let mut s: Vec<Vertex> = self.seen.iter().cloned().collect();
                    s.push((*v).clone());
                    img.contains(&Simplex::new(s))
                }
            })
            .unwrap_or_else(|| {
                // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                panic!(
                    "no {}-colored completion of the seen view exists in Δ({tau}) — \
                     the task is not link-connected or the oracle strategy is invalid",
                    self.id
                )
            })
            .clone()
    }

    /// The core vertex `v*` of a singleton core.
    fn core_vertex(&self) -> &Vertex {
        debug_assert_eq!(self.core.len(), 1);
        self.core.iter().next().expect("singleton core") // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
    }

    /// The other non-pivot's `M_decisions` entry, if present.
    fn other_entry(
        memory: &Memory,
        me: usize,
    ) -> Option<(u8, Vertex, Vertex, Arc<BTreeSet<Vertex>>)> {
        memory
            .present("dec")
            .into_iter()
            .filter(|(slot, _)| *slot != me)
            .map(|(slot, c)| {
                let (a, cur, core) = match c {
                    Cell::Decision {
                        anchor,
                        current,
                        core,
                    } => (anchor, current, core),
                    other => panic!("M_decisions holds decision triples, found {other}"), // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                };
                (slot as u8, a, cur, core)
            })
            .next()
    }

    /// The negotiation path: lexicographically smallest shortest path
    /// between the two anchors in the link of `v*`, oriented from *my*
    /// anchor.
    fn negotiation_path(
        &self,
        config: &Fig7Config,
        tau: &Simplex,
        my_anchor: &Vertex,
        their_anchor: &Vertex,
    ) -> Vec<Vertex> {
        let lk = config.link_graph(tau, self.core_vertex());
        let mut path = lk
            .lex_smallest_shortest_path(my_anchor, their_anchor)
            .unwrap_or_else(|| {
                // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                panic!(
                    "anchors {my_anchor} and {their_anchor} are disconnected in \
                     lk_Δ({tau})({}) — the task is not link-connected",
                    self.core_vertex()
                )
            });
        // Canonical orientation: the unordered path is shared; we store it
        // from my anchor.
        if path.first() != Some(my_anchor) {
            path.reverse();
        }
        path
    }
}

impl Process for Fig7 {
    type Config = Fig7Config;

    fn decided(&self) -> Option<&Vertex> {
        self.decided.as_ref()
    }

    fn has_started(&self) -> bool {
        // A process participates once it has announced its input in
        // `M_in` (the `Init` step); crashing before that is externally
        // indistinguishable from never showing up, so the crash-fault
        // verifier judges survivors against the remaining participants.
        self.pc != Pc::Init
    }

    #[allow(clippy::too_many_lines)]
    fn step(&self, config: &Fig7Config, memory: &Memory) -> Vec<(Self, Memory)> {
        let me = self.slot();
        match &self.pc {
            Pc::Init => {
                let mut m = memory.clone();
                m.update("in", me, Cell::Vertex(self.input.clone()));
                vec![(
                    Fig7 {
                        pc: Pc::Oracle,
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::Oracle => {
                // (2a) register with the adversarial oracle; the output is
                // bound later, at return time (module docs of
                // [`crate::oracle`]).
                let m = oracle_register(memory, me, &self.input);
                vec![(
                    Fig7 {
                        pc: Pc::OracleReturn,
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::OracleReturn => {
                // (2b) receive the oracle output; every adversary branch
                // is a successor.
                oracle_return(&config.task, memory)
                    .into_iter()
                    .map(|(y, m)| {
                        (
                            Fig7 {
                                pc: Pc::WriteCless(y),
                                ..self.clone()
                            },
                            m,
                        )
                    })
                    .collect()
            }
            Pc::WriteCless(y) => {
                let mut m = memory.clone();
                m.update("cless", me, Cell::Vertex(y.clone()));
                vec![(
                    Fig7 {
                        pc: Pc::ScanCless,
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::ScanCless => {
                let view: BTreeSet<Vertex> = memory
                    .present("cless")
                    .into_iter()
                    .map(|(_, c)| c.as_vertex().expect("M_cless holds vertices").clone()) // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                    .collect();
                vec![(
                    Fig7 {
                        pc: Pc::WriteSnap(Arc::new(view)),
                        ..self.clone()
                    },
                    memory.clone(),
                )]
            }
            Pc::WriteSnap(view) => {
                let mut m = memory.clone();
                m.update("snap", me, Cell::View(view.clone()));
                vec![(
                    Fig7 {
                        pc: Pc::ScanSnap,
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::ScanSnap => {
                // (5) the minimal non-empty view; views are comparable, so
                // minimal size = minimal by containment. Also record the
                // largest view for anchor completion (module docs).
                let views: Vec<Arc<BTreeSet<Vertex>>> = memory
                    .present("snap")
                    .into_iter()
                    .map(|(_, c)| match c {
                        Cell::View(v) => v,
                        other => panic!("M_snap holds views, found {other}"), // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                    })
                    .collect();
                let core = views
                    .iter()
                    .min_by_key(|v| (v.len(), v.iter().next().cloned()))
                    .expect("own view was written") // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                    .clone();
                let seen: Arc<BTreeSet<Vertex>> =
                    Arc::new(views.iter().flat_map(|v| v.iter().cloned()).collect());
                // (6) pivot?
                if let Some(v) = core.iter().find(|v| v.color() == self.id) {
                    return vec![(
                        Fig7 {
                            decided: Some(v.clone()),
                            core,
                            seen,
                            ..self.clone()
                        },
                        memory.clone(),
                    )];
                }
                let pc = if core.len() == 2 {
                    Pc::ScanInPair
                } else {
                    Pc::ScanInSingle
                };
                vec![(
                    Fig7 {
                        pc,
                        core,
                        seen,
                        ..self.clone()
                    },
                    memory.clone(),
                )]
            }
            Pc::ScanInPair => {
                let tau = Self::scan_tau(memory);
                let anchor = self.pick_anchor(config, &tau);
                vec![(
                    Fig7 {
                        pc: Pc::WriteDecPair,
                        anchor: Some(anchor),
                        ..self.clone()
                    },
                    memory.clone(),
                )]
            }
            Pc::WriteDecPair => {
                let anchor = self.anchor.clone().expect("set at (7b)"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                let mut m = memory.clone();
                m.update(
                    "dec",
                    me,
                    Cell::Decision {
                        anchor: anchor.clone(),
                        current: anchor,
                        core: self.core.clone(),
                    },
                );
                vec![(
                    Fig7 {
                        pc: Pc::ScanDecPair,
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::ScanDecPair => match Self::other_entry(memory, me) {
                None => {
                    // (7d) alone in M_decisions: decide the anchor.
                    vec![(
                        Fig7 {
                            decided: Some(self.anchor.clone().expect("set at (7b)")), // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                            ..self.clone()
                        },
                        memory.clone(),
                    )]
                }
                Some((_, _, _, w)) => {
                    // (7e) the other core must be a singleton (two
                    // non-pivots cannot share a 2-core: their colors would
                    // both be missing from it).
                    assert_eq!(w.len(), 1, "other non-pivot core must be singleton");
                    vec![(
                        Fig7 {
                            pc: Pc::ScanInSingle,
                            core: w,
                            ..self.clone()
                        },
                        memory.clone(),
                    )]
                }
            },
            Pc::ScanInSingle => {
                let tau = Self::scan_tau(memory);
                // (10) pick the anchor only if (7) was skipped.
                let anchor = match &self.anchor {
                    Some(a) => a.clone(),
                    None => self.pick_anchor(config, &tau),
                };
                vec![(
                    Fig7 {
                        pc: Pc::WriteDecSingle,
                        anchor: Some(anchor),
                        ..self.clone()
                    },
                    memory.clone(),
                )]
            }
            Pc::WriteDecSingle => {
                let anchor = self.anchor.clone().expect("set by (10)"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                let mut m = memory.clone();
                m.update(
                    "dec",
                    me,
                    Cell::Decision {
                        anchor: anchor.clone(),
                        current: anchor,
                        core: self.core.clone(),
                    },
                );
                vec![(
                    Fig7 {
                        pc: Pc::ScanDecSingle,
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::ScanDecSingle => match Self::other_entry(memory, me) {
                None => vec![(
                    Fig7 {
                        decided: Some(self.anchor.clone().expect("set by (10)")), // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                        ..self.clone()
                    },
                    memory.clone(),
                )],
                Some((j, _, _, _)) => vec![(
                    Fig7 {
                        pc: Pc::PathSetup,
                        other: Some(j),
                        ..self.clone()
                    },
                    memory.clone(),
                )],
            },
            Pc::PathSetup => {
                // (13) with the clarification from the module docs: τ is
                // scanned now, when all three M_in entries are visible.
                let tau = Self::scan_tau(memory);
                let j = self.other.expect("set at (12)") as usize; // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                let (their_anchor, their_current) = {
                    let (slot, a, cur, _) =
                        Self::other_entry(memory, me).expect("observed at (12)"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                    debug_assert_eq!(slot as usize, j);
                    (a, cur)
                };
                let my_anchor = self.anchor.clone().expect("set by (10)"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                let path = self.negotiation_path(config, &tau, &my_anchor, &their_anchor);
                let lk = config.link_graph(&tau, self.core_vertex());
                // (14) exit check against the freshly scanned proposal.
                if lk.has_edge(&my_anchor, &their_current) {
                    return vec![(
                        Fig7 {
                            decided: Some(my_anchor),
                            ..self.clone()
                        },
                        memory.clone(),
                    )];
                }
                let next = next_proposal(&path, &my_anchor, &their_current);
                vec![(
                    Fig7 {
                        pc: Pc::LoopWrite(next),
                        ..self.clone()
                    },
                    memory.clone(),
                )]
            }
            Pc::LoopWrite(proposal) => {
                let mut m = memory.clone();
                m.update(
                    "dec",
                    me,
                    Cell::Decision {
                        anchor: self.anchor.clone().expect("set by (10)"), // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                        current: proposal.clone(),
                        core: self.core.clone(),
                    },
                );
                vec![(
                    Fig7 {
                        pc: Pc::LoopScan(proposal.clone()),
                        ..self.clone()
                    },
                    m,
                )]
            }
            Pc::LoopScan(proposal) => {
                let (_, their_anchor, their_current, _) =
                    Self::other_entry(memory, me).expect("other non-pivot wrote before"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                let tau = Self::scan_tau(memory);
                let lk = config.link_graph(&tau, self.core_vertex());
                if lk.has_edge(proposal, &their_current) {
                    return vec![(
                        Fig7 {
                            decided: Some(proposal.clone()),
                            ..self.clone()
                        },
                        memory.clone(),
                    )];
                }
                let my_anchor = self.anchor.clone().expect("set by (10)"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
                let path = self.negotiation_path(config, &tau, &my_anchor, &their_anchor);
                let next = next_proposal(&path, proposal, &their_current);
                vec![(
                    Fig7 {
                        pc: Pc::LoopWrite(next),
                        ..self.clone()
                    },
                    memory.clone(),
                )]
            }
        }
    }
}

/// (14a) the next proposal: the vertex adjacent to the other's current
/// proposal on `Π`, on the side of my current position (strictly inside
/// the sub-path between the two prior proposals).
fn next_proposal(path: &[Vertex], mine: &Vertex, theirs: &Vertex) -> Vertex {
    let my_pos = path
        .iter()
        .position(|v| v == mine)
        .expect("my proposal lies on Π"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
    let their_pos = path
        .iter()
        .position(|v| v == theirs)
        .expect("the other proposal lies on Π"); // chromata-lint: allow(P1): protocol-state invariant of the color-fixing algorithm; step() panics are caught by try_par_map and surface as ExploreError::WorkerPanicked
    debug_assert_ne!(my_pos, their_pos, "proposals have different colors");
    if my_pos < their_pos {
        path[their_pos - 1].clone()
    } else {
        path[their_pos + 1].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, run_random};
    use chromata_task::library::{constant_task, identity_task};

    fn run_exhaustive(task: &Task, participants: &Simplex) -> Vec<Vec<Vertex>> {
        let config = Fig7Config::new(task.clone());
        let procs = processes_for(participants);
        let r = explore(procs, initial_memory(), &config, 2_000_000, 200)
            .expect("exploration within budget");
        r.outcomes.into_iter().collect()
    }

    #[test]
    fn identity_task_all_schedules_correct() {
        let t = identity_task(3);
        let sigma = t.input().facets().next().unwrap().clone();
        for outcome in run_exhaustive(&t, &sigma) {
            let decided = Simplex::new(outcome.clone());
            assert!(
                t.delta().carries(&sigma, &decided),
                "outputs {decided} escape Δ(σ)"
            );
            for (k, v) in outcome.iter().enumerate() {
                assert_eq!(v.color().index() as usize, k, "own color decided");
            }
        }
    }

    #[test]
    fn constant_task_solo_and_pairs() {
        let t = constant_task(3);
        let sigma = t.input().facets().next().unwrap().clone();
        for tau in sigma.faces() {
            for outcome in run_exhaustive(&t, &tau) {
                let decided = Simplex::new(outcome.clone());
                assert!(t.delta().carries(&tau, &decided));
            }
        }
    }

    #[test]
    fn random_schedules_match_spec() {
        let t = identity_task(3);
        let sigma = t.input().facets().next().unwrap().clone();
        let config = Fig7Config::new(t.clone());
        for seed in 0..100 {
            let outcome = run_random(
                processes_for(&sigma),
                initial_memory(),
                &config,
                seed,
                10_000,
            )
            .expect("terminates");
            assert!(t.delta().carries(&sigma, &Simplex::new(outcome)));
        }
    }
}
