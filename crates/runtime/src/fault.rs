//! Crash-fault injection: wait-freedom as an executable property.
//!
//! Wait-free solvability (paper, Theorem 5.1) is a claim about *crash
//! tolerance*: every non-crashed process must decide, on every schedule,
//! under any pattern of process failures. The failure-free model checker
//! in [`crate::explore`] cannot observe this — so this module makes
//! crashes first-class, injectable events:
//!
//! * [`explore_crash`] — an exhaustive scheduler where, at every state,
//!   the adversary may *crash* any live process (up to `max_crashes`) in
//!   addition to stepping one. Because a crash only removes future steps
//!   (it never perturbs memory), this single search covers **every**
//!   "crash process `p` after step `k`" plan at once; terminal states are
//!   [`CrashOutcome`]s in which crashed processes may be undecided.
//! * [`FaultPlan`] — an explicit, seedable "crash `p` after its `k`-th
//!   step" schedule for randomized runs ([`run_random_faulted`]) and
//!   exact replay ([`replay_trace`]); plans can be enumerated
//!   exhaustively ([`FaultPlan::enumerate`]) or sampled by seed.
//!
//! A process that crashes before its first step never announced its
//! input, so it is excluded from the *participating* set recorded in the
//! outcome (see [`Process::has_started`]); verifier checks judge survivor
//! outputs against `Δ(participating)`.

use std::collections::BTreeSet;
use std::collections::HashSet;
use std::sync::Arc;

use chromata_topology::{try_par_map, Budget, BuildStructuralHasher, CancelToken, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::explore::{
    trace_collect, trace_push, ExploreError, Level, Outcome, Process, Trace, TraceEvent, TraceLink,
};
use crate::memory::Memory;

/// One injected crash: the process permanently stops after taking
/// `after_steps` steps (`0` = before its first step: a non-participant).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CrashFault {
    /// Index of the process to crash.
    pub process: usize,
    /// Number of steps the process completes before crashing.
    pub after_steps: usize,
}

/// A set of injected crashes, at most one per process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct FaultPlan {
    crashes: Vec<CrashFault>,
}

impl FaultPlan {
    /// The failure-free plan.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given crashes.
    ///
    /// # Panics
    ///
    /// Panics if two crashes name the same process.
    #[must_use]
    pub fn new(mut crashes: Vec<CrashFault>) -> Self {
        crashes.sort_unstable();
        for w in crashes.windows(2) {
            assert_ne!(
                w[0].process, w[1].process,
                "fault plan crashes process {} twice",
                w[0].process
            );
        }
        FaultPlan { crashes }
    }

    /// A single-crash plan.
    #[must_use]
    pub fn crash(process: usize, after_steps: usize) -> Self {
        FaultPlan {
            crashes: vec![CrashFault {
                process,
                after_steps,
            }],
        }
    }

    /// The planned crashes, sorted by process.
    #[must_use]
    pub fn crashes(&self) -> &[CrashFault] {
        &self.crashes
    }

    /// Every plan with at most `max_crashes` crashes among `processes`
    /// processes, each after `0..=max_steps` steps — including the
    /// failure-free plan. For 3 processes, 2 crashes and a step bound of
    /// `s` this is `1 + 3(s+1) + 3(s+1)²` plans.
    #[must_use]
    pub fn enumerate(processes: usize, max_crashes: usize, max_steps: usize) -> Vec<FaultPlan> {
        let mut plans = vec![FaultPlan::none()];
        // Subsets by bitmask, bounded by popcount.
        for mask in 1u32..(1 << processes) {
            let members: Vec<usize> = (0..processes).filter(|i| mask & (1 << i) != 0).collect();
            if members.len() > max_crashes {
                continue;
            }
            // Cartesian product of per-process crash points.
            let mut points = vec![0usize; members.len()];
            loop {
                plans.push(FaultPlan::new(
                    members
                        .iter()
                        .zip(&points)
                        .map(|(&process, &after_steps)| CrashFault {
                            process,
                            after_steps,
                        })
                        .collect(),
                ));
                // Odometer increment.
                let mut k = 0;
                loop {
                    if k == points.len() {
                        break;
                    }
                    points[k] += 1;
                    if points[k] <= max_steps {
                        break;
                    }
                    points[k] = 0;
                    k += 1;
                }
                if k == points.len() {
                    break;
                }
            }
        }
        plans
    }

    /// A pseudo-random plan with at most `max_crashes` crashes, crash
    /// points uniform in `0..=max_steps`.
    #[must_use]
    pub fn sample(seed: u64, processes: usize, max_crashes: usize, max_steps: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(0..max_crashes.min(processes) + 1);
        let mut pool: Vec<usize> = (0..processes).collect();
        let mut crashes = Vec::with_capacity(count);
        for _ in 0..count {
            let k = rng.gen_range(0..pool.len());
            crashes.push(CrashFault {
                process: pool.swap_remove(k),
                after_steps: rng.gen_range(0..max_steps + 1),
            });
        }
        FaultPlan::new(crashes)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.crashes.is_empty() {
            return write!(f, "failure-free");
        }
        for (k, c) in self.crashes.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "crash {} after {} step(s)", c.process, c.after_steps)?;
        }
        Ok(())
    }
}

/// A terminal outcome of a crash-prone execution: crashed processes may
/// be undecided, and processes that crashed before their first step are
/// not *participating*.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CrashOutcome {
    /// Per-process decisions, in process order (`None` = crashed before
    /// deciding).
    pub decisions: Vec<Option<Vertex>>,
    /// Indices of crashed processes, sorted.
    pub crashed: Vec<usize>,
    /// Indices of participating processes (took at least one step),
    /// sorted. Always a superset of the decided processes.
    pub participating: Vec<usize>,
}

impl CrashOutcome {
    /// Builds the outcome from final process states and the crash set.
    fn from_final<P: Process>(processes: &[P], crashed_mask: u32) -> Self {
        CrashOutcome {
            decisions: processes.iter().map(|p| p.decided().cloned()).collect(),
            crashed: (0..processes.len())
                .filter(|i| crashed_mask & (1 << i) != 0)
                .collect(),
            participating: processes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.has_started() || p.decided().is_some())
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// The decided processes as `(index, vertex)` pairs — the survivors
    /// plus any process that decided before crashing.
    #[must_use]
    pub fn decided(&self) -> Vec<(usize, &Vertex)> {
        self.decisions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|v| (i, v)))
            .collect()
    }

    /// The full outcome, if the execution was failure-free and every
    /// process decided.
    #[must_use]
    pub fn complete(&self) -> Option<Outcome> {
        if !self.crashed.is_empty() {
            return None;
        }
        self.decisions.iter().cloned().collect()
    }
}

/// The result of exhaustive crash-injected exploration.
#[derive(Clone, Debug)]
pub struct CrashExplored {
    /// Every reachable terminal (partial) outcome.
    pub outcomes: BTreeSet<CrashOutcome>,
    /// Number of distinct (process states, crash set, memory) system
    /// states visited.
    pub states: usize,
}

/// What a state contributed to its BFS level (crash-aware variant).
enum LevelStep<P> {
    Terminal(CrashOutcome),
    Expanded(Vec<(Vec<P>, u32, Memory, TraceLink)>),
}

/// Exhaustively explores all interleavings *and all crash patterns with
/// at most `max_crashes` crashes*: at every state the adversary may step
/// any live undecided process (through every nondeterministic branch) or
/// crash one. Covers every "crash `p` after step `k`" [`FaultPlan`] —
/// crashes only remove future steps, so branching the crash decision at
/// every scheduling point enumerates exactly the reachable partial
/// executions.
///
/// # Errors
///
/// Structured [`ExploreError`]s, as for [`crate::explore_governed`].
///
/// # Panics
///
/// Panics if there are more than 32 processes (crash sets are bitmasks).
pub fn explore_crash<P>(
    processes: Vec<P>,
    memory: Memory,
    config: &P::Config,
    budget: &Budget,
    cancel: &CancelToken,
    max_crashes: usize,
) -> Result<CrashExplored, ExploreError>
where
    P: Process + Send + Sync,
    P::Config: Sync,
{
    assert!(processes.len() <= 32, "crash masks are 32-bit");
    let mut visited: HashSet<Arc<(Vec<P>, u32, Memory)>, BuildStructuralHasher> =
        HashSet::default();
    let mut outcomes: BTreeSet<CrashOutcome> = BTreeSet::new();
    let mut frontier: Vec<(Vec<P>, u32, Memory, TraceLink)> = vec![(processes, 0, memory, None)];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        if let Err(interrupt) = budget.check(cancel) {
            return Err(ExploreError::Interrupted {
                interrupt,
                states: visited.len(),
                trace: trace_collect(&frontier[0].3),
            });
        }
        let mut level: Level<(Vec<P>, u32, Memory)> = Vec::with_capacity(frontier.len());
        for (procs, crashed, mem, trace) in frontier.drain(..) {
            let st = Arc::new((procs, crashed, mem));
            if visited.insert(Arc::clone(&st)) {
                if visited.len() > budget.max_states {
                    return Err(ExploreError::StateBudgetExceeded {
                        max_states: budget.max_states,
                        trace: trace_collect(&trace),
                    });
                }
                level.push((st, trace));
            }
        }
        let expanded = try_par_map(&level, |(st, trace)| {
            let (procs, crashed, mem) = st.as_ref();
            let live_undecided: Vec<usize> = procs
                .iter()
                .enumerate()
                .filter(|(i, p)| crashed & (1 << i) == 0 && p.decided().is_none())
                .map(|(i, _)| i)
                .collect();
            if live_undecided.is_empty() {
                return Ok(LevelStep::Terminal(CrashOutcome::from_final(
                    procs, *crashed,
                )));
            }
            let mut next = Vec::new();
            for &i in &live_undecided {
                let successors = procs[i].step(config, mem);
                if successors.is_empty() {
                    return Err(i);
                }
                for (branch, (next_p, next_mem)) in successors.into_iter().enumerate() {
                    let mut next_procs = procs.clone();
                    next_procs[i] = next_p;
                    let link = trace_push(trace, TraceEvent::Step { process: i, branch });
                    next.push((next_procs, *crashed, next_mem, link));
                }
                // The adversary may also crash this process here instead.
                if (crashed.count_ones() as usize) < max_crashes {
                    let link = trace_push(trace, TraceEvent::Crash { process: i });
                    next.push((procs.clone(), crashed | (1 << i), mem.clone(), link));
                }
            }
            Ok(LevelStep::Expanded(next))
        })
        .map_err(|panic| ExploreError::WorkerPanicked {
            message: panic.message.clone(),
            trace: trace_collect(&level[panic.index].1),
        })?;
        let mut any_expansion = false;
        for (step, (_, trace)) in expanded.into_iter().zip(&level) {
            match step {
                Ok(LevelStep::Terminal(o)) => {
                    outcomes.insert(o);
                }
                Ok(LevelStep::Expanded(next)) => {
                    any_expansion = true;
                    frontier.extend(next);
                }
                Err(pid) => {
                    return Err(ExploreError::StuckProcess {
                        pid,
                        trace: trace_collect(trace),
                    });
                }
            }
        }
        if any_expansion {
            if depth >= budget.max_steps {
                return Err(ExploreError::StepBoundExceeded(budget.max_steps));
            }
            depth += 1;
        }
    }
    Ok(CrashExplored {
        outcomes,
        states: visited.len(),
    })
}

/// Runs a single pseudo-random schedule with the given [`FaultPlan`]
/// injected: process `p` is crashed the moment it has taken
/// `after_steps` steps. Returns the exact [`Trace`] (steps + crash
/// events, replayable with [`replay_trace`]) alongside the partial
/// outcome.
///
/// # Errors
///
/// [`ExploreError::StepBoundExceeded`] if the run does not terminate
/// within `max_steps`; [`ExploreError::StuckProcess`] if an undecided
/// live process has no successors.
pub fn run_random_faulted<P: Process>(
    mut processes: Vec<P>,
    mut memory: Memory,
    config: &P::Config,
    seed: u64,
    max_steps: usize,
    plan: &FaultPlan,
) -> Result<(Trace, CrashOutcome), ExploreError> {
    let n = processes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps_taken = vec![0usize; n];
    let mut crashed_mask = 0u32;
    let mut trace = Vec::new();
    for _ in 0..max_steps {
        // Apply due crashes before picking the next step.
        for fault in plan.crashes() {
            let p = fault.process;
            if p < n
                && crashed_mask & (1 << p) == 0
                && processes[p].decided().is_none()
                && steps_taken[p] >= fault.after_steps
            {
                crashed_mask |= 1 << p;
                trace.push(TraceEvent::Crash { process: p });
            }
        }
        let pending: Vec<usize> = (0..n)
            .filter(|&i| crashed_mask & (1 << i) == 0 && processes[i].decided().is_none())
            .collect();
        if pending.is_empty() {
            return Ok((
                Trace(trace),
                CrashOutcome::from_final(&processes, crashed_mask),
            ));
        }
        let i = pending[rng.gen_range(0..pending.len())];
        let mut successors = processes[i].step(config, &memory);
        if successors.is_empty() {
            return Err(ExploreError::StuckProcess {
                pid: i,
                trace: Trace(trace),
            });
        }
        let k = rng.gen_range(0..successors.len());
        let (p, m) = successors.swap_remove(k);
        trace.push(TraceEvent::Step {
            process: i,
            branch: k,
        });
        processes[i] = p;
        memory = m;
        steps_taken[i] += 1;
    }
    Err(ExploreError::StepBoundExceeded(max_steps))
}

/// Replays a recorded [`Trace`] (steps and crash events) exactly,
/// returning the resulting partial outcome.
///
/// # Errors
///
/// [`ExploreError::InvalidTrace`] if an event references an unknown,
/// crashed or decided process or an out-of-range branch (the trace does
/// not belong to this system); [`ExploreError::StuckProcess`] if a
/// stepped process has no successors.
pub fn replay_trace<P: Process>(
    mut processes: Vec<P>,
    mut memory: Memory,
    config: &P::Config,
    trace: &Trace,
) -> Result<CrashOutcome, ExploreError> {
    let n = processes.len();
    let mut crashed_mask = 0u32;
    for (at, ev) in trace.0.iter().enumerate() {
        let invalid = |reason: String| ExploreError::InvalidTrace { at, reason };
        match *ev {
            TraceEvent::Crash { process } => {
                if process >= n {
                    return Err(invalid(format!("no process {process}")));
                }
                if crashed_mask & (1 << process) != 0 {
                    return Err(invalid(format!("process {process} already crashed")));
                }
                crashed_mask |= 1 << process;
            }
            TraceEvent::Step { process, branch } => {
                if process >= n {
                    return Err(invalid(format!("no process {process}")));
                }
                if crashed_mask & (1 << process) != 0 {
                    return Err(invalid(format!("trace steps crashed process {process}")));
                }
                if processes[process].decided().is_some() {
                    return Err(invalid(format!("trace steps decided process {process}")));
                }
                let mut successors = processes[process].step(config, &memory);
                if successors.is_empty() {
                    return Err(ExploreError::StuckProcess {
                        pid: process,
                        trace: Trace(trace.0[..at].to_vec()),
                    });
                }
                if branch >= successors.len() {
                    return Err(invalid(format!(
                        "branch {branch} out of range ({} successors)",
                        successors.len()
                    )));
                }
                let (p, m) = successors.swap_remove(branch);
                processes[process] = p;
                memory = m;
            }
        }
    }
    Ok(CrashOutcome::from_final(&processes, crashed_mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::explore::tests::toys;

    #[test]
    fn fault_plan_enumeration_counts() {
        // 3 processes, ≤2 crashes, crash points 0..=1:
        // 1 (free) + 3·2 (singles) + 3·2² (pairs) = 19.
        let plans = FaultPlan::enumerate(3, 2, 1);
        assert_eq!(plans.len(), 19);
        // All distinct.
        let set: BTreeSet<_> = plans.iter().cloned().collect();
        assert_eq!(set.len(), plans.len());
        // No plan crashes more than 2 processes.
        assert!(plans.iter().all(|p| p.crashes().len() <= 2));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_crash_rejected() {
        let _ = FaultPlan::new(vec![
            CrashFault {
                process: 1,
                after_steps: 0,
            },
            CrashFault {
                process: 1,
                after_steps: 2,
            },
        ]);
    }

    #[test]
    fn sampled_plans_are_deterministic_per_seed() {
        for seed in 0..20 {
            let a = FaultPlan::sample(seed, 3, 2, 5);
            let b = FaultPlan::sample(seed, 3, 2, 5);
            assert_eq!(a, b);
            assert!(a.crashes().len() <= 2);
        }
    }

    #[test]
    fn crash_exploration_subsumes_failure_free_outcomes() {
        let (procs, mem) = toys(2);
        let free = explore(procs.clone(), mem.clone(), &(), 10_000, 100).expect("small");
        let crashy = explore_crash(
            procs,
            mem,
            &(),
            &Budget::unlimited()
                .with_max_states(100_000)
                .with_max_steps(100),
            &CancelToken::new(),
            1,
        )
        .expect("small");
        // Every failure-free outcome appears as a crash outcome with an
        // empty crash set.
        for o in &free.outcomes {
            let as_crash = CrashOutcome {
                decisions: o.iter().cloned().map(Some).collect(),
                crashed: Vec::new(),
                participating: vec![0, 1],
            };
            assert!(crashy.outcomes.contains(&as_crash), "missing {o:?}");
        }
        // And crashing adds strictly more outcomes and states.
        assert!(crashy.outcomes.len() > free.outcomes.len());
        assert!(crashy.states > free.states);
    }

    #[test]
    fn survivors_decide_under_every_crash_pattern() {
        // Toy wait-freedom: with ≤1 crash among 2 processes, the survivor
        // always decides; a process crashed before its first step is not
        // participating.
        let (procs, mem) = toys(2);
        let crashy = explore_crash(
            procs,
            mem,
            &(),
            &Budget::unlimited()
                .with_max_states(100_000)
                .with_max_steps(100),
            &CancelToken::new(),
            1,
        )
        .expect("small");
        for o in &crashy.outcomes {
            for i in 0..2 {
                if !o.crashed.contains(&i) {
                    assert!(o.decisions[i].is_some(), "survivor {i} undecided: {o:?}");
                }
            }
            for (i, v) in o.decided() {
                assert_eq!(v.color().index() as usize, i, "own color");
            }
            // Participation matches "took a step": a crashed process is
            // participating iff it advanced past phase 0 — and a survivor
            // that saw only itself implies the other never participated.
            if let Some(v) = o.crashed.first() {
                let survivor = 1 - v;
                let saw = o.decisions[survivor]
                    .as_ref()
                    .unwrap()
                    .value()
                    .as_int()
                    .unwrap();
                if !o.participating.contains(v) {
                    assert_eq!(saw, 1, "non-participant was observed: {o:?}");
                }
            }
        }
    }

    #[test]
    fn two_crashes_among_three_leave_a_deciding_survivor() {
        let (procs, mem) = toys(3);
        let crashy = explore_crash(
            procs,
            mem,
            &(),
            &Budget::unlimited()
                .with_max_states(1_000_000)
                .with_max_steps(200),
            &CancelToken::new(),
            2,
        )
        .expect("small");
        for o in &crashy.outcomes {
            assert!(o.crashed.len() <= 2);
            let deciders = o.decided().len();
            assert!(
                deciders >= 3 - o.crashed.len(),
                "some survivor undecided: {o:?}"
            );
        }
    }

    #[test]
    fn random_faulted_traces_replay_byte_for_byte() {
        let (procs, mem) = toys(3);
        for seed in 0..60 {
            let plan = FaultPlan::sample(seed, 3, 2, 3);
            let (trace, outcome) =
                run_random_faulted(procs.clone(), mem.clone(), &(), seed, 1_000, &plan)
                    .expect("terminates");
            let replayed =
                replay_trace(procs.clone(), mem.clone(), &(), &trace).expect("valid trace");
            assert_eq!(replayed, outcome, "seed {seed} plan {plan}");
            // The one-line trace format survives the round trip too.
            let reparsed: Trace = trace.to_string().parse().expect("parse");
            let replayed2 =
                replay_trace(procs.clone(), mem.clone(), &(), &reparsed).expect("valid trace");
            assert_eq!(
                format!("{replayed2:?}"),
                format!("{outcome:?}"),
                "byte-for-byte reproduction"
            );
        }
    }

    #[test]
    fn crash_at_zero_steps_is_a_non_participant() {
        let (procs, mem) = toys(2);
        let plan = FaultPlan::crash(1, 0);
        let (trace, outcome) = run_random_faulted(procs.clone(), mem.clone(), &(), 7, 1_000, &plan)
            .expect("terminates");
        assert_eq!(outcome.crashed, vec![1]);
        assert_eq!(outcome.participating, vec![0]);
        assert!(outcome.decisions[1].is_none());
        // Survivor saw only itself.
        assert_eq!(
            outcome.decisions[0].as_ref().unwrap().value().as_int(),
            Some(1)
        );
        assert!(trace.0.contains(&TraceEvent::Crash { process: 1 }));
        assert!(outcome.complete().is_none());
    }

    #[test]
    fn invalid_traces_are_rejected_structurally() {
        let (procs, mem) = toys(2);
        // Stepping a crashed process.
        let bad: Trace = "!0 0.0".parse().unwrap();
        match replay_trace(procs.clone(), mem.clone(), &(), &bad) {
            Err(ExploreError::InvalidTrace { at: 1, reason }) => {
                assert!(reason.contains("crashed"), "{reason}");
            }
            other => panic!("expected invalid trace, got {other:?}"),
        }
        // Out-of-range branch.
        let bad: Trace = "0.9".parse().unwrap();
        match replay_trace(procs.clone(), mem.clone(), &(), &bad) {
            Err(ExploreError::InvalidTrace { at: 0, reason }) => {
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected invalid trace, got {other:?}"),
        }
        // Unknown process.
        let bad: Trace = "!7".parse().unwrap();
        assert!(matches!(
            replay_trace(procs, mem, &(), &bad),
            Err(ExploreError::InvalidTrace { at: 0, .. })
        ));
    }
}
