//! Fixture regressions for the interprocedural layer: the symbol table,
//! the call graph, and the P3/D5/L2 passes that run over it.
//!
//! Fixtures use the same `//~ RULE` trailing markers as the local-rule
//! suite, but are linted through [`lint_sources`] under a crafted
//! workspace-relative path so they pick up the role (and, for L2, the
//! scope-file suffix) of the subsystem they stand in for.

use chromata_xtask::diag::Severity;
use chromata_xtask::{lint_sources, Config, Diagnostic, SourceFile};

/// `(line, rule)` pairs declared by `//~` markers, sorted.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            for rule in line[at + 3..].split_whitespace() {
                out.push((i as u32 + 1, rule.to_owned()));
            }
        }
    }
    out.sort();
    out
}

/// Lints one fixture under `rel` with both layers and asserts its
/// diagnostics match the markers exactly.
fn check(rel: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    let files = vec![SourceFile {
        rel: rel.to_owned(),
        src: src.to_owned(),
    }];
    let report = lint_sources(&files, config);
    let mut actual: Vec<(u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule.to_owned()))
        .collect();
    actual.sort();
    assert_eq!(actual, expected_markers(src), "fixture {rel}");
    report.diagnostics
}

#[test]
fn p3_panic_reachability_fixture() {
    let src = include_str!("../fixtures/p3_chain.rs");
    let diags = check("crates/core/src/p3_chain.rs", src, &Config::default());
    // The chain note walks the shortest path from the public root to
    // the panic site: solve -> descend -> classify -> finish.
    let p3 = diags
        .iter()
        .find(|d| d.rule == "P3" && d.message.contains("unwrap"))
        .expect("P3 unwrap finding");
    let note = &p3.notes[0];
    for hop in ["`solve`", "`descend`", "`classify`", "`finish`"] {
        assert!(note.contains(hop), "{note}");
    }
    // The indexing flavour names the other public root and is advisory
    // per-site (P2) but an error as a chain (P3).
    let p3_index = diags
        .iter()
        .find(|d| d.rule == "P3" && d.message.contains("indexing"))
        .expect("P3 indexing finding");
    assert!(
        p3_index.notes[0].contains("`lookup`"),
        "{:?}",
        p3_index.notes
    );
    assert_eq!(p3_index.severity, Severity::Deny);
    // Outside a verdict-path crate the same file raises no P3 at all.
    let other = lint_sources(
        &[SourceFile {
            rel: "crates/cli/src/p3_chain.rs".to_owned(),
            src: src.to_owned(),
        }],
        &Config::default(),
    );
    assert!(
        other.diagnostics.iter().all(|d| d.rule != "P3"),
        "{:?}",
        other.diagnostics
    );
}

#[test]
fn d5_determinism_taint_fixture() {
    let src = include_str!("../fixtures/d5_taint.rs");
    let diags = check("crates/runtime/src/d5_taint.rs", src, &Config::default());
    // Each taint flavour is present and chained to the digest root.
    for source in ["Clock", "thread_rng", "Table"] {
        let d = diags
            .iter()
            .find(|d| d.rule == "D5" && d.message.contains(source))
            .unwrap_or_else(|| panic!("no D5 finding for {source}"));
        assert!(
            d.notes[0].contains("`deterministic_digest`"),
            "{:?}",
            d.notes
        );
        assert!(
            d.message.contains("reachable from determinism root"),
            "{}",
            d.message
        );
    }
}

#[test]
fn d5_fires_from_stage_run_roots() {
    // A stage's `run()` under `crates/core/src/stages/` is a digest
    // root even though it is not named `deterministic_digest`.
    let src = "\
use std::time::Instant as Clock;
pub struct S;
impl S {
    pub fn run(&self) -> u64 {
        sample()
    }
}
fn sample() -> u64 {
    let t = Clock::now();
    drop(t);
    0
}
";
    let files = vec![SourceFile {
        rel: "crates/core/src/stages/probe.rs".to_owned(),
        src: src.to_owned(),
    }];
    let report = lint_sources(&files, &Config::default());
    let d5 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "D5")
        .expect("D5 fires from run()");
    assert!(d5.notes[0].contains("`S::run`"), "{:?}", d5.notes);
}

#[test]
fn l2_lock_order_fixture() {
    let src = include_str!("../fixtures/l2_locks.rs");
    let diags = check("crates/fixture/src/serve.rs", src, &Config::default());
    let cycle = diags
        .iter()
        .find(|d| d.message.contains("cycle"))
        .expect("cycle finding");
    assert!(
        cycle.message.contains("`alpha`") && cycle.message.contains("`beta`"),
        "{}",
        cycle.message
    );
    // Both directions of the cycle are cited.
    assert_eq!(cycle.notes.len(), 2, "{:?}", cycle.notes);
    let held = diags
        .iter()
        .find(|d| d.message.contains("held across"))
        .expect("held-across-I/O finding");
    assert!(held.message.contains("`exchange(..)`"), "{}", held.message);
    // The same file outside the L2 scope list raises nothing: the pass
    // only analyzes the concurrency-bearing modules.
    let other = lint_sources(
        &[SourceFile {
            rel: "crates/fixture/src/quiet.rs".to_owned(),
            src: src.to_owned(),
        }],
        &Config::default(),
    );
    assert!(
        other.diagnostics.iter().all(|d| d.rule != "L2"),
        "{:?}",
        other.diagnostics
    );
}

#[test]
fn symbol_table_scopes_nested_items() {
    let src = include_str!("../fixtures/symbols_scoping.rs");
    let tokens = chromata_xtask::lexer::lex(src);
    let code: Vec<&chromata_xtask::lexer::Tok> =
        tokens.iter().filter(|t| !t.is_comment()).collect();
    let syms = chromata_xtask::symbols::parse(&code);
    let fn_named = |n: &str| {
        syms.fns
            .iter()
            .find(|f| f.name == n)
            .unwrap_or_else(|| panic!("fn {n}"))
    };
    // Inherent impl method: qualified by its container type.
    let build = fn_named("build");
    assert_eq!(build.qual, "Widget::build");
    assert_eq!(build.container.as_deref(), Some("Widget"));
    // A nested fn sits inside its parent's body, is not public, and is
    // qualified by the module chain (its parent fn is not a container).
    let helper = fn_named("helper");
    assert_eq!(helper.qual, "outer::helper");
    assert!(!helper.is_pub);
    let (bs, be) = build.body.expect("build body");
    let (hs, he) = helper.body.expect("helper body");
    assert!(bs < hs && he <= be, "helper nests in build");
    // Trait decl methods: the defaulted one has a body, the required
    // one does not; both are listed under the trait.
    let render_trait = syms
        .traits
        .iter()
        .find(|t| t.name == "Render")
        .expect("trait Render");
    assert_eq!(render_trait.methods, vec!["render", "tag"]);
    assert!(fn_named("tag").body.is_some());
    // The required trait method is recorded bodyless under the trait;
    // the trait-for-type impl's copy is qualified by the *type*.
    let renders: Vec<_> = syms.fns.iter().filter(|f| f.name == "render").collect();
    assert_eq!(renders.len(), 2);
    assert_eq!(renders[0].qual, "Render::render");
    assert!(renders[0].body.is_none());
    assert_eq!(renders[1].qual, "Widget::render");
    assert!(renders[1].body.is_some());
    // `-> impl Render` does not open an impl scope: `make` stays at
    // module level, and the deeper module chain is tracked.
    assert_eq!(fn_named("make").qual, "outer::make");
    assert_eq!(fn_named("leaf").qual, "outer::inner::leaf");
}

/// A seeded interprocedural violation must fail a `-D all` run, proving
/// the new rules are *primary* (CI's static-analysis job relies on it).
#[test]
fn p3_is_primary_under_deny_all() {
    let src = "\
pub fn api() -> u32 {
    helper()
}
fn helper() -> u32 {
    inner()
}
fn inner() -> u32 {
    std::process::id().checked_mul(2).unwrap()
}
";
    let report = lint_sources(
        &[SourceFile {
            rel: "crates/topology/src/seeded.rs".to_owned(),
            src: src.to_owned(),
        }],
        &Config::deny_all(),
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "P3" && d.severity == Severity::Deny),
        "{:?}",
        report.diagnostics
    );
    assert!(report.failed());
}

/// One rendered diagnostic per interprocedural rule is pinned
/// byte-for-byte, chain note included — the P3 one with a three-hop
/// chain below the public root.
#[test]
fn rendered_interprocedural_diagnostics() {
    let p3 = check_one(
        "crates/core/src/p3_chain.rs",
        include_str!("../fixtures/p3_chain.rs"),
        |d| d.rule == "P3" && d.message.contains("unwrap"),
    );
    assert_eq!(
        p3,
        "\
error[P3]: `.unwrap()` reachable from public verdict-path API `solve`
  --> crates/core/src/p3_chain.rs:19:22
   |
19 |     n.checked_mul(2).unwrap() //~ P1 P3
   |                      ^^^^^^
   = note: call chain: `solve` (crates/core/src/p3_chain.rs:6) -> `descend` (crates/core/src/p3_chain.rs:10) -> `classify` (crates/core/src/p3_chain.rs:14) -> `finish` (crates/core/src/p3_chain.rs:18)
   = help: break the chain with a structured error along the path, or annotate the site `// chromata-lint: allow(P3): <why this site cannot fire>`
"
    );
    let d5 = check_one(
        "crates/runtime/src/d5_taint.rs",
        include_str!("../fixtures/d5_taint.rs"),
        |d| d.rule == "D5" && d.message.contains("Clock"),
    );
    assert_eq!(
        d5,
        "\
error[D5]: `Clock::now()` (aliasing `std::time::Instant`) reachable from determinism root `deterministic_digest`: digests and verdicts must not observe nondeterministic state
  --> crates/runtime/src/d5_taint.rs:18:13
   |
18 |     let t = Clock::now(); //~ D2 D5
   |             ^^^^^
   = note: call chain: `deterministic_digest` (crates/runtime/src/d5_taint.rs:9) -> `mix` (crates/runtime/src/d5_taint.rs:13) -> `salt` (crates/runtime/src/d5_taint.rs:17)
   = help: hoist the nondeterminism out of the digest path (`govern.rs` is the sanctioned clock boundary) or annotate the site `// chromata-lint: allow(D5): <why the value cannot reach a digest>`
"
    );
    let l2 = check_one(
        "crates/fixture/src/serve.rs",
        include_str!("../fixtures/l2_locks.rs"),
        |d| d.rule == "L2" && d.message.contains("cycle"),
    );
    assert_eq!(
        l2,
        "\
error[L2]: lock acquisition-order cycle among `alpha`, `beta`: two threads taking them in opposite order deadlock
  --> crates/fixture/src/serve.rs:27:20
   |
27 |     let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner); //~ L2
   |                    ^^^^
   = note: `beta` acquired at crates/fixture/src/serve.rs:27 while `alpha` (acquired at line 26) is still held, in `forward`
   = note: `alpha` acquired at crates/fixture/src/serve.rs:34 while `beta` (acquired at line 33) is still held, in `backward`
   = help: acquire the locks in one global order everywhere, or annotate the acquisition `// chromata-lint: allow(L2): <why the cycle cannot deadlock>`
"
    );
}

/// Renders the single diagnostic matching `pick` from linting `src`
/// under `rel`.
fn check_one(rel: &str, src: &str, pick: impl Fn(&Diagnostic) -> bool) -> String {
    let report = lint_sources(
        &[SourceFile {
            rel: rel.to_owned(),
            src: src.to_owned(),
        }],
        &Config::default(),
    );
    let matches: Vec<&Diagnostic> = report.diagnostics.iter().filter(|d| pick(d)).collect();
    assert_eq!(matches.len(), 1, "{matches:?}");
    matches[0].to_string()
}
