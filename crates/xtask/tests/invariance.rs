//! Property tests: lint output is a function of the *code*, not of its
//! layout. Injecting inline comments or horizontal whitespace at token
//! boundaries, or appending a `#[cfg(test)]` module full of violations,
//! must not change a single `(rule, line, message)` triple.

use chromata_xtask::{lexer, lint_sources, Config, SourceFile};
use proptest::prelude::*;

/// The diagnostic fingerprint the properties compare. Columns are
/// deliberately excluded: same-line insertions shift them.
fn fingerprint(rel: &str, src: &str) -> Vec<(String, u32, String)> {
    let report = lint_sources(
        &[SourceFile {
            rel: rel.to_owned(),
            src: src.to_owned(),
        }],
        &Config::default(),
    );
    let mut out: Vec<(String, u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule.to_owned(), d.line, d.message.clone()))
        .collect();
    out.sort();
    out
}

/// Byte offset of each token's first character (fixtures are ASCII, so
/// char columns are byte columns).
fn token_offsets(src: &str) -> Vec<usize> {
    let mut line_starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    lexer::lex(src)
        .iter()
        .map(|t| line_starts[(t.line - 1) as usize] + (t.col - 1) as usize)
        .collect()
}

/// Rebuilds `src` with `filler` inserted at the start of each chosen
/// token (none of the fillers contain a newline, so lines survive).
fn inject(src: &str, choices: &[(usize, &str)]) -> String {
    let offsets = token_offsets(src);
    let mut cuts: Vec<(usize, &str)> = choices
        .iter()
        .filter_map(|&(tok, filler)| offsets.get(tok).map(|&o| (o, filler)))
        .collect();
    cuts.sort_by_key(|&(o, _)| o);
    let mut out = String::with_capacity(src.len() + cuts.len() * 8);
    let mut at = 0usize;
    for (o, filler) in cuts {
        out.push_str(&src[at..o]);
        out.push_str(filler);
        at = o;
    }
    out.push_str(&src[at..]);
    out
}

const FILLERS: &[&str] = &["/* noise */", "  ", "\t", "/*x*/ "];

/// The fixture corpus: every interprocedural rule plus the alias-aware
/// local rules, under the rels the fixture suite uses.
const CORPUS: &[(&str, &str)] = &[
    (
        "crates/core/src/p3_chain.rs",
        include_str!("../fixtures/p3_chain.rs"),
    ),
    (
        "crates/runtime/src/d5_taint.rs",
        include_str!("../fixtures/d5_taint.rs"),
    ),
    (
        "crates/fixture/src/serve.rs",
        include_str!("../fixtures/l2_locks.rs"),
    ),
    (
        "crates/core/src/d2_alias.rs",
        include_str!("../fixtures/d2_alias.rs"),
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn comment_and_whitespace_injection_is_invisible(
        which in 0usize..4,
        picks in proptest::collection::vec((0usize..600, 0usize..4), 0..24),
    ) {
        let (rel, src) = CORPUS[which];
        let base = fingerprint(rel, src);
        let choices: Vec<(usize, &str)> =
            picks.iter().map(|&(t, f)| (t, FILLERS[f])).collect();
        let mutated = inject(src, &choices);
        prop_assert_eq!(base, fingerprint(rel, &mutated));
    }

    #[test]
    fn appended_test_module_adds_nothing(which in 0usize..4) {
        let (rel, src) = CORPUS[which];
        let base = fingerprint(rel, src);
        let mutated = format!(
            "{src}\n#[cfg(test)]\nmod injected {{\n\
             use std::collections::HashMap;\n\
             pub fn bad() {{ let x: Option<u32> = None; x.unwrap(); }}\n\
             pub fn clock() {{ let _t = std::time::Instant::now(); }}\n\
             pub fn index(xs: &[u32]) -> u32 {{ xs[0] }}\n\
             }}\n"
        );
        prop_assert_eq!(base, fingerprint(rel, &mutated));
    }
}
