//! Fixture regression tests: every lint rule is pinned to an exact set
//! of diagnostics on a purpose-built source file.
//!
//! Each fixture under `fixtures/` marks its expected findings with
//! `//~ RULE` trailing comments (one rule id per expected diagnostic on
//! that line, space-separated when a line triggers several). The harness
//! runs `lint_source` and requires the `(line, rule)` multisets to match
//! exactly — a rule that over- or under-fires fails the suite, so rule
//! behaviour cannot drift silently.

use chromata_xtask::diag::Severity;
use chromata_xtask::rules::{lint_source, Config, Role};
use chromata_xtask::Diagnostic;

fn role(verdict_path: bool, library: bool) -> Role {
    Role {
        verdict_path,
        library,
        clock_exempt: false,
        lock_exempt: false,
        fs_exempt: false,
        net_exempt: false,
    }
}

/// `(line, rule)` pairs declared by `//~` markers, sorted.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            for rule in line[at + 3..].split_whitespace() {
                out.push((i as u32 + 1, rule.to_owned()));
            }
        }
    }
    out.sort();
    out
}

/// Lints a fixture and asserts its diagnostics match the markers.
fn check(name: &str, src: &str, role: Role) -> Vec<Diagnostic> {
    let rel = format!("crates/fixture/src/{name}.rs");
    let diags = lint_source(&rel, src, role, &Config::default());
    let mut actual: Vec<(u32, String)> =
        diags.iter().map(|d| (d.line, d.rule.to_owned())).collect();
    actual.sort();
    assert_eq!(actual, expected_markers(src), "fixture {name}");
    diags
}

#[test]
fn d1_hash_iteration_fixture() {
    let diags = check(
        "d1_iteration",
        include_str!("../fixtures/d1_iteration.rs"),
        role(true, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    // The same file outside a verdict-path crate is clean.
    let other = lint_source(
        "crates/fixture/src/d1_iteration.rs",
        include_str!("../fixtures/d1_iteration.rs"),
        role(false, false),
        &Config::default(),
    );
    assert!(other.is_empty(), "{other:?}");
}

#[test]
fn d1_stage_cache_fixture() {
    // The staged verdict engine's cache module is the main in-tree D1
    // surface: justified allows on the sanctioned map+queue shape stay
    // clean, unjustified hash containers still fire, test modules are
    // exempt.
    let diags = check(
        "d1_stages",
        include_str!("../fixtures/d1_stages.rs"),
        role(true, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        diags.iter().any(|d| d.message.contains("HashSet")),
        "{diags:?}"
    );
    // Outside a verdict-path crate D1 never fires — so the justified
    // allows themselves degrade to U1 stale-annotation warnings, and
    // nothing else remains.
    let other = lint_source(
        "crates/fixture/src/d1_stages.rs",
        include_str!("../fixtures/d1_stages.rs"),
        role(false, false),
        &Config::default(),
    );
    assert!(
        other
            .iter()
            .all(|d| d.rule == "U1" && d.severity == Severity::Warn),
        "{other:?}"
    );
    assert_eq!(other.len(), 2, "{other:?}");
}

#[test]
fn d2_clock_and_env_fixture() {
    let diags = check(
        "d2_clock",
        include_str!("../fixtures/d2_clock.rs"),
        role(false, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    // govern.rs is the sanctioned home for these reads: exempt.
    let exempt = Role {
        clock_exempt: true,
        ..role(false, false)
    };
    let none = lint_source(
        "crates/topology/src/govern.rs",
        include_str!("../fixtures/d2_clock.rs"),
        exempt,
        &Config::default(),
    );
    assert!(none.is_empty(), "{none:?}");
}

#[test]
fn d3_fs_confinement_fixture() {
    let diags = check(
        "d3_fs",
        include_str!("../fixtures/d3_fs.rs"),
        role(true, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        diags.iter().any(|d| d.message.contains("`std::fs` call")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`File` constructor")),
        "{diags:?}"
    );
    // The persistence module itself is the sanctioned home: exempt.
    let exempt = Role {
        fs_exempt: true,
        ..role(true, false)
    };
    let none = lint_source(
        "crates/core/src/stages/persist.rs",
        include_str!("../fixtures/d3_fs.rs"),
        exempt,
        &Config::default(),
    );
    assert!(
        none.iter()
            .all(|d| d.rule == "U1" && d.severity == Severity::Warn),
        "{none:?}"
    );
    // Outside a verdict-path crate D3 never fires (the CLI loads task
    // files from disk legitimately); the justified allow degrades to a
    // U1 stale-annotation warning, nothing else remains.
    let other = lint_source(
        "crates/fixture/src/d3_fs.rs",
        include_str!("../fixtures/d3_fs.rs"),
        role(false, false),
        &Config::default(),
    );
    assert!(
        other
            .iter()
            .all(|d| d.rule == "U1" && d.severity == Severity::Warn),
        "{other:?}"
    );
    assert_eq!(other.len(), 1, "{other:?}");
}

#[test]
fn d4_net_confinement_fixture() {
    let diags = check(
        "d4_net",
        include_str!("../fixtures/d4_net.rs"),
        role(false, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`TcpListener` constructor")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`TcpStream` constructor")),
        "{diags:?}"
    );
    // The verdict-service module itself is the sanctioned home: exempt,
    // and its justified allow degrades to a U1 stale-annotation warning.
    let exempt = Role {
        net_exempt: true,
        ..role(false, false)
    };
    let none = lint_source(
        "crates/cli/src/serve.rs",
        include_str!("../fixtures/d4_net.rs"),
        exempt,
        &Config::default(),
    );
    assert!(
        none.iter()
            .all(|d| d.rule == "U1" && d.severity == Severity::Warn),
        "{none:?}"
    );
    assert_eq!(none.len(), 1, "{none:?}");
}

#[test]
fn chaos_exemptions_are_path_exact() {
    use chromata_xtask::role_for;
    // The chaos campaign driver is exempt from clock (D2) and socket
    // (D4) confinement — it times recoveries and abuses real sockets on
    // purpose…
    let driver = role_for("crates/cli/src/chaos.rs").unwrap();
    assert!(driver.clock_exempt && driver.net_exempt);
    // …but the exemption is path-exact: the core fault-schedule module
    // and any other chaos-named file stay fully confined.
    let core = role_for("crates/core/src/stages/chaos.rs").unwrap();
    assert!(!core.clock_exempt && !core.net_exempt);
    let src = "pub fn probe() {\n    \
               let _ = std::net::TcpStream::connect(\"127.0.0.1:1\"); //~ D4\n}\n";
    let diags = lint_source(
        "crates/core/src/stages/chaos.rs",
        src,
        core,
        &Config::default(),
    );
    let actual: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(actual, vec![(2, "D4")], "{diags:?}");
    let stray = role_for("crates/task/src/chaos.rs").unwrap();
    assert!(!stray.clock_exempt && !stray.net_exempt);
}

#[test]
fn p1_panic_freedom_fixture() {
    let diags = check(
        "p1_panic_freedom",
        include_str!("../fixtures/p1_panic_freedom.rs"),
        role(false, true),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
}

#[test]
fn p2_indexing_fixture_is_advisory() {
    let diags = check(
        "p2_indexing",
        include_str!("../fixtures/p2_indexing.rs"),
        role(false, true),
    );
    // P2 warns by default *and* stays a warning under `-D all`: `all`
    // covers the primary rules only.
    assert!(diags.iter().all(|d| d.severity == Severity::Warn));
    let under_deny_all = lint_source(
        "crates/fixture/src/p2_indexing.rs",
        include_str!("../fixtures/p2_indexing.rs"),
        role(false, true),
        &Config::deny_all(),
    );
    assert!(under_deny_all.iter().all(|d| d.severity == Severity::Warn));
}

#[test]
fn l1_lock_unwrap_fixture() {
    let diags = check(
        "l1_lock_unwrap",
        include_str!("../fixtures/l1_lock_unwrap.rs"),
        role(false, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    // The poison-recovery module itself is exempt.
    let exempt = Role {
        lock_exempt: true,
        ..role(false, false)
    };
    let none = lint_source(
        "crates/core/src/stages/cache.rs",
        include_str!("../fixtures/l1_lock_unwrap.rs"),
        exempt,
        &Config::default(),
    );
    assert!(none.is_empty(), "{none:?}");
}

#[test]
fn allow_without_justification_is_itself_an_error() {
    let diags = check(
        "a1_allow_grammar",
        include_str!("../fixtures/a1_allow_grammar.rs"),
        role(false, false),
    );
    // A1 denies by default: a bare `allow(D1)` fails the run rather than
    // silencing anything.
    assert!(diags
        .iter()
        .all(|d| d.rule == "A1" && d.severity == Severity::Deny));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("without a justification")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("unknown rule `Z9`")));
}

#[test]
fn unused_allow_warns() {
    let diags = check(
        "u1_unused_allow",
        include_str!("../fixtures/u1_unused_allow.rs"),
        role(true, false),
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, Severity::Warn);
    assert!(diags[0].message.contains("unused allow(D1)"));
}

#[test]
fn justified_allows_suppress_their_target_lines() {
    // No markers in this fixture: it must lint perfectly clean, with no
    // finding AND no unused-allow residue.
    check(
        "allow_suppression",
        include_str!("../fixtures/allow_suppression.rs"),
        role(true, true),
    );
}

/// The CI `static-analysis` job runs `cargo xtask lint -D all`; a seeded
/// violation must fail that run (non-zero exit via `Report::failed`).
#[test]
fn seeded_violation_fails_a_deny_all_run() {
    let diags = lint_source(
        "crates/fixture/src/seeded.rs",
        "use std::collections::HashMap;\n",
        role(true, false),
        &Config::deny_all(),
    );
    let report = chromata_xtask::Report {
        diagnostics: diags,
        files_scanned: 1,
    };
    assert_eq!(report.errors(), 1);
    assert!(report.failed());
}

/// One representative diagnostic is pinned byte-for-byte: rustc-style
/// header, `file:line:col` arrow, source excerpt with carets, and the
/// actionable help line naming the escape hatch.
#[test]
fn rendered_diagnostic_is_rustc_style() {
    let src = "use std::collections::HashMap;\n";
    let diags = lint_source(
        "crates/topology/src/seeded.rs",
        src,
        role(true, false),
        &Config::default(),
    );
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    let expected = "\
error[D1]: `HashMap` in a verdict-path crate: iteration order is not deterministic task semantics
  --> crates/topology/src/seeded.rs:1:23
  |
1 | use std::collections::HashMap;
  |                       ^^^^^^^
  = help: use BTreeMap/BTreeSet or sort before iterating; if the container is never iterated (or the order provably cannot escape), annotate `// chromata-lint: allow(D1): <why>`
";
    assert_eq!(rendered, expected);
}

/// Regression for the alias evasion gap: `use std::time::Instant as
/// Clock;` used to hide the clock read from D2's token patterns. The
/// symbol table's alias map closes it.
#[test]
fn d2_alias_evasion_fixture() {
    let diags = check(
        "d2_alias",
        include_str!("../fixtures/d2_alias.rs"),
        role(false, false),
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    assert!(
        diags.iter().any(|d| d
            .message
            .contains("`Clock::now()` (aliasing `std::time::Instant`)")),
        "{diags:?}"
    );
    // govern.rs remains the sanctioned boundary, alias or not.
    let exempt = Role {
        clock_exempt: true,
        ..role(false, false)
    };
    let none = lint_source(
        "crates/topology/src/govern.rs",
        include_str!("../fixtures/d2_alias.rs"),
        exempt,
        &Config::default(),
    );
    assert!(none.is_empty(), "{none:?}");
}
