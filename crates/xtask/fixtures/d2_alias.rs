// Fixture: rule D2 through `use ... as` aliases — the classic evasion
// `use std::time::Instant as Clock;` must not hide the clock read.
// (`SystemTime` and `std::env::var` are flagged already at the import:
// naming them at all is a clock/env dependency; `Instant` is pure as a
// value type, so only `::now()` through the alias fires.)

use std::time::Instant as Clock;
use std::time::SystemTime as Wall; //~ D2
use std::env as environment;
use std::env::var as read_env; //~ D2

pub fn aliased_instant() -> Clock {
    Clock::now() //~ D2
}

pub fn aliased_system_time() -> Wall { //~ D2
    Wall::now() //~ D2
}

pub fn aliased_env_module() -> Option<String> {
    environment::var("CHROMATA_FIXTURE_KNOB").ok() //~ D2
}

pub fn aliased_env_fn() -> Option<String> {
    read_env("CHROMATA_FIXTURE_KNOB").ok() //~ D2
}

// The alias as a *type* is still pure: naming `Clock` in a signature or
// calling non-clock methods on a passed-in value observes nothing.
pub fn remaining(deadline: Clock, now: Clock) -> std::time::Duration {
    deadline.duration_since(now)
}
