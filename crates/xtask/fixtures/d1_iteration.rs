// Fixture: rule D1 — hash containers on the verdict path.
// Linted with the verdict-path role; trailing tilde-comments mark the
// expected findings.

use std::collections::HashMap; //~ D1
use std::collections::HashSet; //~ D1
use std::collections::BTreeMap;

pub fn histogram(values: &[u32]) -> BTreeMap<u32, usize> {
    let mut seen: HashSet<u32> = HashSet::new(); //~ D1 D1
    let mut out = BTreeMap::new();
    for v in values {
        if seen.insert(*v) {
            *out.entry(*v).or_insert(0) += 1;
        }
    }
    out
}

// Ordered containers never trigger the rule.
pub fn ordered() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    // Test-gated code is out of scope: hash iteration cannot leak into
    // shipped verdicts from here.
    use std::collections::HashMap;

    #[test]
    fn hash_containers_are_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
