// Fixture: rule P2 (advisory) — slice/array indexing in library code.

pub fn first(xs: &[u32]) -> u32 {
    xs[0] //~ P2
}

pub fn corner(grid: &[Vec<u32>]) -> u32 {
    grid[0][1] //~ P2 P2
}

pub fn chained(pairs: &[(u32, u32)]) -> u32 {
    pairs.to_vec()[0].0 //~ P2
}

// The checked alternative is what the rule suggests.
pub fn safe_first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

// Type syntax and array literals are not indexing.
pub fn zeros() -> [u32; 4] {
    [0, 0, 0, 0]
}
