// Fixture: justified allows silence exactly their target lines — the
// harness asserts this file lints *clean* (and with no unused allows).

use std::collections::HashMap; // chromata-lint: allow(D1): imported for a key-addressed cache

pub struct Cache {
    // chromata-lint: allow(D1): key-addressed only; never iterated
    entries: HashMap<u64, u64>,
}

impl Cache {
    pub fn new() -> Self {
        // chromata-lint: allow(D1): see the field's justification
        Cache { entries: HashMap::new() }
    }

    pub fn get(&self, k: u64) -> u64 {
        // chromata-lint: allow(P1): fixture invariant — every queried key was inserted at construction
        *self.entries.get(&k).expect("key present")
    }
}
