// Fixture: rule P3 — transitive panic-reachability. The public entry
// point `solve` never panics itself; the panic hides three hops down a
// private helper chain, where the per-site rule P1 also fires. P3 adds
// the chain: the *public contract* is what makes the site an error.

pub fn solve(n: u32) -> u32 {
    descend(n)
}

fn descend(n: u32) -> u32 {
    classify(n)
}

fn classify(n: u32) -> u32 {
    finish(n)
}

fn finish(n: u32) -> u32 {
    n.checked_mul(2).unwrap() //~ P1 P3
}

// A panic only reachable from a *private* root is P1's business alone:
// no public API reaches `orphan`, so P3 stays quiet on it.
fn orphan() {
    unreachable!() //~ P1
}

// Indexing three hops down is the P2-flavoured variant of the same
// chain: advisory per site, an error once `lookup` exposes it.
pub fn lookup(xs: &[u32], i: usize) -> u32 {
    hop_one(xs, i)
}

fn hop_one(xs: &[u32], i: usize) -> u32 {
    hop_two(xs, i)
}

fn hop_two(xs: &[u32], i: usize) -> u32 {
    xs[i] //~ P2 P3
}
