// Fixture: rule L1 — poison-blind lock acquisition.

use std::sync::Mutex;

pub fn increment(counter: &Mutex<u64>) {
    let mut guard = counter.lock().unwrap(); //~ L1
    *guard += 1;
}

pub fn read(counter: &Mutex<u64>) -> u64 {
    *counter.lock().expect("poisoned") //~ L1
}

// The sanctioned pattern: recover the guard and keep going (callers
// re-validate invariants where the data can be torn).
pub fn recovering(counter: &Mutex<u64>) -> u64 {
    *counter
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
