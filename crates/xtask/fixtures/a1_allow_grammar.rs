// Fixture: rule A1 — the escape hatch itself is linted.

// chromata-lint: allow(D1) //~ A1
pub fn missing_justification() {}

// chromata-lint: allow(Z9): there is no rule Z9 //~ A1
pub fn unknown_rule() {}

// chromata-lint: allow(): names no rules at all //~ A1
pub fn empty_rule_list() {}

// chromata-lint: deny(D1) is not the allow grammar //~ A1
pub fn wrong_verb() {}
