// Fixture: rule D5 — determinism taint reaching a digest root. The
// roots here are `deterministic_digest` and the helpers it calls; the
// sources hide behind a `use ... as` alias (invisible to token-local
// D2 until the alias table resolves it) and behind two call hops.

use std::collections::HashMap as Table;
use std::time::Instant as Clock;

pub fn deterministic_digest(seed: u64) -> u64 {
    mix(seed)
}

fn mix(seed: u64) -> u64 {
    seed ^ salt() ^ jitter() ^ order_bits()
}

fn salt() -> u64 {
    let t = Clock::now(); //~ D2 D5
    drop(t);
    0
}

fn jitter() -> u64 {
    let r = thread_rng(); //~ D5
    drop(r);
    0
}

fn order_bits() -> u64 {
    let m = Table::<u64, u64>::new(); //~ D5
    m.len() as u64
}

// Not reachable from any determinism root: token-local D2 still fires,
// but no chain ties it to a digest, so D5 stays quiet.
pub fn unrooted_probe() -> u64 {
    let t = Clock::now(); //~ D2
    drop(t);
    1
}
