// Fixture: rule D3 — filesystem access confined to `stages/persist.rs`.

use std::fs;
use std::fs::File;
use std::path::Path;

pub fn read_config(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok() //~ D3
}

pub fn open_log(path: &Path) -> std::io::Result<File> {
    File::open(path) //~ D3
}

pub fn touch(path: &Path) -> std::io::Result<File> {
    std::fs::OpenOptions::new().append(true).open(path) //~ D3
}

pub fn write_marker(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, b"done") //~ D3
}

pub fn wipe(path: &Path) -> std::io::Result<()> {
    fs::remove_file(path) //~ D3
}

// Naming the types without touching the disk is fine: a function may
// accept an already-open handle, and `fs::File` in a signature or `use`
// item is a path segment, not an access.
pub fn size_of(file: &File) -> std::io::Result<u64> {
    Ok(file.metadata()?.len())
}

pub fn allowed(path: &Path) -> Option<Vec<u8>> {
    // chromata-lint: allow(D3): fixture — sanctioned read behind the persist facade
    fs::read(path).ok()
}

#[cfg(test)]
mod tests {
    // Test code may touch the disk freely (temp dirs, fixtures).
    pub fn scratch() -> std::io::Result<Vec<u8>> {
        std::fs::read("/tmp/never-read")
    }
}
