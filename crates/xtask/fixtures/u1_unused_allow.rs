// Fixture: rule U1 (advisory) — stale allows rot into misdocumentation.

// chromata-lint: allow(D1): nothing below iterates a hash container //~ U1
pub fn pure() -> u32 {
    7
}

// chromata-lint: allow(D1): key lookup only; never iterated
pub fn used(map: &std::collections::HashMap<u32, u32>) -> Option<u32> {
    map.get(&7).copied()
}
