// Fixture: rule P1 — panicking constructs in library code.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ P1
}

pub fn parse(s: &str) -> i64 {
    s.parse().expect("caller guarantees digits") //~ P1
}

pub fn choose(flag: bool) -> u32 {
    if flag {
        1
    } else {
        panic!("unsupported configuration") //~ P1
    }
}

pub fn classify(n: u32) -> &'static str {
    match n {
        0 => "zero",
        _ => unreachable!("callers pass 0 only"), //~ P1
    }
}

// Mentioning the words without calling them is fine: `unwrap` here is an
// ordinary identifier, not a method call.
pub fn unwrap_depth() -> u32 {
    let unwrap = 3;
    unwrap
}

#[cfg(test)]
mod tests {
    // Panics are the assertion mechanism inside tests — out of scope.
    #[test]
    fn panicking_is_fine_in_tests() {
        assert_eq!(super::parse("7"), 7);
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
