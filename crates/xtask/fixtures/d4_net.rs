// Fixture: rule D4 — socket construction confined to `cli/src/serve.rs`.

use std::net::{TcpListener, TcpStream, UdpSocket};
use std::time::Duration;

pub fn open_listener(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr) //~ D4
}

pub fn dial(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr) //~ D4
}

pub fn dial_bounded(addr: &std::net::SocketAddr) -> std::io::Result<TcpStream> {
    TcpStream::connect_timeout(addr, Duration::from_secs(1)) //~ D4
}

pub fn datagram(addr: &str) -> std::io::Result<UdpSocket> {
    std::net::UdpSocket::bind(addr) //~ D4
}

// Naming the types without opening a socket is fine: a function may
// accept an already-connected stream, and `TcpStream` in a signature or
// `use` item is a path segment, not an access.
pub fn peer_of(stream: &TcpStream) -> std::io::Result<std::net::SocketAddr> {
    stream.peer_addr()
}

pub fn allowed(addr: &str) -> std::io::Result<TcpStream> {
    // chromata-lint: allow(D4): fixture — sanctioned dial behind the serve facade
    TcpStream::connect(addr)
}

#[cfg(test)]
mod tests {
    // Test code may open sockets freely (loopback harnesses).
    pub fn scratch() -> std::io::Result<std::net::TcpListener> {
        std::net::TcpListener::bind("127.0.0.1:0")
    }
}
