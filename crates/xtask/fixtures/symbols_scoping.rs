// Fixture: symbol-table scoping. The item parser must qualify names by
// their *enclosing* module/impl/trait chain, keep nested fns inside
// their parents' bodies, and not lose its footing in closures or in
// `impl Trait` return types (which are not impl *blocks*).

pub mod outer {
    pub struct Widget;

    impl Widget {
        pub fn build(n: u32) -> Widget {
            fn helper(x: u32) -> u32 {
                x + 1
            }
            let adjust = |v: u32| helper(v) * 2;
            let _ = adjust(n);
            Widget
        }
    }

    pub trait Render {
        fn render(&self) -> String;
        fn tag(&self) -> &'static str {
            "widget"
        }
    }

    impl Render for Widget {
        fn render(&self) -> String {
            String::new()
        }
    }

    pub fn make() -> impl Render {
        Widget
    }

    pub mod inner {
        pub fn leaf() -> u32 {
            7
        }
    }
}
