// Fixture: rule L2 — lock-order cycles and locks held across I/O. The
// harness feeds this file in as `crates/fixture/src/serve.rs` so it
// lands in L2's scope; the `ShardIo` trait declared here seeds the I/O
// vocabulary exactly like the real seam does.

use std::sync::{Mutex, MutexGuard, PoisonError};

pub trait ShardIo {
    fn exchange(&self, shard: usize, line: &str) -> String;
}

pub struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    io: Box<dyn ShardIo>,
}

fn lock(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// `alpha` then `beta`: one half of the order cycle. The cycle finding
// anchors at the *second* acquisition of the lexicographically first
// edge — this one.
pub fn forward(s: &Shared) -> u32 {
    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);
    let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner); //~ L2
    *a + *b
}

// `beta` then `alpha`: the other half.
pub fn backward(s: &Shared) -> u32 {
    let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);
    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

// A guard held across the `ShardIo` seam: a stalled shard now extends
// the critical section. The finding anchors at the acquisition.
pub fn held_across(s: &Shared) -> String {
    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner); //~ L2
    let r = s.io.exchange(*a as usize, "ping");
    r
}

// Dropping the guard before the I/O is the sanctioned shape: clean.
pub fn drop_first(s: &Shared) -> String {
    let a = lock(&s.alpha);
    let shard = *a as usize;
    drop(a);
    s.io.exchange(shard, "ping")
}

// So is scoping the guard into its own block.
pub fn scope_first(s: &Shared) -> String {
    let shard = {
        let a = lock(&s.alpha);
        *a as usize
    };
    s.io.exchange(shard, "ping")
}
