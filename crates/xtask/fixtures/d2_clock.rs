// Fixture: rule D2 — wall-clock and environment reads outside govern.rs.

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now(); //~ D2
    start.elapsed().as_millis()
}

pub fn stamp() -> std::time::SystemTime { //~ D2
    std::time::SystemTime::now() //~ D2
}

pub fn knob() -> Option<String> {
    std::env::var("CHROMATA_FIXTURE_KNOB").ok() //~ D2
}

// Passing time *values* around is pure: `Instant` as a type or argument
// is not a clock read, and `Duration` math never observes the clock.
pub fn remaining(deadline: std::time::Instant, now: std::time::Instant) -> std::time::Duration {
    deadline.duration_since(now)
}
