// Fixture: rule D1 on a stage-cache-shaped module — the staged verdict
// engine's per-stage caches are HashMap-backed, so this pins down
// exactly which patterns the rule flags there and which the justified
// allow grammar clears. Linted with the verdict-path role; trailing
// tilde-comments mark the expected findings.

use std::collections::HashMap; //~ D1
use std::collections::VecDeque;

// The sanctioned shape: key-addressed map + explicit FIFO queue, with a
// site-level justification on the field. A justified allow is clean.
pub struct StageCache<K, V> {
    map: HashMap<K, V>, // chromata-lint: allow(D1): key-addressed only; recovery sorts by structural fingerprint
    queue: VecDeque<K>,
}

impl<K: Clone + std::hash::Hash + Eq, V> StageCache<K, V> {
    pub fn new() -> Self {
        StageCache {
            map: HashMap::new(), // chromata-lint: allow(D1): see the field's justification
            queue: VecDeque::new(),
        }
    }

    // An unjustified hash container on the verdict path still fires.
    pub fn shadow_index(&self) -> std::collections::HashSet<u64> { //~ D1
        std::collections::HashSet::new() //~ D1
    }

    pub fn evict_oldest(&mut self) -> Option<K> {
        let k = self.queue.pop_front()?;
        self.map.remove(&k);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    // Test-gated code is out of scope: hash iteration cannot leak into
    // shipped verdicts from here.
    use std::collections::HashMap;

    #[test]
    fn torn_state_models_may_hash_freely() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
