//! A minimal TOML subset parser — just enough for `Cargo.toml`,
//! `Cargo.lock` and `deny.toml` (no external crates are available in
//! this offline workspace).
//!
//! Supported: `[table]` and `[[array-of-tables]]` headers, `key = value`
//! with string / boolean / integer / array-of-string values, dotted keys
//! (`license.workspace = true` is stored under the literal key
//! `"license.workspace"`), `#` comments, and multi-line arrays.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    Array(Vec<String>),
}

impl Value {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array of strings.
    #[must_use]
    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// One `[name]` or `[[name]]` table. Repeated `[[name]]` headers produce
/// one `Table` each, in file order.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub name: String,
    pub entries: BTreeMap<String, Value>,
}

/// A parsed document: the headerless root table followed by every
/// declared table in order.
#[derive(Clone, Debug, Default)]
pub struct Doc {
    pub tables: Vec<Table>,
}

impl Doc {
    /// The first table with this exact name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Every table with this exact name (for `[[package]]` lists).
    pub fn tables_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables.iter().filter(move |t| t.name == name)
    }

    /// Looks up `key` in the table called `table`.
    #[must_use]
    pub fn get(&self, table: &str, key: &str) -> Option<&Value> {
        self.table(table)?.entries.get(key)
    }
}

/// Parses a TOML-subset document. Unsupported constructs are skipped
/// line-by-line rather than failing: the callers only depend on the
/// constructs listed in the module docs.
#[must_use]
pub fn parse(text: &str) -> Doc {
    let mut doc = Doc {
        tables: vec![Table::default()],
    };
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = header(&line) {
            doc.tables.push(Table {
                name,
                entries: BTreeMap::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            continue;
        };
        let key = line[..eq].trim().trim_matches('"').to_owned();
        let mut rhs = line[eq + 1..].trim().to_owned();
        // Multi-line array: keep consuming until brackets balance.
        while rhs.starts_with('[') && !brackets_balance(&rhs) {
            let Some(next) = lines.next() else { break };
            rhs.push(' ');
            rhs.push_str(strip_comment(next).trim());
        }
        if let Some(value) = parse_value(&rhs) {
            if let Some(t) = doc.tables.last_mut() {
                t.entries.insert(key, value);
            }
        }
    }
    doc
}

fn header(line: &str) -> Option<String> {
    let inner = line
        .strip_prefix("[[")
        .and_then(|s| s.strip_suffix("]]"))
        .or_else(|| line.strip_prefix('[').and_then(|s| s.strip_suffix(']')))?;
    Some(inner.trim().to_owned())
}

/// Strips a `#` comment that is not inside a basic string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(rhs: &str) -> Option<Value> {
    let rhs = rhs.trim();
    if let Some(body) = rhs.strip_prefix('[') {
        let body = body.strip_suffix(']')?;
        let items = split_top_level(body)
            .into_iter()
            .filter_map(|s| {
                let s = s.trim();
                if s.is_empty() {
                    None
                } else {
                    Some(s.trim_matches('"').to_owned())
                }
            })
            .collect();
        return Some(Value::Array(items));
    }
    if rhs == "true" {
        return Some(Value::Bool(true));
    }
    if rhs == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(stripped) = rhs.strip_prefix('"') {
        return Some(Value::Str(stripped.strip_suffix('"')?.to_owned()));
    }
    rhs.parse::<i64>().ok().map(Value::Int)
}

/// Splits on commas that are outside quotes (array items may contain
/// commas in license expressions such as `"MIT OR Apache-2.0"`).
fn split_top_level(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

fn brackets_balance(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cargo_lock_shape() {
        let doc = parse(
            "version = 3\n\n[[package]]\nname = \"a\"\nversion = \"1.0.0\"\n\n[[package]]\nname = \"a\"\nversion = \"2.0.0\"\n",
        );
        let pkgs: Vec<&Table> = doc.tables_named("package").collect();
        assert_eq!(pkgs.len(), 2);
        assert_eq!(pkgs[0].entries["version"], Value::Str("1.0.0".into()));
        assert_eq!(doc.tables[0].entries["version"], Value::Int(3));
    }

    #[test]
    fn multi_line_array_and_comments() {
        let doc = parse(
            "[licenses]\n# comment\nallow = [\n  \"MIT\", # trailing\n  \"Apache-2.0\",\n]\n",
        );
        assert_eq!(
            doc.get("licenses", "allow").unwrap().as_array().unwrap(),
            &["MIT".to_owned(), "Apache-2.0".to_owned()]
        );
    }

    #[test]
    fn dotted_and_quoted_values() {
        let doc = parse("[package]\nlicense.workspace = true\nname = \"x\"\n");
        assert_eq!(
            doc.get("package", "license.workspace"),
            Some(&Value::Bool(true))
        );
        assert_eq!(doc.get("package", "name").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn license_expressions_with_or_survive() {
        let doc = parse("[licenses]\nallow = [\"MIT OR Apache-2.0\", \"BSD-3-Clause\"]\n");
        let allow = doc.get("licenses", "allow").unwrap().as_array().unwrap();
        assert_eq!(allow[0], "MIT OR Apache-2.0");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[a]\nk = \"value # not comment\"\n");
        assert_eq!(
            doc.get("a", "k").unwrap().as_str(),
            Some("value # not comment")
        );
    }
}
