//! Workspace discovery.
//!
//! `cargo metadata` would normally provide this, but the workspace
//! builds fully offline with vendored stub crates and no JSON parser we
//! trust for tooling, so membership is derived the same way the root
//! manifest declares it: every directory under `crates/` (and, for the
//! supply-chain checks, `vendor/`) holding a `Cargo.toml`.

use std::io;
use std::path::{Path, PathBuf};

/// Locates the workspace root: the closest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All `.rs` files under `crates/*/src`, as workspace-relative paths in
/// deterministic (sorted) order.
///
/// # Errors
///
/// Propagates directory-walk I/O errors.
pub fn lintable_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// Workspace-member and vendored manifests, for the deny checks.
///
/// # Errors
///
/// Propagates directory-walk I/O errors.
pub fn manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        if !base.is_dir() {
            continue;
        }
        for member in sorted_dir(&base)? {
            let manifest = member.join("Cargo.toml");
            if manifest.is_file() {
                out.push(manifest);
            }
        }
    }
    Ok(out)
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    Ok(entries)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            walk_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}
