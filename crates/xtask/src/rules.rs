//! The domain-specific lint rules.
//!
//! Every rule protects an invariant the decision pipeline's correctness
//! argument leans on (see `DESIGN.md` §9):
//!
//! | id | name        | invariant |
//! |----|-------------|-----------|
//! | D1 | hash-order  | no hash-ordered container on the verdict path |
//! | D2 | clock-env   | no wall-clock / environment reads in pure decision code |
//! | D3 | fs-confine  | filesystem access on the verdict path lives in `stages/persist.rs` |
//! | D4 | net-confine | socket construction lives in `cli/src/serve.rs` + `cli/src/shard.rs` |
//! | P1 | panic       | library code degrades structurally, it does not panic |
//! | P2 | index       | (advisory) prefer `get` over panicking indexing |
//! | L1 | lock-unwrap | lock poisoning is recovered, never unwrapped |
//! | A1 | bad-allow   | escape hatches carry a justification |
//! | U1 | unused-allow| (advisory) stale escape hatches are removed |
//!
//! Rules are token-pattern based and deliberately *over-approximate*:
//! they may flag a use that is in fact sound (a key-addressed map that is
//! never iterated, a slice index guarded by an invariant). The escape
//! hatch for those is a justified
//! `// chromata-lint: allow(<rule>): <why>` annotation — the
//! justification requirement turns every suppression into reviewable
//! documentation.

use std::path::Path;

use crate::allow;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{self, Tok, TokKind};

/// All rule identifiers the allow parser accepts.
pub const KNOWN_RULES: &[&str] = &["D1", "D2", "D3", "D4", "P1", "P2", "L1", "A1", "U1"];

/// The rules enforced with `-D all` (the advisory rules P2/U1 stay at
/// warn unless denied individually).
pub const PRIMARY_RULES: &[&str] = &["D1", "D2", "D3", "D4", "P1", "L1", "A1"];

/// Crates whose code can influence a [`Verdict`]: canonicalization,
/// subdivision, the algebraic tiers and the pipeline itself.
pub const VERDICT_PATH_CRATES: &[&str] = &["topology", "subdivision", "algebra", "core", "task"];

/// Crates held to the panic-freedom contract (everything a caller links
/// against; the CLI binary and the bench harness are exempt).
pub const LIBRARY_CRATES: &[&str] = &[
    "topology",
    "subdivision",
    "algebra",
    "core",
    "task",
    "runtime",
];

/// How the rules see one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct Role {
    /// D1 applies (verdict-path crate).
    pub verdict_path: bool,
    /// P1/P2 apply (library crate).
    pub library: bool,
    /// D2 does not apply (`govern.rs`, the bench crate).
    pub clock_exempt: bool,
    /// L1 does not apply (the poison-recovery module).
    pub lock_exempt: bool,
    /// D3 does not apply (the durable persistence module).
    pub fs_exempt: bool,
    /// D4 does not apply (the verdict-service module).
    pub net_exempt: bool,
}

/// Classifies a workspace-relative path, `None` if out of lint scope
/// (vendored crates, fixtures, integration tests, benches, examples,
/// the xtask tool itself).
#[must_use]
pub fn role_for(rel: &str) -> Option<Role> {
    let rel = rel.replace('\\', "/");
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if krate == "xtask" || krate == "bench" {
        return None;
    }
    // Only `src/` trees are linted: integration tests, benches and
    // examples may panic and measure time freely.
    if parts.next() != Some("src") {
        return None;
    }
    Some(Role {
        verdict_path: VERDICT_PATH_CRATES.contains(&krate),
        library: LIBRARY_CRATES.contains(&krate),
        clock_exempt: rel.ends_with("src/govern.rs"),
        lock_exempt: rel == "crates/core/src/stages/cache.rs",
        fs_exempt: rel == "crates/core/src/stages/persist.rs",
        net_exempt: rel == "crates/cli/src/serve.rs" || rel == "crates/cli/src/shard.rs",
    })
}

/// A raw rule finding before allow/test filtering.
struct Finding {
    rule: &'static str,
    line: u32,
    col: u32,
    len: usize,
    message: String,
    help: String,
}

/// Severity configuration for a run.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// `(rule, severity)` pairs; rules absent here keep their default.
    pub overrides: Vec<(String, Severity)>,
}

impl Config {
    /// The run where every primary rule denies (CI mode).
    #[must_use]
    pub fn deny_all() -> Self {
        Config {
            overrides: PRIMARY_RULES
                .iter()
                .map(|r| ((*r).to_owned(), Severity::Deny))
                .collect(),
        }
    }

    fn severity(&self, rule: &str) -> Severity {
        for (r, s) in self.overrides.iter().rev() {
            if r == rule || r == "all" {
                return *s;
            }
        }
        match rule {
            // Advisory by default: indexing is pervasive in simplicial
            // code with structural length invariants, and unused allows
            // should nag, not block.
            "P2" | "U1" => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

/// Lints one file's source text. `rel` is the workspace-relative path
/// used in diagnostics; `role` decides which rules apply.
#[must_use]
pub fn lint_source(rel: &str, src: &str, role: Role, config: &Config) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    let test_regions = lexer::test_regions(&tokens);
    let (mut allows, allow_errors) = allow::collect(&tokens);
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();

    let mut findings = Vec::new();
    for e in &allow_errors {
        findings.push(Finding {
            rule: "A1",
            line: e.line,
            col: e.col,
            len: MARKER_LEN,
            message: e.message.clone(),
            help: "write `// chromata-lint: allow(<rule>): <justification>` — \
                   the justification is required"
                .to_owned(),
        });
    }
    rule_d1(&code, role, &mut findings);
    rule_d2(&code, role, &mut findings);
    rule_d3(&code, role, &mut findings);
    rule_d4(&code, role, &mut findings);
    rule_p1(&code, role, &mut findings);
    rule_p2(&code, role, &mut findings);
    rule_l1(&code, role, &mut findings);

    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for f in findings {
        // Test-gated code is out of scope for every rule except A1: a
        // malformed annotation is wrong wherever it sits.
        if f.rule != "A1" && lexer::in_regions(&test_regions, f.line) {
            continue;
        }
        if f.rule != "A1" && allow::covers(&mut allows, f.rule, f.line) {
            continue;
        }
        let severity = config.severity(f.rule);
        if severity == Severity::Allow {
            continue;
        }
        out.push(Diagnostic {
            rule: f.rule,
            severity,
            path: rel.to_owned(),
            line: f.line,
            col: f.col,
            len: f.len,
            message: f.message,
            help: f.help,
            source_line: lines
                .get(f.line as usize - 1)
                .map_or(String::new(), |s| (*s).to_owned()),
        });
    }
    // Unused allows: stale escape hatches rot into misdocumentation.
    for a in allows.iter().filter(|a| !a.used) {
        let severity = config.severity("U1");
        if severity == Severity::Allow {
            continue;
        }
        out.push(Diagnostic {
            rule: "U1",
            severity,
            path: rel.to_owned(),
            line: a.comment_line,
            col: 1,
            len: MARKER_LEN,
            message: format!(
                "unused allow({}) — nothing on its target line triggers the rule",
                a.rules.join(", ")
            ),
            help: "remove the stale annotation".to_owned(),
            source_line: lines
                .get(a.comment_line as usize - 1)
                .map_or(String::new(), |s| (*s).to_owned()),
        });
    }
    out.sort_by_key(|d| (d.line, d.col));
    out
}

const MARKER_LEN: usize = "chromata-lint:".len();

/// D1: `HashMap`/`HashSet` on the verdict path. Hash iteration order is
/// seeded per process (`RandomState`) or, even with a fixed hasher,
/// depends on insertion/capacity history — either way it is not part of
/// the task's semantics, and the reproducibility contract
/// (`tests/feature_parity.rs`) requires byte-identical verdicts and
/// traces across runs and feature configurations.
fn rule_d1(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.verdict_path {
        return;
    }
    for t in code {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            findings.push(Finding {
                rule: "D1",
                line: t.line,
                col: t.col,
                len: t.text.chars().count(),
                message: format!(
                    "`{}` in a verdict-path crate: iteration order is not \
                     deterministic task semantics",
                    t.text
                ),
                help: "use BTreeMap/BTreeSet or sort before iterating; if the \
                       container is never iterated (or the order provably cannot \
                       escape), annotate `// chromata-lint: allow(D1): <why>`"
                    .to_owned(),
            });
        }
    }
}

/// D2: wall-clock and environment reads outside the governance module.
/// A pure decision procedure may consult its *budget* (which `govern.rs`
/// derives from the clock), never the clock itself — otherwise verdicts
/// and traces can differ between runs that should be byte-identical.
fn rule_d2(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if role.clock_exempt {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "SystemTime" => Some("`SystemTime`"),
            "Instant" => {
                // `Instant::now` only: passing an `Instant` value around
                // (e.g. `Budget.deadline`) is pure.
                if path_call(code, i, &["now"]) {
                    Some("`Instant::now()`")
                } else {
                    None
                }
            }
            "env" => {
                // `std::env::...` / `env::var(...)`: any read of the
                // process environment.
                if path_call(
                    code,
                    i,
                    &[
                        "var",
                        "var_os",
                        "vars",
                        "vars_os",
                        "args",
                        "args_os",
                        "current_dir",
                        "temp_dir",
                        "home_dir",
                    ],
                ) {
                    Some("process-environment read")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = flagged {
            findings.push(Finding {
                rule: "D2",
                line: t.line,
                col: t.col,
                len: t.text.chars().count(),
                message: format!(
                    "{what} outside `govern.rs`: pure decision code must not \
                     observe the clock or the environment"
                ),
                help: "route the read through `chromata_topology::govern` (budgets, \
                       env-derived configuration) or annotate \
                       `// chromata-lint: allow(D2): <why>`"
                    .to_owned(),
            });
        }
    }
}

/// D3: filesystem access in verdict-path crates outside the durable
/// persistence module. Snapshot I/O is confined to
/// `core/src/stages/persist.rs`, where every failure mode is classified
/// and recovered (PR 5); a file read or write anywhere else on the
/// verdict path would let on-disk state influence a verdict without
/// passing through that corruption-tolerant layer.
fn rule_d3(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.verdict_path || role.fs_exempt {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            // `fs::read(..)` / `std::fs::write(..)`: any call through the
            // filesystem module. Naming a type (`fs::File` in a `use` or
            // a signature) is not itself an access.
            "fs" => {
                if any_path_call(code, i) {
                    Some("`std::fs` call")
                } else {
                    None
                }
            }
            "File" => {
                if path_call(code, i, &["open", "create", "create_new", "options"]) {
                    Some("`File` constructor")
                } else {
                    None
                }
            }
            "OpenOptions" => {
                if path_call(code, i, &["new"]) {
                    Some("`OpenOptions` builder")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = flagged {
            findings.push(Finding {
                rule: "D3",
                line: t.line,
                col: t.col,
                len: t.text.chars().count(),
                message: format!(
                    "{what} in a verdict-path crate outside `stages/persist.rs`: \
                     durable state must pass through the corruption-tolerant \
                     persistence layer"
                ),
                help: "route snapshot I/O through `core::stages::persist` (checksummed, \
                       atomically renamed, recovery-classified) or annotate \
                       `// chromata-lint: allow(D3): <why>`"
                    .to_owned(),
            });
        }
    }
}

/// D4: socket construction outside the verdict-service module. Network
/// I/O — like clocks (D2) and the filesystem (D3) — is a nondeterminism
/// source the decision pipeline must never observe directly. The one
/// sanctioned home is `crates/cli/src/serve.rs`, where every request is
/// framed, budgeted, and admission-controlled before it can reach
/// `analyze_governed`. Naming a socket type (in a signature or a `use`)
/// is fine; *constructing* one (`bind`, `connect`, …) is the access.
fn rule_d4(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if role.net_exempt {
        return;
    }
    const SOCKET_TYPES: &[&str] = &[
        "TcpListener",
        "TcpStream",
        "UdpSocket",
        "UnixListener",
        "UnixStream",
        "UnixDatagram",
    ];
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !SOCKET_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        if path_call(
            code,
            i,
            &["bind", "connect", "connect_timeout", "pair", "unbound"],
        ) {
            findings.push(Finding {
                rule: "D4",
                line: t.line,
                col: t.col,
                len: t.text.chars().count(),
                message: format!(
                    "`{}` constructor outside `cli/src/serve.rs`/`cli/src/shard.rs`: \
                     sockets are confined to the verdict-service modules",
                    t.text
                ),
                help: "route network I/O through `chromata_cli::serve` (framed, \
                       budgeted, admission-controlled) or annotate \
                       `// chromata-lint: allow(D4): <why>`"
                    .to_owned(),
            });
        }
    }
}

/// Whether `code[i]` is followed by `:: <ident> (` — a call through the
/// module or type at `i` (the trailing paren distinguishes a call from a
/// path segment in a `use` item or type position).
fn any_path_call(code: &[&Tok], i: usize) -> bool {
    let Some(c1) = code.get(i + 1) else {
        return false;
    };
    let Some(c2) = code.get(i + 2) else {
        return false;
    };
    let Some(callee) = code.get(i + 3) else {
        return false;
    };
    let Some(paren) = code.get(i + 4) else {
        return false;
    };
    c1.is_punct(':') && c2.is_punct(':') && callee.kind == TokKind::Ident && paren.is_punct('(')
}

/// Whether `code[i]` is followed by `:: <one of names> (`.
fn path_call(code: &[&Tok], i: usize, names: &[&str]) -> bool {
    let Some(c1) = code.get(i + 1) else {
        return false;
    };
    let Some(c2) = code.get(i + 2) else {
        return false;
    };
    let Some(callee) = code.get(i + 3) else {
        return false;
    };
    c1.is_punct(':')
        && c2.is_punct(':')
        && callee.kind == TokKind::Ident
        && names.contains(&callee.text.as_str())
}

/// P1: panicking constructs in library crates. The degradation ladder
/// (PR 2) exists so that exhaustion and invalid input surface as
/// `ExploreError` / `Verdict::Unknown`; an `unwrap()` reachable from
/// `decide`/`explore` re-opens the abort path it closed.
fn rule_p1(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.library {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let finding = match t.text.as_str() {
            "unwrap" | "expect" => {
                let method_call = i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('));
                if method_call {
                    Some((
                        format!("`.{}()` in library code can panic", t.text),
                        "return a structured error (`ExploreError`, `TaskError`) or \
                         degrade to `Verdict::Unknown`; for invariant-guarded uses \
                         annotate `// chromata-lint: allow(P1): <invariant>`",
                    ))
                } else {
                    None
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if code.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    Some((
                        format!("`{}!` in library code aborts the caller", t.text),
                        "convert to a structured error; if the branch is provably \
                         dead, annotate `// chromata-lint: allow(P1): <proof sketch>`",
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((message, help)) = finding {
            findings.push(Finding {
                rule: "P1",
                line: t.line,
                col: t.col,
                len: t.text.chars().count(),
                message,
                help: help.to_owned(),
            });
        }
    }
}

/// P2 (advisory): `expr[...]` indexing in library crates. Indexing
/// panics on out-of-bounds; simplicial code has many structural length
/// invariants, so this stays a warning rather than a denial.
fn rule_p2(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.library {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let prev = code[i - 1];
        let indexes = match prev.kind {
            TokKind::Ident => !matches!(
                prev.text.as_str(),
                "as" | "break"
                    | "const"
                    | "continue"
                    | "crate"
                    | "dyn"
                    | "else"
                    | "enum"
                    | "extern"
                    | "fn"
                    | "for"
                    | "if"
                    | "impl"
                    | "in"
                    | "let"
                    | "loop"
                    | "match"
                    | "mod"
                    | "move"
                    | "mut"
                    | "pub"
                    | "ref"
                    | "return"
                    | "static"
                    | "struct"
                    | "trait"
                    | "type"
                    | "unsafe"
                    | "use"
                    | "where"
                    | "while"
            ),
            TokKind::Punct(')') | TokKind::Punct(']') => true,
            _ => false,
        };
        if indexes {
            findings.push(Finding {
                rule: "P2",
                line: t.line,
                col: t.col,
                len: 1,
                message: "indexing can panic on out-of-bounds".to_owned(),
                help: "prefer `.get(..)` with structured handling, or annotate \
                       `// chromata-lint: allow(P2): <length invariant>`"
                    .to_owned(),
            });
        }
    }
}

/// L1: `.lock().unwrap()` / `.lock().expect(..)`. A panicking worker
/// must not cascade: every lock acquisition outside the poison-recovery
/// module either recovers (`unwrap_or_else(PoisonError::into_inner)`
/// plus invariant validation) or propagates a structured error.
fn rule_l1(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if role.lock_exempt {
        return;
    }
    // Pattern: . lock ( ) . unwrap|expect (
    for (i, t) in code.iter().enumerate() {
        if !(t.is_ident("lock") && i > 0 && code[i - 1].is_punct('.')) {
            continue;
        }
        let rest = &code[i + 1..];
        if rest.len() >= 4
            && rest[0].is_punct('(')
            && rest[1].is_punct(')')
            && rest[2].is_punct('.')
            && rest[3].kind == TokKind::Ident
            && (rest[3].text == "unwrap" || rest[3].text == "expect")
        {
            findings.push(Finding {
                rule: "L1",
                line: t.line,
                col: t.col,
                len: "lock".len(),
                message: "`.lock().unwrap()` turns one panicked worker into a \
                          process-wide cascade"
                    .to_owned(),
                help: "recover with `unwrap_or_else(PoisonError::into_inner)` plus \
                       invariant re-validation (see `core::pipeline::lock_cache`), \
                       or annotate `// chromata-lint: allow(L1): <why poisoning is \
                       impossible here>`"
                    .to_owned(),
            });
        }
    }
}

/// Convenience wrapper used by the CLI and tests: lints a file on disk.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be read.
pub fn lint_file(
    root: &Path,
    rel: &str,
    role: Role,
    config: &Config,
) -> std::io::Result<Vec<Diagnostic>> {
    let src = std::fs::read_to_string(root.join(rel))?;
    Ok(lint_source(rel, &src, role, config))
}
