//! The domain-specific lint rules.
//!
//! Every rule protects an invariant the decision pipeline's correctness
//! argument leans on (see `DESIGN.md` §9):
//!
//! | id | name        | invariant |
//! |----|-------------|-----------|
//! | D1 | hash-order  | no hash-ordered container on the verdict path |
//! | D2 | clock-env   | no wall-clock / environment reads in pure decision code (alias-aware) |
//! | D3 | fs-confine  | filesystem access on the verdict path lives in `stages/persist.rs` |
//! | D4 | net-confine | socket construction lives in `cli/src/serve.rs` + `cli/src/shard.rs` |
//! | D5 | digest-taint| no clock/env/RNG/hash-order source reachable from a determinism root |
//! | P1 | panic       | library code degrades structurally, it does not panic |
//! | P2 | index       | (advisory) prefer `get` over panicking indexing |
//! | P3 | panic-reach | no panic/indexing site reachable from public verdict-path APIs |
//! | L1 | lock-unwrap | lock poisoning is recovered, never unwrapped |
//! | L2 | lock-order  | no acquisition-order cycles, no lock held across I/O |
//! | A1 | bad-allow   | escape hatches carry a justification |
//! | U1 | unused-allow| stale escape hatches are removed (error under `-D all`) |
//!
//! D1–L1 and A1/U1 are token-pattern rules over one file; D5/P3/L2 are
//! *interprocedural* — they run over the workspace call graph
//! (`symbols.rs` + `callgraph.rs` + `passes.rs`) and render the call
//! chain they followed in the diagnostic's `note:` lines. Allow
//! coverage composes: a justified `allow(P1)` at a panic site also
//! silences the P3 chain ending there (same claim — "this site cannot
//! fire"), `allow(P2)` covers a P3 indexing site, and `allow(D1)`
//! covers a D5 hash finding. `allow(D2)` does **not** cover D5: D2's
//! claim is "this read is locally sound", D5's is "this read cannot
//! leak into a digest" — a site may satisfy one and not the other.
//!
//! Rules are token-pattern based and deliberately *over-approximate*:
//! they may flag a use that is in fact sound (a key-addressed map that is
//! never iterated, a slice index guarded by an invariant). The escape
//! hatch for those is a justified
//! `// chromata-lint: allow(<rule>): <why>` annotation — the
//! justification requirement turns every suppression into reviewable
//! documentation.

use std::path::Path;

use crate::allow;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{self, Tok, TokKind};
use crate::symbols::{self, FileSymbols};

/// All rule identifiers the allow parser accepts.
pub const KNOWN_RULES: &[&str] = &[
    "D1", "D2", "D3", "D4", "D5", "P1", "P2", "P3", "L1", "L2", "A1", "U1",
];

/// The rules enforced with `-D all` (the advisory rule P2 stays at warn
/// unless denied individually; U1 is advisory by default but a stale
/// allow is an error in CI mode).
pub const PRIMARY_RULES: &[&str] = &[
    "D1", "D2", "D3", "D4", "D5", "P1", "P3", "L1", "L2", "A1", "U1",
];

/// Crates whose code can influence a [`Verdict`]: canonicalization,
/// subdivision, the algebraic tiers and the pipeline itself.
pub const VERDICT_PATH_CRATES: &[&str] = &["topology", "subdivision", "algebra", "core", "task"];

/// Crates held to the panic-freedom contract (everything a caller links
/// against; the CLI binary and the bench harness are exempt).
pub const LIBRARY_CRATES: &[&str] = &[
    "topology",
    "subdivision",
    "algebra",
    "core",
    "task",
    "runtime",
];

/// How the rules see one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct Role {
    /// D1 applies (verdict-path crate).
    pub verdict_path: bool,
    /// P1/P2 apply (library crate).
    pub library: bool,
    /// D2 does not apply (`govern.rs`, the bench crate).
    pub clock_exempt: bool,
    /// L1 does not apply (the poison-recovery module).
    pub lock_exempt: bool,
    /// D3 does not apply (the durable persistence module).
    pub fs_exempt: bool,
    /// D4 does not apply (the verdict-service module).
    pub net_exempt: bool,
}

/// Classifies a workspace-relative path, `None` if out of lint scope
/// (vendored crates, fixtures, integration tests, benches, examples,
/// the xtask tool itself).
#[must_use]
pub fn role_for(rel: &str) -> Option<Role> {
    let rel = rel.replace('\\', "/");
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if krate == "xtask" || krate == "bench" {
        return None;
    }
    // Only `src/` trees are linted: integration tests, benches and
    // examples may panic and measure time freely.
    if parts.next() != Some("src") {
        return None;
    }
    Some(Role {
        verdict_path: VERDICT_PATH_CRATES.contains(&krate),
        library: LIBRARY_CRATES.contains(&krate),
        // The chaos campaign driver (`cli/src/chaos.rs`) times recovery
        // deadlines and abuses real sockets by design, so it joins the
        // clock and socket exemptions; the core fault-schedule module
        // (`core/src/stages/chaos.rs`) stays fully confined.
        clock_exempt: rel.ends_with("src/govern.rs") || rel == "crates/cli/src/chaos.rs",
        lock_exempt: rel == "crates/core/src/stages/cache.rs",
        fs_exempt: rel == "crates/core/src/stages/persist.rs",
        net_exempt: rel == "crates/cli/src/serve.rs"
            || rel == "crates/cli/src/shard.rs"
            || rel == "crates/cli/src/chaos.rs",
    })
}

/// A raw rule finding before allow/test filtering.
pub(crate) struct Finding {
    pub(crate) rule: &'static str,
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) len: usize,
    pub(crate) message: String,
    pub(crate) help: String,
    /// Extra `note:` lines (interprocedural passes render call chains).
    pub(crate) notes: Vec<String>,
    /// A second rule whose allow also silences this finding: an
    /// interprocedural finding is covered by the per-site rule making
    /// the same claim (P3 panic by P1, P3 indexing by P2, D5 hash by
    /// D1).
    pub(crate) covered_by: Option<&'static str>,
}

impl Finding {
    pub(crate) fn new(
        rule: &'static str,
        line: u32,
        col: u32,
        len: usize,
        message: String,
        help: String,
    ) -> Self {
        Finding {
            rule,
            line,
            col,
            len,
            message,
            help,
            notes: Vec::new(),
            covered_by: None,
        }
    }
}

/// Severity configuration for a run.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// `(rule, severity)` pairs; rules absent here keep their default.
    pub overrides: Vec<(String, Severity)>,
}

impl Config {
    /// The run where every primary rule denies (CI mode).
    #[must_use]
    pub fn deny_all() -> Self {
        Config {
            overrides: PRIMARY_RULES
                .iter()
                .map(|r| ((*r).to_owned(), Severity::Deny))
                .collect(),
        }
    }

    fn severity(&self, rule: &str) -> Severity {
        for (r, s) in self.overrides.iter().rev() {
            if r == rule || r == "all" {
                return *s;
            }
        }
        match rule {
            // Advisory by default: indexing is pervasive in simplicial
            // code with structural length invariants, and unused allows
            // should nag, not block.
            "P2" | "U1" => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

/// Lints one file's source text with the *local* (single-file) rules.
/// `rel` is the workspace-relative path used in diagnostics; `role`
/// decides which rules apply. The interprocedural rules (P3/D5/L2) need
/// the whole workspace and run in [`crate::lint_sources`].
#[must_use]
pub fn lint_source(rel: &str, src: &str, role: Role, config: &Config) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    let test_regions = lexer::test_regions(&tokens);
    let (mut allows, allow_errors) = allow::collect(&tokens);
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let syms = symbols::parse(&code);
    let mut findings = a1_findings(&allow_errors);
    local_rules(&code, &syms, role, &mut findings);
    finalize(rel, src, findings, &test_regions, &mut allows, config)
}

/// Converts the allow parser's errors into A1 findings.
pub(crate) fn a1_findings(errors: &[allow::AllowError]) -> Vec<Finding> {
    errors
        .iter()
        .map(|e| {
            Finding::new(
                "A1",
                e.line,
                e.col,
                MARKER_LEN,
                e.message.clone(),
                "write `// chromata-lint: allow(<rule>): <justification>` — \
                 the justification is required"
                    .to_owned(),
            )
        })
        .collect()
}

/// Runs every single-file rule over one file's code tokens.
pub(crate) fn local_rules(
    code: &[&Tok],
    syms: &FileSymbols,
    role: Role,
    findings: &mut Vec<Finding>,
) {
    rule_d1(code, role, findings);
    rule_d2(code, syms, role, findings);
    rule_d3(code, role, findings);
    rule_d4(code, role, findings);
    rule_p1(code, role, findings);
    rule_p2(code, role, findings);
    rule_l1(code, role, findings);
}

/// Applies test-region and allow filtering plus severity configuration,
/// turning raw findings into rendered diagnostics (including the U1
/// unused-allow pass, which must run after every rule has had its
/// chance to mark an allow used).
pub(crate) fn finalize(
    rel: &str,
    src: &str,
    findings: Vec<Finding>,
    test_regions: &[(u32, u32)],
    allows: &mut [allow::AllowEntry],
    config: &Config,
) -> Vec<Diagnostic> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for f in findings {
        // Test-gated code is out of scope for every rule except A1: a
        // malformed annotation is wrong wherever it sits.
        if f.rule != "A1" && lexer::in_regions(test_regions, f.line) {
            continue;
        }
        if f.rule != "A1" {
            let covered = allow::covers(allows, f.rule, f.line)
                || f.covered_by
                    .is_some_and(|r| allow::covers(allows, r, f.line));
            if covered {
                continue;
            }
        }
        let severity = config.severity(f.rule);
        if severity == Severity::Allow {
            continue;
        }
        out.push(Diagnostic {
            rule: f.rule,
            severity,
            path: rel.to_owned(),
            line: f.line,
            col: f.col,
            len: f.len,
            message: f.message,
            help: f.help,
            notes: f.notes,
            source_line: lines
                .get(f.line as usize - 1)
                .map_or(String::new(), |s| (*s).to_owned()),
        });
    }
    // Unused allows: stale escape hatches rot into misdocumentation.
    for a in allows.iter().filter(|a| !a.used) {
        let severity = config.severity("U1");
        if severity == Severity::Allow {
            continue;
        }
        out.push(Diagnostic {
            rule: "U1",
            severity,
            path: rel.to_owned(),
            line: a.comment_line,
            col: 1,
            len: MARKER_LEN,
            message: format!(
                "unused allow({}) — nothing on its target line triggers the rule",
                a.rules.join(", ")
            ),
            help: "remove the stale annotation".to_owned(),
            notes: Vec::new(),
            source_line: lines
                .get(a.comment_line as usize - 1)
                .map_or(String::new(), |s| (*s).to_owned()),
        });
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

const MARKER_LEN: usize = "chromata-lint:".len();

/// D1: `HashMap`/`HashSet` on the verdict path. Hash iteration order is
/// seeded per process (`RandomState`) or, even with a fixed hasher,
/// depends on insertion/capacity history — either way it is not part of
/// the task's semantics, and the reproducibility contract
/// (`tests/feature_parity.rs`) requires byte-identical verdicts and
/// traces across runs and feature configurations.
fn rule_d1(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.verdict_path {
        return;
    }
    for t in code {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            findings.push(Finding::new(
                "D1",
                t.line,
                t.col,
                t.text.chars().count(),
                format!(
                    "`{}` in a verdict-path crate: iteration order is not \
                     deterministic task semantics",
                    t.text
                ),
                "use BTreeMap/BTreeSet or sort before iterating; if the \
                 container is never iterated (or the order provably cannot \
                 escape), annotate `// chromata-lint: allow(D1): <why>`"
                    .to_owned(),
            ));
        }
    }
}

/// The `std::env` functions that read the process environment.
const ENV_FNS: &[&str] = &[
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "current_dir",
    "temp_dir",
    "home_dir",
];

/// The shared D2/D5 predicate: whether the identifier at `code[i]` is a
/// clock or environment read, *including through a `use ... as` alias*
/// (`use std::time::Instant as Clock; Clock::now()`). Returns a short
/// description of the read, or `None`.
pub(crate) fn clock_env_what(code: &[&Tok], i: usize, syms: &FileSymbols) -> Option<String> {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    match t.text.as_str() {
        "SystemTime" => return Some("`SystemTime`".to_owned()),
        // `Instant::now` only: passing an `Instant` value around
        // (e.g. `Budget.deadline`) is pure.
        "Instant" => {
            return path_call(code, i, &["now"]).then(|| "`Instant::now()`".to_owned());
        }
        // `std::env::...` / `env::var(...)`: any read of the process
        // environment.
        "env" => {
            return path_call(code, i, ENV_FNS).then(|| "process-environment read".to_owned());
        }
        _ => {}
    }
    // Alias resolution: the token itself looks innocent, but the `use`
    // table says it names a clock or environment item. The alias's own
    // declaration line is skipped — the rules police uses, not imports.
    let target = syms.alias_target(&t.text, t.line)?;
    if target == "std::time::Instant" || target == "time::Instant" {
        return path_call(code, i, &["now"])
            .then(|| format!("`{}::now()` (aliasing `std::time::Instant`)", t.text));
    }
    if target == "std::time::SystemTime" || target == "time::SystemTime" {
        return Some(format!("`{}` (aliasing `std::time::SystemTime`)", t.text));
    }
    if target == "std::env" {
        return path_call(code, i, ENV_FNS)
            .then(|| "process-environment read (via an aliased `std::env`)".to_owned());
    }
    if let Some(f) = target.strip_prefix("std::env::") {
        if ENV_FNS.contains(&f) && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            return Some(format!("`{}()` (aliasing `std::env::{f}`)", t.text));
        }
    }
    None
}

/// D2: wall-clock and environment reads outside the governance module.
/// A pure decision procedure may consult its *budget* (which `govern.rs`
/// derives from the clock), never the clock itself — otherwise verdicts
/// and traces can differ between runs that should be byte-identical.
fn rule_d2(code: &[&Tok], syms: &FileSymbols, role: Role, findings: &mut Vec<Finding>) {
    if role.clock_exempt {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if let Some(what) = clock_env_what(code, i, syms) {
            findings.push(Finding::new(
                "D2",
                t.line,
                t.col,
                t.text.chars().count(),
                format!(
                    "{what} outside `govern.rs`/`cli/src/chaos.rs`: pure \
                     decision code must not observe the clock or the \
                     environment"
                ),
                "route the read through `chromata_topology::govern` (budgets, \
                 env-derived configuration) or annotate \
                 `// chromata-lint: allow(D2): <why>`"
                    .to_owned(),
            ));
        }
    }
}

/// D3: filesystem access in verdict-path crates outside the durable
/// persistence module. Snapshot I/O is confined to
/// `core/src/stages/persist.rs`, where every failure mode is classified
/// and recovered (PR 5); a file read or write anywhere else on the
/// verdict path would let on-disk state influence a verdict without
/// passing through that corruption-tolerant layer.
fn rule_d3(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.verdict_path || role.fs_exempt {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            // `fs::read(..)` / `std::fs::write(..)`: any call through the
            // filesystem module. Naming a type (`fs::File` in a `use` or
            // a signature) is not itself an access.
            "fs" => {
                if any_path_call(code, i) {
                    Some("`std::fs` call")
                } else {
                    None
                }
            }
            "File" => {
                if path_call(code, i, &["open", "create", "create_new", "options"]) {
                    Some("`File` constructor")
                } else {
                    None
                }
            }
            "OpenOptions" => {
                if path_call(code, i, &["new"]) {
                    Some("`OpenOptions` builder")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = flagged {
            findings.push(Finding::new(
                "D3",
                t.line,
                t.col,
                t.text.chars().count(),
                format!(
                    "{what} in a verdict-path crate outside `stages/persist.rs`: \
                     durable state must pass through the corruption-tolerant \
                     persistence layer"
                ),
                "route snapshot I/O through `core::stages::persist` (checksummed, \
                 atomically renamed, recovery-classified) or annotate \
                 `// chromata-lint: allow(D3): <why>`"
                    .to_owned(),
            ));
        }
    }
}

/// D4: socket construction outside the verdict-service modules. Network
/// I/O — like clocks (D2) and the filesystem (D3) — is a nondeterminism
/// source the decision pipeline must never observe directly. The
/// sanctioned homes are `crates/cli/src/serve.rs` (every request framed,
/// budgeted, and admission-controlled before it can reach
/// `analyze_governed`), `crates/cli/src/shard.rs`, and
/// `crates/cli/src/chaos.rs` (the fault campaign abuses sockets on
/// purpose). Naming a socket type (in a signature or a `use`) is fine;
/// *constructing* one (`bind`, `connect`, …) is the access.
fn rule_d4(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if role.net_exempt {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !SOCKET_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        if path_call(code, i, SOCKET_CONSTRUCTORS) {
            findings.push(Finding::new(
                "D4",
                t.line,
                t.col,
                t.text.chars().count(),
                format!(
                    "`{}` constructor outside `cli/src/serve.rs`/`cli/src/shard.rs`/\
                     `cli/src/chaos.rs`: sockets are confined to the \
                     verdict-service modules",
                    t.text
                ),
                "route network I/O through `chromata_cli::serve` (framed, \
                 budgeted, admission-controlled) or annotate \
                 `// chromata-lint: allow(D4): <why>`"
                    .to_owned(),
            ));
        }
    }
}

/// The socket types whose construction D4 confines (also the L2 pass's
/// socket-I/O vocabulary).
pub(crate) const SOCKET_TYPES: &[&str] = &[
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "UnixListener",
    "UnixStream",
    "UnixDatagram",
];

/// The associated functions that actually construct a socket.
pub(crate) const SOCKET_CONSTRUCTORS: &[&str] =
    &["bind", "connect", "connect_timeout", "pair", "unbound"];

/// Whether `code[i]` is followed by `:: <ident> (` — a call through the
/// module or type at `i` (the trailing paren distinguishes a call from a
/// path segment in a `use` item or type position).
pub(crate) fn any_path_call(code: &[&Tok], i: usize) -> bool {
    let Some(c1) = code.get(i + 1) else {
        return false;
    };
    let Some(c2) = code.get(i + 2) else {
        return false;
    };
    let Some(callee) = code.get(i + 3) else {
        return false;
    };
    let Some(paren) = code.get(i + 4) else {
        return false;
    };
    c1.is_punct(':') && c2.is_punct(':') && callee.kind == TokKind::Ident && paren.is_punct('(')
}

/// Whether `code[i]` is followed by `:: <one of names> (`.
pub(crate) fn path_call(code: &[&Tok], i: usize, names: &[&str]) -> bool {
    let Some(c1) = code.get(i + 1) else {
        return false;
    };
    let Some(c2) = code.get(i + 2) else {
        return false;
    };
    let Some(callee) = code.get(i + 3) else {
        return false;
    };
    c1.is_punct(':')
        && c2.is_punct(':')
        && callee.kind == TokKind::Ident
        && names.contains(&callee.text.as_str())
}

/// P1: panicking constructs in library crates. The degradation ladder
/// (PR 2) exists so that exhaustion and invalid input surface as
/// `ExploreError` / `Verdict::Unknown`; an `unwrap()` reachable from
/// `decide`/`explore` re-opens the abort path it closed.
fn rule_p1(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.library {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        let finding = if let Some(name) = unwrap_like(code, i) {
            Some((
                format!("`.{name}()` in library code can panic"),
                "return a structured error (`ExploreError`, `TaskError`) or \
                 degrade to `Verdict::Unknown`; for invariant-guarded uses \
                 annotate `// chromata-lint: allow(P1): <invariant>`",
            ))
        } else {
            panic_macro(code, i).map(|name| {
                (
                    format!("`{name}!` in library code aborts the caller"),
                    "convert to a structured error; if the branch is provably \
                     dead, annotate `// chromata-lint: allow(P1): <proof sketch>`",
                )
            })
        };
        if let Some((message, help)) = finding {
            findings.push(Finding::new(
                "P1",
                t.line,
                t.col,
                t.text.chars().count(),
                message,
                help.to_owned(),
            ));
        }
    }
}

/// Whether `code[i]` is an `.unwrap()` / `.expect(..)` method call;
/// returns the method name. Shared by rule P1 and the P3 site extractor.
pub(crate) fn unwrap_like(code: &[&Tok], i: usize) -> Option<&'static str> {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let name: &'static str = match t.text.as_str() {
        "unwrap" => "unwrap",
        "expect" => "expect",
        _ => return None,
    };
    let method_call =
        i > 0 && code[i - 1].is_punct('.') && code.get(i + 1).is_some_and(|n| n.is_punct('('));
    method_call.then_some(name)
}

/// Whether `code[i]` is a panic-family macro invocation; returns the
/// macro name. Shared by rule P1 and the P3 site extractor.
pub(crate) fn panic_macro(code: &[&Tok], i: usize) -> Option<&'static str> {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let name: &'static str = match t.text.as_str() {
        "panic" => "panic",
        "unreachable" => "unreachable",
        "todo" => "todo",
        "unimplemented" => "unimplemented",
        _ => return None,
    };
    code.get(i + 1)
        .is_some_and(|n| n.is_punct('!'))
        .then_some(name)
}

/// P2 (advisory): `expr[...]` indexing in library crates. Indexing
/// panics on out-of-bounds; simplicial code has many structural length
/// invariants, so this stays a warning rather than a denial.
fn rule_p2(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if !role.library {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if is_index_site(code, i) {
            findings.push(Finding::new(
                "P2",
                t.line,
                t.col,
                1,
                "indexing can panic on out-of-bounds".to_owned(),
                "prefer `.get(..)` with structured handling, or annotate \
                 `// chromata-lint: allow(P2): <length invariant>`"
                    .to_owned(),
            ));
        }
    }
}

/// Whether `code[i]` is a `[` opening an index expression (vs a slice
/// type, an attribute, an array literal). Shared by rule P2 and the P3
/// site extractor.
pub(crate) fn is_index_site(code: &[&Tok], i: usize) -> bool {
    if !code[i].is_punct('[') || i == 0 {
        return false;
    }
    let prev = code[i - 1];
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            "as" | "break"
                | "const"
                | "continue"
                | "crate"
                | "dyn"
                | "else"
                | "enum"
                | "extern"
                | "fn"
                | "for"
                | "if"
                | "impl"
                | "in"
                | "let"
                | "loop"
                | "match"
                | "mod"
                | "move"
                | "mut"
                | "pub"
                | "ref"
                | "return"
                | "static"
                | "struct"
                | "trait"
                | "type"
                | "unsafe"
                | "use"
                | "where"
                | "while"
        ),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    }
}

/// L1: `.lock().unwrap()` / `.lock().expect(..)`. A panicking worker
/// must not cascade: every lock acquisition outside the poison-recovery
/// module either recovers (`unwrap_or_else(PoisonError::into_inner)`
/// plus invariant validation) or propagates a structured error.
fn rule_l1(code: &[&Tok], role: Role, findings: &mut Vec<Finding>) {
    if role.lock_exempt {
        return;
    }
    // Pattern: . lock ( ) . unwrap|expect (
    for (i, t) in code.iter().enumerate() {
        if !(t.is_ident("lock") && i > 0 && code[i - 1].is_punct('.')) {
            continue;
        }
        let rest = &code[i + 1..];
        if rest.len() >= 4
            && rest[0].is_punct('(')
            && rest[1].is_punct(')')
            && rest[2].is_punct('.')
            && rest[3].kind == TokKind::Ident
            && (rest[3].text == "unwrap" || rest[3].text == "expect")
        {
            findings.push(Finding::new(
                "L1",
                t.line,
                t.col,
                "lock".len(),
                "`.lock().unwrap()` turns one panicked worker into a \
                 process-wide cascade"
                    .to_owned(),
                "recover with `unwrap_or_else(PoisonError::into_inner)` plus \
                 invariant re-validation (see `core::pipeline::lock_cache`), \
                 or annotate `// chromata-lint: allow(L1): <why poisoning is \
                 impossible here>`"
                    .to_owned(),
            ));
        }
    }
}

/// Convenience wrapper used by the CLI and tests: lints a file on disk.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be read.
pub fn lint_file(
    root: &Path,
    rel: &str,
    role: Role,
    config: &Config,
) -> std::io::Result<Vec<Diagnostic>> {
    let src = std::fs::read_to_string(root.join(rel))?;
    Ok(lint_source(rel, &src, role, config))
}
