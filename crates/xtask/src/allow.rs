//! The `chromata-lint: allow(...)` escape hatch.
//!
//! Grammar, inside any comment:
//!
//! ```text
//! // chromata-lint: allow(RULE[, RULE...]): <justification>
//! ```
//!
//! * A trailing comment allows the rules on its own line.
//! * A comment alone on a line allows the rules on the next code line.
//! * An inner doc comment (`//! chromata-lint: allow(...): ...`) allows
//!   the rules for the whole file.
//!
//! The justification is **required**: an allow without one is itself a
//! lint violation (rule `A1`), as is an allow naming an unknown rule.
//! Allows that suppress nothing are reported as `U1` (unused-allow).

use crate::lexer::Tok;
use crate::rules::KNOWN_RULES;

/// A parsed allow annotation.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rules silenced by this annotation.
    pub rules: Vec<String>,
    /// Line of the comment carrying the annotation.
    pub comment_line: u32,
    /// Code line the annotation applies to (`None` = whole file).
    pub target_line: Option<u32>,
    /// Whether any rule actually used this annotation (for `U1`).
    pub used: bool,
}

/// A malformed annotation, reported as rule `A1`.
#[derive(Clone, Debug)]
pub struct AllowError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

const MARKER: &str = "chromata-lint:";

/// Extracts allow annotations (and `A1` errors) from a token stream.
#[must_use]
pub fn collect(tokens: &[Tok]) -> (Vec<AllowEntry>, Vec<AllowError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let Some(at) = tok.text.find(MARKER) else {
            continue;
        };
        let body = tok.text[at + MARKER.len()..].trim();
        let file_level = tok.text.starts_with("//!");
        match parse_body(body) {
            Ok((rules, justification)) => {
                if justification.trim().is_empty() {
                    errors.push(AllowError {
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "allow({}) without a justification: append \
                             `: <why this is sound>`",
                            rules.join(", ")
                        ),
                    });
                    continue;
                }
                if let Some(unknown) = rules.iter().find(|r| !KNOWN_RULES.contains(&r.as_str())) {
                    errors.push(AllowError {
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "allow names unknown rule `{unknown}` (known: {})",
                            KNOWN_RULES.join(", ")
                        ),
                    });
                    continue;
                }
                let target_line = if file_level {
                    None
                } else {
                    Some(target_of(tokens, i))
                };
                entries.push(AllowEntry {
                    rules,
                    comment_line: tok.line,
                    target_line,
                    used: false,
                });
            }
            Err(msg) => errors.push(AllowError {
                line: tok.line,
                col: tok.col,
                message: msg,
            }),
        }
    }
    (entries, errors)
}

/// Parses `allow(R1, R2): justification`.
fn parse_body(body: &str) -> Result<(Vec<String>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(...)` after `{MARKER}`, found `{body}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_owned())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `(` in allow annotation".to_owned())?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow() names no rules".to_owned());
    }
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').unwrap_or("").trim().to_owned();
    Ok((rules, justification))
}

/// The code line an allow comment applies to: its own line if code
/// precedes it there (trailing comment), else the line of the next
/// non-comment token.
fn target_of(tokens: &[Tok], comment_idx: usize) -> u32 {
    let comment = &tokens[comment_idx];
    let trailing = tokens[..comment_idx]
        .iter()
        .rev()
        .take_while(|t| t.line == comment.line)
        .any(|t| !t.is_comment());
    if trailing {
        return comment.line;
    }
    tokens[comment_idx + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map_or(comment.line, |t| t.line)
}

/// Whether some entry silences `rule` at `line`, marking it used.
pub fn covers(entries: &mut [AllowEntry], rule: &str, line: u32) -> bool {
    let mut hit = false;
    for e in entries.iter_mut() {
        if e.rules.iter().any(|r| r == rule)
            && match e.target_line {
                None => true,
                Some(t) => t == line,
            }
        {
            e.used = true;
            hit = true;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_leading_targets() {
        let src = "let x = m.get(k); // chromata-lint: allow(D1): key lookup only\n\
                   // chromata-lint: allow(P1): slice length checked above\n\
                   let y = v[0].unwrap();\n";
        let (entries, errors) = collect(&lex(src));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].target_line, Some(1));
        assert_eq!(entries[1].target_line, Some(3));
    }

    #[test]
    fn file_level_allow() {
        let src =
            "//! chromata-lint: allow(D2): bench-only crate, wall-clock is the point\nfn f() {}\n";
        let (entries, errors) = collect(&lex(src));
        assert!(errors.is_empty());
        assert_eq!(entries[0].target_line, None);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let (entries, errors) = collect(&lex("// chromata-lint: allow(D1)\nlet x = 1;\n"));
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("without a justification"));
    }

    #[test]
    fn colon_with_empty_justification_is_an_error() {
        let (entries, errors) = collect(&lex("// chromata-lint: allow(D1):   \nlet x = 1;\n"));
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (_, errors) = collect(&lex("// chromata-lint: allow(Z9): because\nlet x = 1;\n"));
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("unknown rule `Z9`"));
    }

    #[test]
    fn multiple_rules_one_annotation() {
        let src = "// chromata-lint: allow(D1, P1): fixture exercising both\nlet x = 1;\n";
        let (entries, errors) = collect(&lex(src));
        assert!(errors.is_empty());
        assert_eq!(entries[0].rules, vec!["D1", "P1"]);
    }

    #[test]
    fn covers_marks_used() {
        let src = "// chromata-lint: allow(D1): lookup only\nlet x = 1;\n";
        let (mut entries, _) = collect(&lex(src));
        assert!(covers(&mut entries, "D1", 2));
        assert!(entries[0].used);
        assert!(!covers(&mut entries, "P1", 2));
        assert!(!covers(&mut entries, "D1", 3));
    }
}
