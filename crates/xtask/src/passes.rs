//! The interprocedural passes: P3 (transitive panic-reachability), D5
//! (determinism taint) and L2 (lock-order / lock-across-I/O).
//!
//! All three run over the workspace call graph built by `callgraph.rs`.
//! Reachability uses breadth-first search with parent pointers, so every
//! diagnostic carries the *shortest* call chain from a root to the
//! offending site, rendered as a `note:` line. Like the token rules, the
//! passes over-approximate (name-based call resolution can introduce
//! phantom edges); the escape hatch is the same justified allow, checked
//! at the *site* the diagnostic points at.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{Graph, Span, TaintKind};
use crate::rules::{Finding, Role};

/// What the passes know about each file in the engine's file list.
pub(crate) struct FileInfo {
    pub(crate) rel: String,
    pub(crate) role: Role,
}

/// Runs every interprocedural pass; returns findings keyed by the index
/// of the file they belong to.
pub(crate) fn run(graph: &Graph, files: &[FileInfo]) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    pass_p3(graph, files, &mut out);
    pass_d5(graph, files, &mut out);
    pass_l2(graph, files, &mut out);
    out
}

/// Multi-source BFS over `graph` restricted to nodes satisfying
/// `allowed`; returns parent pointers (`None` marks a root). Iteration
/// order is deterministic: roots in index order, edges in extraction
/// order.
fn bfs(
    graph: &Graph,
    roots: &[usize],
    allowed: &dyn Fn(usize) -> bool,
) -> BTreeMap<usize, Option<usize>> {
    let mut parents: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue = VecDeque::new();
    for &r in roots {
        if allowed(r) && !parents.contains_key(&r) {
            parents.insert(r, None);
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for e in &graph.edges[n] {
            if allowed(e.callee) && !parents.contains_key(&e.callee) {
                parents.insert(e.callee, Some(n));
                queue.push_back(e.callee);
            }
        }
    }
    parents
}

/// The root→…→node chain, rendered as one `note:` line.
fn chain_note(
    graph: &Graph,
    files: &[FileInfo],
    parents: &BTreeMap<usize, Option<usize>>,
    node: usize,
) -> (usize, String) {
    let mut path = vec![node];
    let mut cur = node;
    while let Some(Some(p)) = parents.get(&cur) {
        cur = *p;
        path.push(cur);
    }
    path.reverse();
    let hops: Vec<String> = path
        .iter()
        .map(|&k| {
            let n = &graph.nodes[k];
            format!("`{}` ({}:{})", n.qual, files[n.file].rel, n.line)
        })
        .collect();
    (path[0], format!("call chain: {}", hops.join(" -> ")))
}

/// P3: any public API of a verdict-path crate that can reach a
/// panic-family or indexing site through the call graph. P1/P2 stay the
/// per-site rules; P3 closes the chains — a private helper's `unwrap()`
/// is an error as soon as some public entry point can reach it.
fn pass_p3(graph: &Graph, files: &[FileInfo], out: &mut Vec<(usize, Finding)>) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.is_pub && files[n.file].role.verdict_path
        })
        .collect();
    // Chains stay inside verdict-path crates: a phantom name-collision
    // edge into the CLI or the runtime (which core does not link) must
    // not drag foreign panic sites into this contract — P1 already
    // polices those per site.
    let allowed = |i: usize| files[graph.nodes[i].file].role.verdict_path;
    let parents = bfs(graph, &roots, &allowed);
    for &n in parents.keys() {
        let node = &graph.nodes[n];
        for site in &node.sites.panics {
            let (root, note) = chain_note(graph, files, &parents, n);
            let root_qual = &graph.nodes[root].qual;
            let mut f = Finding::new(
                "P3",
                site.span.line,
                site.span.col,
                site.span.len,
                format!(
                    "{} reachable from public verdict-path API `{root_qual}`",
                    site.what
                ),
                "break the chain with a structured error along the path, or \
                 annotate the site `// chromata-lint: allow(P3): <why this \
                 site cannot fire>`"
                    .to_owned(),
            );
            f.notes.push(note);
            // The per-site rule's allow makes the same soundness claim,
            // so it silences the chain too.
            f.covered_by = Some(if site.index { "P2" } else { "P1" });
            out.push((node.file, f));
        }
    }
}

/// The entry points whose transitive callees must be deterministic:
/// digest construction and the public analyze family.
const ANALYZE_ROOTS: &[&str] = &[
    "analyze",
    "analyze_governed",
    "analyze_batch",
    "analyze_batch_governed",
    "analyze_persistent",
    "analyze_batch_persistent",
];

/// D5: clock/env/RNG/hash-order sources reachable from a determinism
/// root. The alias-aware source extractor sees through `use ... as`
/// renames that the token rules D1/D2 cannot.
fn pass_d5(graph: &Graph, files: &[FileInfo], out: &mut Vec<(usize, Finding)>) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.name == "deterministic_digest"
                || ANALYZE_ROOTS.contains(&n.name.as_str())
                || (n.name == "run" && files[n.file].rel.starts_with("crates/core/src/stages/"))
        })
        .collect();
    let allowed = |i: usize| files[graph.nodes[i].file].role.library;
    let parents = bfs(graph, &roots, &allowed);
    for &n in parents.keys() {
        let node = &graph.nodes[n];
        let role = files[node.file].role;
        for site in &node.sites.taints {
            match site.kind {
                // `govern.rs` is the sanctioned clock boundary: budgets
                // derived there are deterministic inputs by contract.
                TaintKind::Clock | TaintKind::Env if role.clock_exempt => continue,
                // On the verdict path D1 already owns hash containers
                // (deny, per site); D5 adds the rule only where D1 does
                // not look.
                TaintKind::Hash if role.verdict_path => continue,
                _ => {}
            }
            let (root, note) = chain_note(graph, files, &parents, n);
            let root_qual = &graph.nodes[root].qual;
            let mut f = Finding::new(
                "D5",
                site.span.line,
                site.span.col,
                site.span.len,
                format!(
                    "{} reachable from determinism root `{root_qual}`: digests \
                     and verdicts must not observe nondeterministic state",
                    site.what
                ),
                "hoist the nondeterminism out of the digest path (`govern.rs` \
                 is the sanctioned clock boundary) or annotate the site \
                 `// chromata-lint: allow(D5): <why the value cannot reach a \
                 digest>`"
                    .to_owned(),
            );
            f.notes.push(note);
            if site.kind == TaintKind::Hash {
                f.covered_by = Some("D1");
            }
            out.push((node.file, f));
        }
    }
}

/// The concurrency-bearing modules L2 analyzes. Suffix-matched so
/// fixtures can opt in with a matching relative path.
const L2_SCOPE: &[&str] = &[
    "src/serve.rs",
    "src/shard.rs",
    "src/stages/remote.rs",
    "src/stages/cache.rs",
    "src/stages/persist.rs",
];

/// Where one acquisition-order edge was observed, for diagnostics.
struct EdgeSite {
    file: usize,
    span: Span,
    note: String,
}

/// L2: lock-order cycles and locks held across I/O. Lock identity is the
/// receiver's field name — coarse, but it makes the acquisition-order
/// graph small enough to review by hand (`cargo xtask graph`).
fn pass_l2(graph: &Graph, files: &[FileInfo], out: &mut Vec<(usize, Finding)>) {
    let n = graph.nodes.len();
    let in_scope = |f: usize| L2_SCOPE.iter().any(|s| files[f].rel.ends_with(s));

    // Transitive lock and I/O sets per function (fixpoint over the
    // cyclic graph; sets are tiny). Base sites are seeded from the L2
    // scope files only: an `exchange` or `bind` *name* in an algebra
    // crate is not the `ShardIo` seam, and counting it would let every
    // name-collision edge poison the analysis.
    let mut sub_locks: Vec<BTreeSet<String>> = graph
        .nodes
        .iter()
        .map(|node| {
            if in_scope(node.file) {
                node.sites.locks.iter().map(|l| l.name.clone()).collect()
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    let mut sub_io: Vec<Option<String>> = graph
        .nodes
        .iter()
        .map(|node| {
            if in_scope(node.file) {
                node.sites.ios.first().map(|s| s.what.clone())
            } else {
                None
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            // Only scope-file functions carry transitive state: a chain
            // that detours through a pure-computation crate (where a
            // bare name like `len` or `insert` collides with half the
            // workspace) must not smuggle I/O back in.
            if !in_scope(graph.nodes[i].file) {
                continue;
            }
            let mut add: Vec<String> = Vec::new();
            let mut io_add: Option<String> = None;
            for e in &graph.edges[i] {
                if e.callee == i {
                    continue;
                }
                for l in &sub_locks[e.callee] {
                    if !sub_locks[i].contains(l) {
                        add.push(l.clone());
                    }
                }
                if sub_io[i].is_none() && io_add.is_none() && sub_io[e.callee].is_some() {
                    io_add = Some(format!(
                        "a call into `{}`, which performs I/O",
                        graph.nodes[e.callee].qual
                    ));
                }
            }
            if !add.is_empty() {
                sub_locks[i].extend(add);
                changed = true;
            }
            if let Some(io) = io_add {
                sub_io[i] = Some(io);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Acquisition-order edges and held-across-I/O findings, from lock
    // sites in scope files only. At most one held-across-I/O finding
    // per acquisition site: the first (earliest) I/O it covers.
    let mut order: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    let mut seen: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if !in_scope(node.file) {
            continue;
        }
        let mut by_idx: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in &graph.edges[ni] {
            by_idx.entry(e.idx).or_default().push(e.callee);
        }
        for a in &node.sites.locks {
            let (hs, he) = a.held;
            let covers = |idx: usize| idx > hs && idx < he;
            // Nested acquisitions inside this function.
            for b in &node.sites.locks {
                // Same-name pairs are excluded: under name-based lock
                // identity a `cache -> cache` edge is always a cycle
                // and says nothing about cross-thread ordering.
                if covers(b.held.0) && a.held.0 != b.held.0 && a.name != b.name {
                    order
                        .entry((a.name.clone(), b.name.clone()))
                        .or_insert_with(|| EdgeSite {
                            file: node.file,
                            span: b.span,
                            note: format!(
                                "`{}` acquired at {}:{} while `{}` (acquired at line {}) \
                                 is still held, in `{}`",
                                b.name,
                                files[node.file].rel,
                                b.span.line,
                                a.name,
                                a.span.line,
                                node.qual
                            ),
                        });
                }
            }
            // Direct I/O inside the held range.
            for s in &node.sites.ios {
                if covers(s.idx) {
                    let key = (node.file, a.span.line, a.span.col);
                    if seen.insert(key) {
                        out.push((
                            node.file,
                            held_across_io(a, &s.what, s.span.line, node, files),
                        ));
                    }
                }
            }
            // Calls inside the held range: inherit the callee's
            // transitive locks (order edges) and I/O (held-across).
            for c in &node.sites.calls {
                if !covers(c.idx) {
                    continue;
                }
                let Some(callees) = by_idx.get(&c.idx) else {
                    continue;
                };
                for &g in callees {
                    for m in &sub_locks[g] {
                        if *m == a.name {
                            continue; // a self-edge only counts when acquired directly
                        }
                        order
                            .entry((a.name.clone(), m.clone()))
                            .or_insert_with(|| EdgeSite {
                                file: node.file,
                                span: a.span,
                                note: format!(
                                    "`{}` held at {}:{} across a call to `{}`, which \
                                     (transitively) acquires `{m}`",
                                    a.name, files[node.file].rel, a.span.line, graph.nodes[g].qual
                                ),
                            });
                    }
                    if let Some(io_what) = &sub_io[g] {
                        let what = format!("a call to `{}` ({io_what})", graph.nodes[g].qual);
                        let key = (node.file, a.span.line, a.span.col);
                        if seen.insert(key) {
                            out.push((node.file, held_across_io(a, &what, c.line, node, files)));
                        }
                    }
                }
            }
        }
    }

    // Cycles in the acquisition-order graph: mutual reachability over
    // the lock names, one finding per strongly connected component.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (x, y) in order.keys() {
        adj.entry(x.as_str()).or_default().insert(y.as_str());
        adj.entry(y.as_str()).or_default();
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some(x) = stack.pop() {
            if let Some(next) = adj.get(x) {
                for &y in next {
                    if y == to {
                        return true;
                    }
                    if visited.insert(y) {
                        stack.push(y);
                    }
                }
            }
        }
        false
    };
    let names: Vec<&str> = adj.keys().copied().collect();
    let cyclic: Vec<&str> = names.iter().copied().filter(|x| reaches(x, x)).collect();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for &name in &cyclic {
        if reported.contains(name) {
            continue;
        }
        let scc: Vec<&str> = cyclic
            .iter()
            .copied()
            .filter(|&other| other == name || (reaches(name, other) && reaches(other, name)))
            .collect();
        reported.extend(&scc);
        // Anchor at the site of the smallest edge inside the component.
        let member = |s: &str| scc.contains(&s);
        let Some(((x, y), site)) = order
            .iter()
            .find(|((x, y), _)| member(x.as_str()) && member(y.as_str()))
        else {
            continue;
        };
        let display: Vec<String> = scc.iter().map(|s| format!("`{s}`")).collect();
        let mut f = Finding::new(
            "L2",
            site.span.line,
            site.span.col,
            site.span.len,
            format!(
                "lock acquisition-order cycle among {}: two threads taking \
                 them in opposite order deadlock",
                display.join(", ")
            ),
            "acquire the locks in one global order everywhere, or annotate \
             the acquisition `// chromata-lint: allow(L2): <why the cycle \
             cannot deadlock>`"
                .to_owned(),
        );
        f.notes.push(site.note.clone());
        if x != y {
            if let Some(back) = order.get(&(y.clone(), x.clone())) {
                f.notes.push(back.note.clone());
            }
        }
        out.push((site.file, f));
    }
}

/// Builds one held-across-I/O finding anchored at the acquisition site.
fn held_across_io(
    a: &crate::callgraph::LockSite,
    what: &str,
    io_line: u32,
    node: &crate::callgraph::Node,
    files: &[FileInfo],
) -> Finding {
    let mut f = Finding::new(
        "L2",
        a.span.line,
        a.span.col,
        a.span.len,
        format!(
            "lock `{}` held across {what}: a stalled peer extends the \
             critical section indefinitely",
            a.name
        ),
        "drop the guard before the I/O (scope it in a block or call \
         `drop(..)`), or annotate the acquisition \
         `// chromata-lint: allow(L2): <why the I/O is bounded>`"
            .to_owned(),
    );
    f.notes.push(format!(
        "guard acquired in `{}` ({}:{}) is still held at the I/O on line {io_line}",
        node.qual, files[node.file].rel, a.span.line
    ));
    f
}
