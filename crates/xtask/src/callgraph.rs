//! Workspace call graph and per-function site extraction.
//!
//! Nodes are the `fn` items the symbol parser recovered; edges are
//! name-resolved call sites (class-hierarchy-analysis style: a call
//! resolves to *every* workspace function with a matching name, and to
//! the container-matching subset when the call is `Type::name(..)`
//! qualified). The graph deliberately over-approximates — a phantom
//! edge can only make a pass report a chain that a human then justifies
//! or refutes with a per-site allow; a missing edge would silently hide
//! a real one.
//!
//! Alongside the edges, each node records the *sites* the
//! interprocedural passes reason about: panic/indexing sites (P3),
//! determinism-taint sources (D5), lock acquisitions with their held
//! ranges, and I/O calls (L2).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{self, Tok, TokKind};
use crate::rules;
use crate::symbols::FileSymbols;

/// A source span, 1-based.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    pub line: u32,
    pub col: u32,
    pub len: usize,
}

fn span_of(t: &Tok) -> Span {
    Span {
        line: t.line,
        col: t.col,
        len: t.text.chars().count().max(1),
    }
}

/// A `panic!`/`unwrap`/`expect`/`unreachable!`/`[i]` site.
#[derive(Clone, Debug)]
pub struct PanicSite {
    pub span: Span,
    /// Human label (`` `.unwrap()` ``, `` `panic!` ``, `indexing`).
    pub what: String,
    /// Whether this is a slice-indexing site (covered by P2 allows)
    /// rather than a panic-family site (covered by P1 allows).
    pub index: bool,
}

/// What kind of nondeterminism a taint source injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaintKind {
    Clock,
    Env,
    Rng,
    Hash,
}

/// A determinism-taint source site.
#[derive(Clone, Debug)]
pub struct TaintSite {
    pub span: Span,
    pub kind: TaintKind,
    pub what: String,
}

/// A lock acquisition (`recv.lock()` or a `lock(&recv)` helper call).
#[derive(Clone, Debug)]
pub struct LockSite {
    pub span: Span,
    /// The lock's identity: the receiver's last path segment. A
    /// heuristic — two different mutexes behind the same field name
    /// unify — but chosen so the acquisition-order graph stays small
    /// and reviewable.
    pub name: String,
    /// Half-open code-token range over which the guard is considered
    /// held: to the end of the enclosing block for `let`-bound guards
    /// (cut early by `drop(binding)`), to the end of the statement for
    /// temporaries.
    pub held: (usize, usize),
}

/// An I/O call (`ShardIo`/`PersistIo` method, socket constructor, or a
/// generic read/write on an I/O-ish receiver).
#[derive(Clone, Debug)]
pub struct IoSite {
    pub span: Span,
    /// Code-token index of the call, for held-range coverage checks.
    pub idx: usize,
    pub what: String,
}

/// An outgoing call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub name: String,
    /// `Type` of a `Type::name(..)` call, if qualified.
    pub qualifier: Option<String>,
    pub line: u32,
    /// Code-token index of the callee identifier.
    pub idx: usize,
}

/// Everything extracted from one function body.
#[derive(Clone, Debug, Default)]
pub struct FnSites {
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub taints: Vec<TaintSite>,
    pub locks: Vec<LockSite>,
    pub ios: Vec<IoSite>,
}

/// One call-graph node (a function item with a body).
#[derive(Clone, Debug)]
pub struct Node {
    /// Index of the owning file in the engine's file list.
    pub file: usize,
    pub name: String,
    pub qual: String,
    pub container: Option<String>,
    pub is_pub: bool,
    pub line: u32,
    pub col: u32,
    pub sites: FnSites,
}

/// An edge with the call site that induced it.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    pub callee: usize,
    pub line: u32,
    /// Code-token index of the callee identifier at the call site, so
    /// passes can match an edge to an exact site (two calls can share a
    /// line).
    pub idx: usize,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    pub edges: Vec<Vec<Edge>>,
}

/// A borrowed view of one prepared file, supplied by the engine.
pub struct FileView<'a> {
    pub rel: &'a str,
    pub code: &'a [&'a Tok],
    pub symbols: &'a FileSymbols,
    pub test_regions: &'a [(u32, u32)],
}

/// The I/O vocabulary the L2 pass matches call names against.
#[derive(Clone, Debug, Default)]
pub struct IoCatalog {
    /// Unambiguous method names (`exchange`, `write_tmp`, `sync_dir`).
    pub distinct: BTreeSet<String>,
    /// Generic names (`read`, `remove`) that only count on an I/O-ish
    /// receiver (`io`, `stream`, `socket`, ...).
    pub generic: BTreeSet<String>,
}

/// Call names too generic to mean I/O without receiver evidence.
const GENERIC_IO_NAMES: &[&str] = &["read", "write", "remove", "rename", "flush"];

/// Receiver last-segments that make a generic read/write an I/O call.
const IOISH_RECEIVERS: &[&str] = &["io", "stream", "socket", "conn", "listener", "sock"];

/// Builds the I/O vocabulary from the `ShardIo`/`PersistIo` traits
/// found in the workspace, plus the socket-constructor names.
#[must_use]
pub fn io_catalog(files: &[FileView<'_>]) -> IoCatalog {
    let mut cat = IoCatalog::default();
    for f in files {
        for t in &f.symbols.traits {
            if t.name == "ShardIo" || t.name == "PersistIo" {
                for m in &t.methods {
                    if GENERIC_IO_NAMES.contains(&m.as_str()) {
                        cat.generic.insert(m.clone());
                    } else {
                        cat.distinct.insert(m.clone());
                    }
                }
            }
        }
    }
    for m in ["accept", "bind", "connect", "connect_timeout"] {
        cat.distinct.insert(m.to_owned());
    }
    cat
}

/// Builds the workspace call graph.
#[must_use]
pub fn build(files: &[FileView<'_>], io: &IoCatalog) -> Graph {
    let mut graph = Graph::default();
    for (file_idx, f) in files.iter().enumerate() {
        let braces = match_braces(f.code);
        for item in &f.symbols.fns {
            let Some(body) = item.body else { continue };
            // Items gated to test builds are out of scope for every
            // interprocedural pass, exactly like the token rules.
            if lexer::in_regions(f.test_regions, item.line) {
                continue;
            }
            let sites = extract_sites(f.code, body, f.symbols, io, &braces);
            graph.nodes.push(Node {
                file: file_idx,
                name: item.name.clone(),
                qual: item.qual.clone(),
                container: item.container.clone(),
                is_pub: item.is_pub,
                line: item.line,
                col: item.col,
                sites,
            });
        }
    }
    // Name resolution: container-qualified first, bare name fallback.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut containers: BTreeSet<&str> = BTreeSet::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(i);
        if let Some(c) = &n.container {
            by_qual
                .entry((c.as_str(), n.name.as_str()))
                .or_default()
                .push(i);
            containers.insert(c.as_str());
        }
    }
    for n in &graph.nodes {
        let mut out: Vec<Edge> = Vec::new();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for call in &n.sites.calls {
            let targets: &[usize] = match &call.qualifier {
                Some(q) => {
                    if let Some(v) = by_qual.get(&(q.as_str(), call.name.as_str())) {
                        v
                    } else if containers.contains(q.as_str())
                        || q.chars().next().is_some_and(char::is_uppercase)
                    {
                        // A known container without this method, or a
                        // type-like qualifier no workspace impl block
                        // mentions (`BTreeMap::new`): the call goes out
                        // of workspace (std, vendored). No edge — a
                        // bare-name fallback here would wire every
                        // `::new(..)` to every workspace constructor.
                        &[]
                    } else {
                        // Qualifier is a module path segment (possibly
                        // aliased): fall back to the bare name.
                        by_name
                            .get(call.name.as_str())
                            .map_or(&[][..], Vec::as_slice)
                    }
                }
                None => by_name
                    .get(call.name.as_str())
                    .map_or(&[][..], Vec::as_slice),
            };
            for &t in targets {
                if seen.insert((t, call.idx)) {
                    out.push(Edge {
                        callee: t,
                        line: call.line,
                        idx: call.idx,
                    });
                }
            }
        }
        graph.edges.push(out);
    }
    graph
}

/// For each `{` token index, the index of its matching `}`.
fn match_braces(code: &[&Tok]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
            }
        }
    }
    map
}

/// Keywords that look like `ident (` but are not calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "as", "in", "move", "else", "let",
    "mut", "ref", "unsafe", "use", "pub", "where", "impl", "dyn", "break", "continue", "crate",
    "super", "struct", "enum", "union", "trait", "mod", "static", "const", "type", "extern",
    "true", "false", "await", "box", "yield",
];

/// Extracts calls and pass-relevant sites from one body range.
fn extract_sites(
    code: &[&Tok],
    body: (usize, usize),
    symbols: &FileSymbols,
    io: &IoCatalog,
    braces: &BTreeMap<usize, usize>,
) -> FnSites {
    let (start, end) = body;
    let end = end.min(code.len());
    let mut sites = FnSites::default();
    for i in start..end {
        let t = code[i];
        if t.kind != TokKind::Ident {
            if rules::is_index_site(code, i) {
                sites.panics.push(PanicSite {
                    span: span_of(t),
                    what: "indexing".to_owned(),
                    index: true,
                });
            }
            continue;
        }
        // Panic-family sites (same predicates as rule P1).
        if let Some(what) = rules::unwrap_like(code, i) {
            sites.panics.push(PanicSite {
                span: span_of(t),
                what: format!("`.{what}()`"),
                index: false,
            });
        } else if let Some(what) = rules::panic_macro(code, i) {
            sites.panics.push(PanicSite {
                span: span_of(t),
                what: format!("`{what}!`"),
                index: false,
            });
        }
        // Determinism-taint sources: the D2 clock/env predicate
        // (alias-aware), plus RNG and hash-container sources.
        if let Some(what) = rules::clock_env_what(code, i, symbols) {
            let kind = if what.contains("environment") {
                TaintKind::Env
            } else {
                TaintKind::Clock
            };
            sites.taints.push(TaintSite {
                span: span_of(t),
                kind,
                what,
            });
        } else if let Some(what) = rng_taint(code, i, symbols) {
            sites.taints.push(TaintSite {
                span: span_of(t),
                kind: TaintKind::Rng,
                what,
            });
        } else if let Some(what) = hash_taint(code, i, symbols) {
            sites.taints.push(TaintSite {
                span: span_of(t),
                kind: TaintKind::Hash,
                what,
            });
        }
        // Lock acquisitions.
        if t.text == "lock" && code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let method = i > 0 && code[i - 1].is_punct('.');
            let is_def = i > 0 && code[i - 1].is_ident("fn");
            if !is_def {
                let name = if method {
                    receiver_name(code, i - 1)
                } else {
                    last_ident_in_args(code, i + 1)
                };
                if let Some(name) = name {
                    let held = held_range(code, i, braces, start, end);
                    sites.locks.push(LockSite {
                        span: span_of(t),
                        name,
                        held,
                    });
                }
            }
        }
        // Calls (after the site classification so a `lock()` call is
        // both a lock site and an edge to any workspace `lock` fn).
        if let Some(call) = call_at(code, i) {
            // I/O classification by callee name.
            if io.distinct.contains(&call.name) {
                sites.ios.push(IoSite {
                    span: span_of(t),
                    idx: i,
                    what: format!("`{}(..)`", call.name),
                });
            } else if io.generic.contains(&call.name)
                && i > 0
                && code[i - 1].is_punct('.')
                && receiver_name(code, i - 1).is_some_and(|r| ioish(&r))
            {
                sites.ios.push(IoSite {
                    span: span_of(t),
                    idx: i,
                    what: format!("`{}(..)` on an I/O receiver", call.name),
                });
            }
            // Socket constructors (the D4 vocabulary) are I/O sites too:
            // `TcpStream::connect(..)` has callee `connect` qualified by
            // the socket type.
            if let Some(q) = &call.qualifier {
                if rules::SOCKET_TYPES.contains(&q.as_str())
                    && rules::SOCKET_CONSTRUCTORS.contains(&call.name.as_str())
                {
                    sites.ios.push(IoSite {
                        span: span_of(t),
                        idx: i,
                        what: format!("`{q}::{}` socket construction", call.name),
                    });
                }
            }
            sites.calls.push(call);
        }
    }
    sites
}

/// Recognizes a call whose *callee identifier* is at `i`: plain
/// `name(..)`, qualified `Type::name(..)`, or method `.name(..)`.
fn call_at(code: &[&Tok], i: usize) -> Option<CallSite> {
    let t = code[i];
    if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    if CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    let prev = i.checked_sub(1).map(|p| code[p]);
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return None; // definition, not call
    }
    if prev.is_some_and(|p| p.is_punct('.')) {
        return Some(CallSite {
            name: t.text.clone(),
            qualifier: None,
            line: t.line,
            idx: i,
        });
    }
    if i >= 3 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':') {
        let q = code[i - 3];
        if q.kind == TokKind::Ident {
            return Some(CallSite {
                name: t.text.clone(),
                qualifier: Some(q.text.clone()),
                line: t.line,
                idx: i,
            });
        }
        return None;
    }
    Some(CallSite {
        name: t.text.clone(),
        qualifier: None,
        line: t.line,
        idx: i,
    })
}

/// RNG taint: entropy-seeded randomness by name or through an alias of
/// the `rand` crate.
fn rng_taint(code: &[&Tok], i: usize, symbols: &FileSymbols) -> Option<String> {
    let t = code[i];
    match t.text.as_str() {
        "thread_rng" | "from_entropy" => {
            if code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                return Some(format!("`{}()` entropy source", t.text));
            }
            None
        }
        "RandomState" => Some("`RandomState` (per-process hash seed)".to_owned()),
        _ => {
            let target = symbols.alias_target(&t.text, t.line)?;
            if (target == "rand" || target.starts_with("rand::"))
                && code
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
            {
                return Some(format!("`{}` (aliases `{target}`)", t.text));
            }
            None
        }
    }
}

/// Hash-container taint: `HashMap`/`HashSet` by name or alias.
fn hash_taint(code: &[&Tok], i: usize, symbols: &FileSymbols) -> Option<String> {
    let t = code[i];
    if t.text == "HashMap" || t.text == "HashSet" {
        return Some(format!("`{}` (hash iteration order)", t.text));
    }
    let target = symbols.alias_target(&t.text, t.line)?;
    if target.ends_with("::HashMap") || target.ends_with("::HashSet") {
        return Some(format!("`{}` (aliases `{target}`)", t.text));
    }
    None
}

fn ioish(receiver: &str) -> bool {
    IOISH_RECEIVERS.contains(&receiver) || receiver.ends_with("_io")
}

/// The receiver's last path segment for a method call whose `.` is at
/// `dot`: `self.state.lock()` → `state`; `cache(store).lock()` →
/// `cache`.
fn receiver_name(code: &[&Tok], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    // Skip a call's argument list to the callee name.
    if code[j].is_punct(')') {
        let mut depth = 0i32;
        loop {
            if code[j].is_punct(')') {
                depth += 1;
            } else if code[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    if code[j].kind == TokKind::Ident {
        Some(code[j].text.clone())
    } else {
        None
    }
}

/// The last identifier inside the argument list opening at `open`
/// (`lock(&self.queue)` → `queue`).
fn last_ident_in_args(code: &[&Tok], open: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut last: Option<String> = None;
    for t in code.iter().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident && t.text != "self" && t.text != "mut" {
            last = Some(t.text.clone());
        }
    }
    last
}

/// The token range over which the guard acquired at `i` is held.
fn held_range(
    code: &[&Tok],
    i: usize,
    braces: &BTreeMap<usize, usize>,
    body_start: usize,
    body_end: usize,
) -> (usize, usize) {
    // Find the statement start and whether the guard is `let`-bound.
    let mut j = i;
    let mut binding: Option<String> = None;
    let mut bound = false;
    while j > body_start {
        j -= 1;
        let t = code[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            bound = true;
            // First ident after `let`, skipping `mut`.
            let mut k = j + 1;
            while k < i {
                let n = code[k];
                if n.kind == TokKind::Ident && n.text != "mut" {
                    binding = Some(n.text.clone());
                    break;
                }
                if n.kind != TokKind::Ident {
                    break; // destructuring: bound, no drop tracking
                }
                k += 1;
            }
            break;
        }
    }
    // The innermost block enclosing `i`.
    let mut block_end = body_end;
    let mut best_open = None;
    for (&open, &close) in braces {
        if open < i && close > i {
            match best_open {
                None => {
                    best_open = Some(open);
                    block_end = close;
                }
                Some(b) if open > b => {
                    best_open = Some(open);
                    block_end = close;
                }
                _ => {}
            }
        }
    }
    let block_end = block_end.min(body_end);
    if bound {
        // Held to the end of the enclosing block, cut by an explicit
        // `drop(binding)`.
        if let Some(bind) = binding {
            let mut k = i;
            while k < block_end {
                if code[k].is_ident("drop")
                    && code.get(k + 1).is_some_and(|t| t.is_punct('('))
                    && code.get(k + 2).is_some_and(|t| t.is_ident(&bind))
                    && code.get(k + 3).is_some_and(|t| t.is_punct(')'))
                {
                    return (i, k);
                }
                k += 1;
            }
        }
        (i, block_end)
    } else {
        // A temporary guard: held to the end of the statement (`;` or a
        // match-arm `,` at the same depth), bounded by the block.
        let mut depth = 0i32;
        let mut k = i;
        while k < block_end {
            let t = code[k];
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct(';') | TokKind::Punct(',') if depth <= 0 => return (i, k),
                _ => {}
            }
            k += 1;
        }
        (i, block_end)
    }
}

/// Renders the graph as sorted `caller -> callee` lines (or Graphviz
/// DOT with `dot = true`) for `cargo xtask graph`.
#[must_use]
pub fn dump(graph: &Graph, rels: &[String], dot: bool) -> String {
    let mut out = String::new();
    let label = |i: usize| {
        let n = &graph.nodes[i];
        let rel = rels.get(n.file).map_or("?", String::as_str);
        format!("{} ({rel}:{})", n.qual, n.line)
    };
    if dot {
        out.push_str("digraph calls {\n");
        for i in 0..graph.nodes.len() {
            out.push_str(&format!("  \"{}\";\n", label(i)));
        }
        for (i, edges) in graph.edges.iter().enumerate() {
            for e in edges {
                out.push_str(&format!("  \"{}\" -> \"{}\";\n", label(i), label(e.callee)));
            }
        }
        out.push_str("}\n");
    } else {
        out.push_str(&format!(
            "{} function(s), {} edge(s)\n",
            graph.nodes.len(),
            graph.edges.iter().map(Vec::len).sum::<usize>()
        ));
        let mut lines: Vec<String> = Vec::new();
        for (i, edges) in graph.edges.iter().enumerate() {
            for e in edges {
                lines.push(format!("{} -> {}", label(i), label(e.callee)));
            }
        }
        lines.sort();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
    }
    out
}
