//! Supply-chain checks (`cargo xtask deny`): the offline stand-in for
//! `cargo-deny`, driven by the same `deny.toml` shape.
//!
//! Three checks, mirroring cargo-deny's `licenses`, `bans` and
//! `advisories` passes:
//!
//! * every workspace and vendored crate's license expression must be
//!   covered by the `[licenses] allow` list;
//! * `Cargo.lock` must not contain two versions of the same package
//!   (`[bans] multiple-versions = "deny"`);
//! * no locked package may match the embedded advisory database (the
//!   workspace builds offline, so a small static snapshot of RUSTSEC
//!   entries for crates this project could plausibly grow stands in for
//!   the live feed).

use std::fmt;
use std::path::Path;

use crate::toml_lite::{self, Value};
use crate::workspace;

/// A static snapshot of RUSTSEC advisories checked against `Cargo.lock`.
/// `(crate, affected-version-prefix, id, summary)`; a locked package
/// matches when its name is equal and its version starts with the prefix.
pub const ADVISORIES: &[(&str, &str, &str, &str)] = &[
    (
        "smallvec",
        "0.6",
        "RUSTSEC-2019-0009",
        "double-free and use-after-free in SmallVec",
    ),
    (
        "time",
        "0.1",
        "RUSTSEC-2020-0071",
        "potential segfault in localtime_r invocations",
    ),
    (
        "atty",
        "0.2",
        "RUSTSEC-2021-0145",
        "potential unaligned read",
    ),
    (
        "chrono",
        "0.4.1",
        "RUSTSEC-2020-0159",
        "potential segfault in localtime_r invocations",
    ),
];

/// One deny-check violation.
#[derive(Clone, Debug)]
pub struct DenyFinding {
    /// Which pass produced it (`licenses`, `bans`, `advisories`).
    pub pass: &'static str,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for DenyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[deny:{}]: {}", self.pass, self.message)
    }
}

/// The outcome of `xtask deny`.
#[derive(Clone, Debug, Default)]
pub struct DenyReport {
    pub findings: Vec<DenyFinding>,
    pub crates_checked: usize,
    pub packages_locked: usize,
}

impl DenyReport {
    /// Whether the run should exit non-zero.
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.findings.is_empty()
    }
}

impl fmt::Display for DenyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.findings {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} manifest(s) and {} locked package(s) checked: {} violation(s)",
            self.crates_checked,
            self.packages_locked,
            self.findings.len()
        )
    }
}

/// Runs all three passes from the workspace root.
///
/// # Errors
///
/// Returns an error if `deny.toml` or `Cargo.lock` cannot be read.
pub fn run(root: &Path) -> std::io::Result<DenyReport> {
    let config = toml_lite::parse(&std::fs::read_to_string(root.join("deny.toml"))?);
    let lock = std::fs::read_to_string(root.join("Cargo.lock"))?;
    let root_manifest = toml_lite::parse(&std::fs::read_to_string(root.join("Cargo.toml"))?);
    let workspace_license = root_manifest
        .get("workspace.package", "license")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_owned();

    let mut report = DenyReport::default();
    check_licenses(root, &config, &workspace_license, &mut report)?;
    check_lock(&lock, &config, &mut report);
    Ok(report)
}

fn check_licenses(
    root: &Path,
    config: &toml_lite::Doc,
    workspace_license: &str,
    report: &mut DenyReport,
) -> std::io::Result<()> {
    let allow: Vec<String> = config
        .get("licenses", "allow")
        .and_then(Value::as_array)
        .map(<[String]>::to_vec)
        .unwrap_or_default();
    for manifest in workspace::manifests(root)? {
        let doc = toml_lite::parse(&std::fs::read_to_string(&manifest)?);
        let Some(pkg) = doc.table("package") else {
            continue;
        };
        report.crates_checked += 1;
        let name = pkg
            .entries
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_owned();
        let license = match (
            pkg.entries.get("license").and_then(Value::as_str),
            pkg.entries.get("license.workspace"),
        ) {
            (Some(l), _) => l.to_owned(),
            (None, Some(Value::Bool(true))) => workspace_license.to_owned(),
            _ => String::new(),
        };
        if license.is_empty() {
            report.findings.push(DenyFinding {
                pass: "licenses",
                message: format!("crate `{name}` declares no license"),
            });
        } else if !expression_allowed(&license, &allow) {
            report.findings.push(DenyFinding {
                pass: "licenses",
                message: format!(
                    "crate `{name}` license `{license}` is not covered by the \
                     deny.toml allow list"
                ),
            });
        }
    }
    Ok(())
}

/// SPDX-lite: the whole expression is allowed verbatim, or each `AND`
/// part must be allowed, where a part is allowed verbatim or if any of
/// its `OR` alternatives is allowed.
fn expression_allowed(expr: &str, allow: &[String]) -> bool {
    let allowed = |s: &str| allow.iter().any(|a| a == s.trim());
    if allowed(expr) {
        return true;
    }
    expr.split(" AND ")
        .all(|part| allowed(part) || part.split(" OR ").any(&allowed))
}

/// The lock-file passes (separated from [`run`] so tests can feed a
/// synthetic lock).
pub fn check_lock(lock_text: &str, config: &toml_lite::Doc, report: &mut DenyReport) {
    let lock = toml_lite::parse(lock_text);
    let packages: Vec<(String, String)> = lock
        .tables_named("package")
        .filter_map(|t| {
            Some((
                t.entries.get("name")?.as_str()?.to_owned(),
                t.entries.get("version")?.as_str()?.to_owned(),
            ))
        })
        .collect();
    report.packages_locked = packages.len();

    // bans: duplicate versions of one package.
    let multiple_versions = config
        .get("bans", "multiple-versions")
        .and_then(Value::as_str)
        .unwrap_or("deny");
    if multiple_versions == "deny" {
        let mut by_name: std::collections::BTreeMap<&str, Vec<&str>> =
            std::collections::BTreeMap::new();
        for (name, version) in &packages {
            by_name.entry(name).or_default().push(version);
        }
        for (name, mut versions) in by_name {
            versions.sort_unstable();
            versions.dedup();
            if versions.len() > 1 {
                report.findings.push(DenyFinding {
                    pass: "bans",
                    message: format!(
                        "duplicate versions of `{name}` in Cargo.lock: {}",
                        versions.join(", ")
                    ),
                });
            }
        }
    }

    // advisories: embedded RUSTSEC snapshot.
    for (name, version) in &packages {
        for (adv_name, prefix, id, summary) in ADVISORIES {
            if name == adv_name && version.starts_with(prefix) {
                report.findings.push(DenyFinding {
                    pass: "advisories",
                    message: format!("`{name} {version}` matches {id}: {summary}"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(text: &str) -> toml_lite::Doc {
        toml_lite::parse(text)
    }

    #[test]
    fn duplicate_versions_are_banned() {
        let mut report = DenyReport::default();
        check_lock(
            "[[package]]\nname = \"dup\"\nversion = \"1.0.0\"\n\n[[package]]\nname = \"dup\"\nversion = \"2.0.0\"\n",
            &config("[bans]\nmultiple-versions = \"deny\"\n"),
            &mut report,
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].pass, "bans");
        assert!(report.findings[0].message.contains("dup"));
    }

    #[test]
    fn duplicates_allowed_when_configured() {
        let mut report = DenyReport::default();
        check_lock(
            "[[package]]\nname = \"dup\"\nversion = \"1.0.0\"\n\n[[package]]\nname = \"dup\"\nversion = \"2.0.0\"\n",
            &config("[bans]\nmultiple-versions = \"allow\"\n"),
            &mut report,
        );
        assert!(report.findings.is_empty());
    }

    #[test]
    fn advisory_snapshot_matches_by_prefix() {
        let mut report = DenyReport::default();
        check_lock(
            "[[package]]\nname = \"smallvec\"\nversion = \"0.6.14\"\n",
            &config(""),
            &mut report,
        );
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("RUSTSEC-2019-0009"));
        // A fixed version does not match.
        let mut clean = DenyReport::default();
        check_lock(
            "[[package]]\nname = \"smallvec\"\nversion = \"1.11.0\"\n",
            &config(""),
            &mut clean,
        );
        assert!(clean.findings.is_empty());
    }

    #[test]
    fn license_expressions() {
        let allow = vec!["MIT".to_owned(), "Apache-2.0".to_owned()];
        assert!(expression_allowed("MIT", &allow));
        assert!(expression_allowed("MIT OR Apache-2.0", &allow));
        assert!(expression_allowed("MIT AND Apache-2.0", &allow));
        assert!(!expression_allowed("GPL-3.0", &allow));
        assert!(!expression_allowed("MIT AND GPL-3.0", &allow));
        assert!(expression_allowed("GPL-3.0 OR MIT", &allow));
    }

    #[test]
    fn whole_workspace_passes_the_real_config() {
        let root = crate::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let report = run(&root).unwrap();
        assert!(
            !report.failed(),
            "deny violations in the real workspace:\n{report}"
        );
        assert!(report.crates_checked >= 8, "{}", report.crates_checked);
        assert!(report.packages_locked >= 8, "{}", report.packages_locked);
    }
}
