//! A lightweight item parser on top of the lexer.
//!
//! The interprocedural passes (P3/D5/L2) need to know *which function a
//! token belongs to*, *what a bare identifier resolves to through `use`
//! aliases*, and *which methods a trait declares* — none of which the
//! flat token stream provides. This module recovers exactly that much
//! structure with a single linear scan and an explicit scope stack:
//!
//! * `use` declarations, including groups (`use a::{b, c as d}`) and
//!   renames (`use std::time::Instant as Clock`) — the alias table is
//!   what lets rule D2 see through the `as Clock` evasion;
//! * `fn` items with their `pub`-ness, enclosing `impl`/`trait`/`mod`
//!   container and the token range of their body (nested functions get
//!   their own item; closures attribute to the enclosing function);
//! * `trait` items with their method names (the L2 pass derives the
//!   `ShardIo`/`PersistIo` I/O vocabulary from these).
//!
//! Like the lexer, the parser is *sound for linting*, not a full Rust
//! grammar: it over-approximates where the two differ, and every
//! downstream finding can be silenced with a justified allow.

use crate::lexer::{Tok, TokKind};

/// One name introduced by a `use` declaration.
#[derive(Clone, Debug)]
pub struct UseAlias {
    /// The identifier visible in this file (`Clock`).
    pub alias: String,
    /// The full imported path, `::`-joined (`std::time::Instant`).
    pub target: String,
    /// Line of the `use` declaration (alias lookups skip their own
    /// declaration line so the base token rules keep ownership there).
    pub line: u32,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare name (`helper`).
    pub name: String,
    /// Display name qualified by its container (`StageCache::helper`,
    /// `faults::helper`).
    pub qual: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub container: Option<String>,
    /// Whether the item carries a `pub` (any visibility restriction
    /// included: `pub(crate)` is public enough to be an API root).
    pub is_pub: bool,
    /// 1-based line/column of the function *name*.
    pub line: u32,
    pub col: u32,
    /// Half-open range of body tokens (indices into the comment-free
    /// code token slice, excluding the braces). `None` for bodyless
    /// declarations (trait methods, `extern` items).
    pub body: Option<(usize, usize)>,
}

/// One `trait` item and the methods it declares.
#[derive(Clone, Debug, Default)]
pub struct TraitItem {
    pub name: String,
    pub methods: Vec<String>,
}

/// Everything the parser recovers from one file.
#[derive(Clone, Debug, Default)]
pub struct FileSymbols {
    pub aliases: Vec<UseAlias>,
    pub fns: Vec<FnItem>,
    pub traits: Vec<TraitItem>,
}

impl FileSymbols {
    /// Resolves `ident` through the alias table, skipping the alias's
    /// own declaration line (the base rules already police what a `use`
    /// names; alias resolution polices what the rest of the file does
    /// with it).
    #[must_use]
    pub fn alias_target(&self, ident: &str, line: u32) -> Option<&str> {
        self.aliases
            .iter()
            .find(|a| a.alias == ident && a.line != line)
            .map(|a| a.target.as_str())
    }

    /// The function whose body contains code-token index `idx`, picking
    /// the innermost (latest-starting) body when functions nest.
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (k, f) in self.fns.iter().enumerate() {
            if let Some((start, end)) = f.body {
                if idx >= start && idx < end {
                    let tighter = match best {
                        None => true,
                        Some(b) => {
                            let (bs, _) = self.fns[b].body.unwrap_or((0, usize::MAX));
                            start >= bs
                        }
                    };
                    if tighter {
                        best = Some(k);
                    }
                }
            }
        }
        best
    }
}

/// What kind of scope a `{` opened.
#[derive(Clone, Debug)]
enum ScopeKind {
    Mod(String),
    Impl(String),
    Trait(usize),
    Fn(usize),
    Block,
}

/// Parses the comment-free code token slice of one file.
#[must_use]
pub fn parse(code: &[&Tok]) -> FileSymbols {
    let mut out = FileSymbols::default();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending_pub = false;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            match t.kind {
                TokKind::Punct('{') => scopes.push(ScopeKind::Block),
                TokKind::Punct('}') => close_scope(&mut scopes, &mut out, i),
                _ => {}
            }
            pending_pub = false;
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                pending_pub = true;
                i += 1;
                // Skip a `pub(crate)` / `pub(in path)` restriction.
                if code.get(i).is_some_and(|t| t.is_punct('(')) {
                    i = skip_balanced(code, i, '(', ')');
                }
                continue;
            }
            // Modifiers between `pub` and the item keyword.
            "unsafe" | "const" | "async" | "extern" | "default" => {
                i += 1;
                continue;
            }
            "use" => {
                i = parse_use(code, i + 1, &mut out);
                pending_pub = false;
                continue;
            }
            "mod" if next_is_ident(code, i) => {
                let name = code[i + 1].text.clone();
                i += 2;
                if code.get(i).is_some_and(|t| t.is_punct('{')) {
                    scopes.push(ScopeKind::Mod(name));
                    i += 1;
                }
                pending_pub = false;
                continue;
            }
            "impl" if item_position(code, i) => {
                let (name, at) = parse_impl_header(code, i + 1);
                i = at;
                if code.get(i).is_some_and(|t| t.is_punct('{')) {
                    scopes.push(ScopeKind::Impl(name));
                    i += 1;
                }
                pending_pub = false;
                continue;
            }
            "trait" if next_is_ident(code, i) => {
                let name = code[i + 1].text.clone();
                let mut j = i + 2;
                while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
                    j += 1;
                }
                if code.get(j).is_some_and(|t| t.is_punct('{')) {
                    out.traits.push(TraitItem {
                        name,
                        methods: Vec::new(),
                    });
                    scopes.push(ScopeKind::Trait(out.traits.len() - 1));
                    j += 1;
                }
                i = j;
                pending_pub = false;
                continue;
            }
            "fn" if next_is_ident(code, i) => {
                let name_tok = code[i + 1];
                let name = name_tok.text.clone();
                if let Some(ScopeKind::Trait(tid)) = innermost_item_scope(&scopes) {
                    out.traits[*tid].methods.push(name.clone());
                }
                let container = match innermost_item_scope(&scopes) {
                    Some(ScopeKind::Impl(c)) => Some(c.clone()),
                    Some(ScopeKind::Trait(tid)) => Some(out.traits[*tid].name.clone()),
                    _ => None,
                };
                let qual = match &container {
                    Some(c) => format!("{c}::{name}"),
                    None => {
                        let mods: Vec<&str> = scopes
                            .iter()
                            .filter_map(|s| match s {
                                ScopeKind::Mod(m) => Some(m.as_str()),
                                _ => None,
                            })
                            .collect();
                        if mods.is_empty() {
                            name.clone()
                        } else {
                            format!("{}::{}", mods.join("::"), name)
                        }
                    }
                };
                // Scan the signature to the body `{` or a bodyless `;`.
                let mut j = i + 2;
                let mut paren = 0i32;
                while j < code.len() {
                    match code[j].kind {
                        TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                        TokKind::Punct('{') if paren == 0 => break,
                        TokKind::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let fid = out.fns.len();
                out.fns.push(FnItem {
                    name,
                    qual,
                    container,
                    is_pub: pending_pub,
                    line: name_tok.line,
                    col: name_tok.col,
                    body: None,
                });
                if code.get(j).is_some_and(|t| t.is_punct('{')) {
                    out.fns[fid].body = Some((j + 1, j + 1)); // end patched on close
                    scopes.push(ScopeKind::Fn(fid));
                    j += 1;
                }
                i = j;
                pending_pub = false;
                continue;
            }
            _ => {
                pending_pub = false;
                i += 1;
            }
        }
    }
    // Unterminated scopes (lexer never fails, so neither do we): close
    // every function body at end-of-file.
    while !scopes.is_empty() {
        close_scope(&mut scopes, &mut out, code.len());
    }
    out
}

/// Pops one scope; a function scope records its body end.
fn close_scope(scopes: &mut Vec<ScopeKind>, out: &mut FileSymbols, idx: usize) {
    if let Some(ScopeKind::Fn(fid)) = scopes.pop() {
        if let Some((start, _)) = out.fns[fid].body {
            out.fns[fid].body = Some((start, idx));
        }
    }
}

/// The innermost non-`Block` scope, for container resolution.
fn innermost_item_scope(scopes: &[ScopeKind]) -> Option<&ScopeKind> {
    scopes.iter().rev().find(|s| !matches!(s, ScopeKind::Block))
}

fn next_is_ident(code: &[&Tok], i: usize) -> bool {
    code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
}

/// Whether `impl` at `i` starts an item (vs `-> impl Trait` / `(impl
/// Trait` in type position): true at a statement boundary.
fn item_position(code: &[&Tok], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| code.get(p)) {
        None => true,
        Some(prev) => {
            matches!(
                prev.kind,
                TokKind::Punct(';')
                    | TokKind::Punct('{')
                    | TokKind::Punct('}')
                    | TokKind::Punct(']')
            ) || (prev.kind == TokKind::Ident && matches!(prev.text.as_str(), "unsafe" | "default"))
        }
    }
}

/// Parses an `impl` header starting just past the `impl` keyword:
/// returns the self-type name (the last path segment of the type after
/// `for`, or of the inherent type) and the index of the body `{`.
fn parse_impl_header(code: &[&Tok], i: usize) -> (String, usize) {
    let mut name = String::from("?");
    let mut angle = 0i32;
    let mut j = i;
    while j < code.len() {
        let t = code[j];
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` does not close a generic argument list.
                let arrow = j > 0 && code[j - 1].is_punct('-');
                if !arrow {
                    angle = (angle - 1).max(0);
                }
            }
            TokKind::Punct('{') if angle == 0 => return (name, j),
            TokKind::Punct(';') if angle == 0 => return (name, j),
            TokKind::Ident if angle == 0 => match t.text.as_str() {
                "where" => {
                    // Skip the where clause to the body.
                    while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
                        j += 1;
                    }
                    return (name, j);
                }
                "for" => name = String::from("?"),
                "dyn" => {}
                other => name = other.to_owned(),
            },
            _ => {}
        }
        j += 1;
    }
    (name, j)
}

/// Skips a balanced `open`...`close` group starting at `i` (which must
/// point at `open`); returns the index just past the matching close.
fn skip_balanced(code: &[&Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        if code[j].is_punct(open) {
            depth += 1;
        } else if code[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Parses a `use` declaration starting just past the `use` keyword;
/// returns the index just past the terminating `;`.
fn parse_use(code: &[&Tok], i: usize, out: &mut FileSymbols) -> usize {
    let mut j = i;
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(code, &mut j, &mut prefix, out);
    while j < code.len() && !code[j].is_punct(';') {
        j += 1;
    }
    j.saturating_add(1)
}

/// Parses one use-tree node (`a::b`, `a::{..}`, `a as b`, `*`),
/// appending aliases to `out`. `prefix` holds the segments parsed so
/// far on this branch.
fn parse_use_tree(code: &[&Tok], j: &mut usize, prefix: &mut Vec<String>, out: &mut FileSymbols) {
    let depth_reset = prefix.len();
    // Whether this element already bound an explicit `as Alias` (which
    // suppresses the implicit last-segment import).
    let mut renamed = false;
    while let Some(t) = code.get(*j) {
        match &t.kind {
            TokKind::Ident => {
                if t.text == "as" {
                    // `path as Alias`
                    if let Some(alias_tok) = code.get(*j + 1) {
                        if alias_tok.kind == TokKind::Ident {
                            push_alias(out, &alias_tok.text, prefix, alias_tok.line);
                            renamed = true;
                            *j += 2;
                            continue;
                        }
                    }
                    *j += 1;
                } else {
                    prefix.push(t.text.clone());
                    *j += 1;
                }
            }
            TokKind::Punct(':') => {
                *j += 1; // both colons of `::`
            }
            TokKind::Punct('{') => {
                // A group: parse each comma-separated element against
                // the current prefix. Each recursive call emits and
                // truncates its own element.
                *j += 1;
                loop {
                    parse_use_tree(code, j, prefix, out);
                    match code.get(*j).map(|t| &t.kind) {
                        Some(TokKind::Punct(',')) => {
                            *j += 1;
                        }
                        Some(TokKind::Punct('}')) => {
                            *j += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                prefix.truncate(depth_reset);
                return;
            }
            TokKind::Punct('}') | TokKind::Punct(',') | TokKind::Punct(';') => {
                // End of this element: a bare `a::b` import aliases its
                // last segment (unless `as` already renamed it).
                if prefix.len() > depth_reset && !renamed {
                    emit_plain(out, prefix, code, *j);
                }
                prefix.truncate(depth_reset);
                return;
            }
            TokKind::Punct('*') => {
                // Glob: nothing nameable.
                *j += 1;
                prefix.truncate(depth_reset);
                return;
            }
            _ => {
                *j += 1;
            }
        }
    }
    prefix.truncate(depth_reset);
}

/// Emits the implicit alias of a plain import: `use std::time::Instant;`
/// makes `Instant` mean `std::time::Instant`.
fn emit_plain(out: &mut FileSymbols, prefix: &[String], code: &[&Tok], j: usize) {
    let Some(last) = prefix.last() else { return };
    if last == "self" {
        // `use a::b::{self}`: `b` means `a::b`.
        if prefix.len() >= 2 {
            let alias = prefix[prefix.len() - 2].clone();
            let target = prefix[..prefix.len() - 1].to_vec();
            let line = code.get(j.saturating_sub(1)).map_or(0, |t| t.line);
            push_alias(out, &alias, &target, line);
        }
        return;
    }
    let line = code.get(j.saturating_sub(1)).map_or(0, |t| t.line);
    let alias = last.clone();
    push_alias(out, &alias, prefix, line);
}

fn push_alias(out: &mut FileSymbols, alias: &str, segments: &[String], line: u32) {
    if segments.is_empty() {
        return;
    }
    out.aliases.push(UseAlias {
        alias: alias.to_owned(),
        target: segments.join("::"),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn symbols(src: &str) -> FileSymbols {
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
        parse(&code)
    }

    #[test]
    fn use_alias_and_plain_imports() {
        let s = symbols(
            "use std::time::Instant as Clock;\n\
             use std::collections::BTreeMap;\n\
             use std::sync::{Arc, Mutex as Mx};\n",
        );
        let find = |a: &str| {
            s.aliases
                .iter()
                .find(|e| e.alias == a)
                .map(|e| e.target.clone())
        };
        assert_eq!(find("Clock"), Some("std::time::Instant".to_owned()));
        assert_eq!(
            find("BTreeMap"),
            Some("std::collections::BTreeMap".to_owned())
        );
        assert_eq!(find("Arc"), Some("std::sync::Arc".to_owned()));
        assert_eq!(find("Mx"), Some("std::sync::Mutex".to_owned()));
    }

    #[test]
    fn alias_lookup_skips_its_own_declaration_line() {
        let s = symbols("use std::time::Instant as Clock;\nfn f() { Clock::now(); }\n");
        assert!(s.alias_target("Clock", 1).is_none());
        assert_eq!(s.alias_target("Clock", 2), Some("std::time::Instant"));
    }

    #[test]
    fn fns_record_container_and_visibility() {
        let s = symbols(
            "pub fn free() {}\n\
             struct S;\n\
             impl S { pub(crate) fn method(&self) {} fn private(&self) {} }\n\
             pub trait T { fn decl(&self); fn with_default(&self) {} }\n",
        );
        let f = |n: &str| s.fns.iter().find(|f| f.name == n).expect(n);
        assert!(f("free").is_pub && f("free").container.is_none());
        assert_eq!(f("method").qual, "S::method");
        assert!(f("method").is_pub);
        assert!(!f("private").is_pub);
        assert_eq!(f("decl").container.as_deref(), Some("T"));
        assert!(f("decl").body.is_none());
        assert!(f("with_default").body.is_some());
    }

    #[test]
    fn trait_methods_are_collected() {
        let s = symbols(
            "pub trait PersistIo { fn write_tmp(&self); fn sync_dir(&self); }\n\
             pub trait ShardIo: Send { fn exchange(&self) -> bool; }\n",
        );
        let t = |n: &str| s.traits.iter().find(|t| t.name == n).expect(n);
        assert_eq!(t("PersistIo").methods, vec!["write_tmp", "sync_dir"]);
        assert_eq!(t("ShardIo").methods, vec!["exchange"]);
    }

    #[test]
    fn nested_items_scope_correctly() {
        let s = symbols(
            "mod outer {\n\
               pub fn api() {\n\
                 fn inner() {}\n\
                 let f = |x: u32| { helper(x) };\n\
                 f(1);\n\
               }\n\
               struct T;\n\
               impl T { fn m(&self) { impl T { } } }\n\
             }\n",
        );
        let api = s.fns.iter().find(|f| f.name == "api").expect("api");
        assert_eq!(api.qual, "outer::api");
        let inner = s.fns.iter().find(|f| f.name == "inner").expect("inner");
        // The nested fn's body nests inside the outer body.
        let (as_, ae) = api.body.expect("api body");
        let (is_, ie) = inner.body.expect("inner body");
        assert!(as_ < is_ && ie <= ae);
        // A token inside the closure body attributes to `api`, not to a
        // phantom closure item.
        let m = s.fns.iter().find(|f| f.name == "m").expect("m");
        assert_eq!(m.container.as_deref(), Some("T"));
    }

    #[test]
    fn impl_in_return_position_is_not_an_item() {
        let s = symbols("fn f() -> impl Iterator<Item = u32> { (0..3).map(|x| x) }\n");
        assert_eq!(s.fns.len(), 1);
        assert!(s.fns[0].container.is_none());
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let s = symbols(
            "struct Wrapper;\n\
             impl std::fmt::Display for Wrapper {\n\
               fn fmt(&self) -> bool { true }\n\
             }\n",
        );
        let f = s.fns.iter().find(|f| f.name == "fmt").expect("fmt");
        assert_eq!(f.container.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost_body() {
        let src = "fn outer() { fn inner() { mark(); } inner(); }\n";
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
        let s = parse(&code);
        let mark_idx = code
            .iter()
            .position(|t| t.is_ident("mark"))
            .expect("mark token");
        let owner = s.enclosing_fn(mark_idx).expect("owner");
        assert_eq!(s.fns[owner].name, "inner");
    }
}
