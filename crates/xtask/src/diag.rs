//! Rustc-style diagnostics.

use std::fmt;

/// How a reported rule violation is treated.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Reported and counted toward a non-zero exit.
    Deny,
    /// Reported but does not fail the run.
    Warn,
    /// Suppressed entirely.
    Allow,
}

/// One finding, pointing at an exact source location.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (`D1`, `P1`, ...).
    pub rule: &'static str,
    /// Severity after applying the run's configuration.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Length of the underlined span in characters.
    pub len: usize,
    /// One-line statement of the violation.
    pub message: String,
    /// How to fix it (or how to silence it with a justification).
    pub help: String,
    /// Extra context lines (`= note:`), e.g. the call chain an
    /// interprocedural pass followed to reach the site.
    pub notes: Vec<String>,
    /// The offending source line, for rendering.
    pub source_line: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
            Severity::Allow => "allowed",
        };
        writeln!(f, "{level}[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        let gutter = format!("{}", self.line);
        let pad = " ".repeat(gutter.len());
        writeln!(f, "{pad} |")?;
        writeln!(f, "{gutter} | {}", self.source_line)?;
        let underline_pad = " ".repeat(self.col.saturating_sub(1) as usize);
        let carets = "^".repeat(self.len.max(1));
        writeln!(f, "{pad} | {underline_pad}{carets}")?;
        for note in &self.notes {
            writeln!(f, "{pad} = note: {note}")?;
        }
        writeln!(f, "{pad} = help: {}", self.help)
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Renders the diagnostic as one JSON object (stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let level = match self.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
            Severity::Allow => "allowed",
        };
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\
             \"len\":{},\"message\":\"{}\",\"help\":\"{}\",\"notes\":[{}]}}",
            json_escape(self.rule),
            level,
            json_escape(&self.path),
            self.line,
            self.col,
            self.len,
            json_escape(&self.message),
            json_escape(&self.help),
            notes.join(",")
        )
    }
}

/// The outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All diagnostics, in (path, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of deny-level diagnostics.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level diagnostics.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether the run should exit non-zero.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.errors() > 0
    }

    /// Renders the whole report as a stable machine-readable JSON
    /// document (`schema_version` 1). Diagnostics appear in the same
    /// deterministic `(path, line, col)` order as the human rendering,
    /// so two runs over the same tree emit byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"schema_version\":1,\"files_scanned\":{},\"errors\":{},\"warnings\":{},\
             \"diagnostics\":[{}]}}",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            diags.join(",")
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} file(s) scanned: {} error(s), {} warning(s)",
            self.files_scanned,
            self.errors(),
            self.warnings()
        )
    }
}
