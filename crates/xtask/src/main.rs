//! The `xtask` binary: `cargo xtask lint` / `cargo xtask deny`.

use std::process::ExitCode;

use chromata_xtask::{deny, lint_workspace, workspace, Config, Severity};

const USAGE: &str = "\
usage: cargo xtask <command> [options]

commands:
  lint   run the workspace static-analysis rules
         -D <rule>|all   deny a rule (non-zero exit on violation)
         -W <rule>|all   downgrade a rule to a warning
         -A <rule>       suppress a rule entirely
         --format <human|json>  output format (default human)
         --quiet         print only the summary line
  graph  dump the workspace call graph (sorted `caller -> callee` lines)
         --dot           emit Graphviz DOT instead
  deny   run the supply-chain checks (licenses, duplicate versions,
         offline advisory snapshot) against deny.toml and Cargo.lock
  help   show this message

rules: D1 hash-order, D2 clock-env, D3 fs-confine, D4 net-confine,
       D5 digest-taint, P1 panic, P2 index (advisory), P3 panic-reach,
       L1 lock-unwrap, L2 lock-order, A1 bad-allow, U1 unused-allow
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("graph") => run_graph(&args[1..]),
        Some("deny") => run_deny(),
        Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut config = Config::default();
    let mut quiet = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, severity) = match arg.as_str() {
            "-D" | "--deny" => ("-D", Severity::Deny),
            "-W" | "--warn" => ("-W", Severity::Warn),
            "-A" | "--allow" => ("-A", Severity::Allow),
            "--quiet" | "-q" => {
                quiet = true;
                continue;
            }
            "--format" => {
                match it.next().map(String::as_str) {
                    Some("json") => json = true,
                    Some("human") => json = false,
                    other => {
                        eprintln!(
                            "--format needs `human` or `json`, got {:?}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::FAILURE;
                    }
                }
                continue;
            }
            other => {
                eprintln!("unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        let Some(rule) = it.next() else {
            eprintln!("{flag} needs a rule name (or `all`)");
            return ExitCode::FAILURE;
        };
        if rule == "all" {
            // `all` covers the primary rules; advisory rules (P2, U1)
            // must be named explicitly to change level.
            for r in chromata_xtask::rules::PRIMARY_RULES {
                config.overrides.push(((*r).to_owned(), severity));
            }
        } else {
            config.overrides.push((rule.clone(), severity));
        }
    }
    let Some(root) = current_root() else {
        return ExitCode::FAILURE;
    };
    match lint_workspace(&root, &config) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else if quiet {
                println!(
                    "{} file(s) scanned: {} error(s), {} warning(s)",
                    report.files_scanned,
                    report.errors(),
                    report.warnings()
                );
            } else {
                println!("{report}");
            }
            if report.failed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_graph(args: &[String]) -> ExitCode {
    let mut dot = false;
    for arg in args {
        match arg.as_str() {
            "--dot" => dot = true,
            other => {
                eprintln!("unknown graph option `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(root) = current_root() else {
        return ExitCode::FAILURE;
    };
    match chromata_xtask::graph_workspace(&root, dot) {
        Ok(dump) => {
            print!("{dump}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask graph: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_deny() -> ExitCode {
    let Some(root) = current_root() else {
        return ExitCode::FAILURE;
    };
    match deny::run(&root) {
        Ok(report) => {
            println!("{report}");
            if report.failed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("xtask deny: {e}");
            ExitCode::FAILURE
        }
    }
}

fn current_root() -> Option<std::path::PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let root = workspace::find_root(&cwd);
    if root.is_none() {
        eprintln!("xtask: no workspace root found above {}", cwd.display());
    }
    root
}
