//! `chromata-xtask`: workspace-aware static analysis for the chromata
//! decision pipeline.
//!
//! The pipeline's contract is that verdicts are *reproducible*: the same
//! task yields the same [`Verdict`], the same subdivision and
//! byte-identical traces in every feature configuration. That property
//! is defended dynamically by goldens (`tests/feature_parity.rs`) and
//! statically by this tool: `cargo xtask lint` parses every workspace
//! source file (with a purpose-built lexer — the workspace builds
//! offline, so `syn` is not available) and enforces determinism,
//! panic-freedom and concurrency-hygiene rules with rustc-style
//! diagnostics; `cargo xtask deny` covers the supply chain (licenses,
//! duplicate dependencies, an offline advisory snapshot).
//!
//! Two analysis layers run over the same token stream:
//!
//! 1. the **local** token-pattern rules (D1–D4, P1/P2, L1, A1/U1),
//!    one file at a time;
//! 2. the **interprocedural** passes (P3 panic-reachability, D5
//!    determinism taint, L2 lock-order), which parse every file into a
//!    symbol table (`symbols.rs`), link a workspace call graph
//!    (`callgraph.rs`) and chase reachability through it (`passes.rs`).
//!
//! `cargo xtask graph [--dot]` dumps the call graph; `--format json`
//! emits the diagnostics as a stable machine-readable document.
//!
//! The same engine backs the `chromata lint` CLI subcommand. See
//! `DESIGN.md` §9 for the rule table and the escape-hatch policy.

pub mod allow;
pub mod callgraph;
pub mod deny;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod rules;
pub mod symbols;
pub mod toml_lite;
pub mod workspace;

use std::path::Path;

use lexer::Tok;

pub use diag::{Diagnostic, Report, Severity};
pub use rules::{role_for, Config, Role};

/// One source file handed to the engine.
pub struct SourceFile {
    /// Workspace-relative path (used for role classification and in
    /// diagnostics).
    pub rel: String,
    /// Full source text.
    pub src: String,
}

/// Lints a set of source files with both analysis layers: the local
/// token rules per file, then the interprocedural passes over the call
/// graph linked across *exactly these files*. Files whose path has no
/// lint role (vendored code, fixtures, the xtask tool itself) are
/// skipped.
#[must_use]
pub fn lint_sources(files: &[SourceFile], config: &Config) -> Report {
    // Per-file preparation. Parallel vectors keep the borrows simple:
    // `codes` borrows `tokens_v` immutably while `allows_v` stays
    // independently mutable for the allow-usage bookkeeping.
    let mut rels: Vec<&str> = Vec::new();
    let mut srcs: Vec<&str> = Vec::new();
    let mut roles: Vec<Role> = Vec::new();
    let mut tokens_v: Vec<Vec<Tok>> = Vec::new();
    for f in files {
        let Some(role) = rules::role_for(&f.rel) else {
            continue;
        };
        rels.push(&f.rel);
        srcs.push(&f.src);
        roles.push(role);
        tokens_v.push(lexer::lex(&f.src));
    }
    let test_regions_v: Vec<Vec<(u32, u32)>> =
        tokens_v.iter().map(|t| lexer::test_regions(t)).collect();
    let mut allows_v = Vec::new();
    let mut allow_errors_v = Vec::new();
    for t in &tokens_v {
        let (a, e) = allow::collect(t);
        allows_v.push(a);
        allow_errors_v.push(e);
    }
    let codes: Vec<Vec<&Tok>> = tokens_v
        .iter()
        .map(|t| t.iter().filter(|x| !x.is_comment()).collect())
        .collect();
    let symbols_v: Vec<symbols::FileSymbols> = codes.iter().map(|c| symbols::parse(c)).collect();

    // Local rules.
    let mut findings_v: Vec<Vec<rules::Finding>> = Vec::new();
    for i in 0..rels.len() {
        let mut findings = rules::a1_findings(&allow_errors_v[i]);
        rules::local_rules(&codes[i], &symbols_v[i], roles[i], &mut findings);
        findings_v.push(findings);
    }

    // Interprocedural passes over the linked call graph.
    let views: Vec<callgraph::FileView<'_>> = (0..rels.len())
        .map(|i| callgraph::FileView {
            rel: rels[i],
            code: &codes[i],
            symbols: &symbols_v[i],
            test_regions: &test_regions_v[i],
        })
        .collect();
    let io = callgraph::io_catalog(&views);
    let graph = callgraph::build(&views, &io);
    drop(views);
    let infos: Vec<passes::FileInfo> = (0..rels.len())
        .map(|i| passes::FileInfo {
            rel: rels[i].to_owned(),
            role: roles[i],
        })
        .collect();
    for (file_idx, finding) in passes::run(&graph, &infos) {
        findings_v[file_idx].push(finding);
    }

    // Filtering and rendering, per file (U1 must see every pass's
    // allow-usage marks, so this runs last).
    let mut report = Report {
        files_scanned: rels.len(),
        ..Report::default()
    };
    for (i, findings) in findings_v.into_iter().enumerate() {
        report.diagnostics.extend(rules::finalize(
            rels[i],
            srcs[i],
            findings,
            &test_regions_v[i],
            &mut allows_v[i],
            config,
        ));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
}

/// Reads the files named by `rels` under `root` into [`SourceFile`]s,
/// keeping only those with a lint role.
fn read_sources(root: &Path, rels: &[String]) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for rel in rels {
        if rules::role_for(rel).is_none() {
            continue;
        }
        files.push(SourceFile {
            rel: rel.clone(),
            src: std::fs::read_to_string(root.join(rel))?,
        });
    }
    Ok(files)
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns an I/O error if the source tree cannot be walked or read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let rels = workspace::lintable_files(root)?;
    Ok(lint_sources(&read_sources(root, &rels)?, config))
}

/// Lints an explicit list of workspace-relative paths (used by the CLI
/// to lint a subtree). The interprocedural passes see only the listed
/// files — chains that leave the subtree are not followed.
///
/// # Errors
///
/// Returns an I/O error if a file cannot be read.
pub fn lint_paths(root: &Path, paths: &[String], config: &Config) -> std::io::Result<Report> {
    Ok(lint_sources(&read_sources(root, paths)?, config))
}

/// Builds the workspace call graph and renders it for `cargo xtask
/// graph` (sorted `caller -> callee` lines, or Graphviz DOT).
///
/// # Errors
///
/// Returns an I/O error if the source tree cannot be walked or read.
pub fn graph_workspace(root: &Path, dot: bool) -> std::io::Result<String> {
    let rels = workspace::lintable_files(root)?;
    let files = read_sources(root, &rels)?;
    let mut tokens_v: Vec<Vec<Tok>> = Vec::new();
    for f in &files {
        tokens_v.push(lexer::lex(&f.src));
    }
    let test_regions_v: Vec<Vec<(u32, u32)>> =
        tokens_v.iter().map(|t| lexer::test_regions(t)).collect();
    let codes: Vec<Vec<&Tok>> = tokens_v
        .iter()
        .map(|t| t.iter().filter(|x| !x.is_comment()).collect())
        .collect();
    let symbols_v: Vec<symbols::FileSymbols> = codes.iter().map(|c| symbols::parse(c)).collect();
    let views: Vec<callgraph::FileView<'_>> = (0..files.len())
        .map(|i| callgraph::FileView {
            rel: &files[i].rel,
            code: &codes[i],
            symbols: &symbols_v[i],
            test_regions: &test_regions_v[i],
        })
        .collect();
    let io = callgraph::io_catalog(&views);
    let graph = callgraph::build(&views, &io);
    let rel_names: Vec<String> = files.iter().map(|f| f.rel.clone()).collect();
    Ok(callgraph::dump(&graph, &rel_names, dot))
}
