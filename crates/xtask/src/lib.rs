//! `chromata-xtask`: workspace-aware static analysis for the chromata
//! decision pipeline.
//!
//! The pipeline's contract is that verdicts are *reproducible*: the same
//! task yields the same [`Verdict`], the same subdivision and
//! byte-identical traces in every feature configuration. That property
//! is defended dynamically by goldens (`tests/feature_parity.rs`) and
//! statically by this tool: `cargo xtask lint` parses every workspace
//! source file (with a purpose-built lexer — the workspace builds
//! offline, so `syn` is not available) and enforces determinism,
//! panic-freedom and concurrency-hygiene rules with rustc-style
//! diagnostics; `cargo xtask deny` covers the supply chain (licenses,
//! duplicate dependencies, an offline advisory snapshot).
//!
//! The same engine backs the `chromata lint` CLI subcommand. See
//! `DESIGN.md` §9 for the rule table and the escape-hatch policy.

pub mod allow;
pub mod deny;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod toml_lite;
pub mod workspace;

use std::path::Path;

pub use diag::{Diagnostic, Report, Severity};
pub use rules::{role_for, Config, Role};

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns an I/O error if the source tree cannot be walked or read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in workspace::lintable_files(root)? {
        let Some(role) = rules::role_for(&rel) else {
            continue;
        };
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(rules::lint_file(root, &rel, role, config)?);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

/// Lints an explicit list of workspace-relative paths (used by the CLI
/// to lint a subtree).
///
/// # Errors
///
/// Returns an I/O error if a file cannot be read.
pub fn lint_paths(root: &Path, paths: &[String], config: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in paths {
        let Some(role) = rules::role_for(rel) else {
            continue;
        };
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(rules::lint_file(root, rel, role, config)?);
    }
    Ok(report)
}
