//! A minimal, dependency-free Rust lexer.
//!
//! The workspace builds fully offline against vendored crates, so `syn`
//! is not available; the lint rules instead run over this token stream.
//! The lexer is *sound for linting*: it never confuses code with the
//! contents of comments, string/char literals or raw strings, and it
//! reports exact 1-based line/column spans. It does not attempt full
//! parsing — the rules are token-pattern based and deliberately
//! over-approximate (a violation can always be silenced with a justified
//! `// chromata-lint: allow(..)` annotation, never the other way round).

/// What a token is. Literal contents are dropped: no rule may ever match
/// inside a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`.`, `!`, `[`, ...).
    Punct(char),
    /// String / char / byte / numeric literal (contents withheld).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// `// ...` comment, including doc comments; text preserved for the
    /// allow-annotation parser.
    LineComment,
    /// `/* ... */` comment (possibly nested, possibly multi-line).
    BlockComment,
}

/// One lexed token with its source span.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For literals this is empty; for comments it is the
    /// full comment including the delimiters.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Tok {
    /// Whether the token is a comment of either kind.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether the token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens (comments included, literal contents dropped).
///
/// The lexer never fails: unterminated literals or comments simply run to
/// the end of the file, which is the most conservative span for linting.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.push(Tok {
                kind: TokKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.push(Tok {
                kind: TokKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            skip_string(&mut cur);
            out.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
            continue;
        }
        if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur, &mut out, line, col);
            continue;
        }
        if c.is_ascii_digit() {
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Consumes a `"..."` string body (opening quote at the cursor).
fn skip_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string `r##"..."##` whose `r` and hashes are already
/// consumed; `hashes` is the number of `#` before the opening quote.
fn skip_raw_string(cur: &mut Cursor, hashes: usize) {
    cur.bump(); // opening quote
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// `'` can open a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32, col: u32) {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume to the closing quote.
            cur.bump();
            cur.bump(); // the escaped character (or `u`/`x` introducer)
            while let Some(ch) = cur.bump() {
                if ch == '\'' {
                    break;
                }
            }
            out.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                col,
            });
        }
        Some(c) if is_ident_start(c) => {
            // `'a` (lifetime) vs `'a'` (char literal): scan the ident and
            // look for a closing quote.
            let mut ident = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek(0) == Some('\'') && ident.chars().count() == 1 {
                cur.bump();
                out.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
            } else {
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: ident,
                    line,
                    col,
                });
            }
        }
        Some(_) => {
            // `'x'` with any other single char.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            out.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                col,
            });
        }
        None => {}
    }
}

/// An identifier, or one of the literal prefixes `r"`, `b"`, `br"`,
/// `r#"`, `r#ident`.
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Vec<Tok>, line: u32, col: u32) {
    let mut ident = String::new();
    while let Some(ch) = cur.peek(0) {
        if is_ident_continue(ch) {
            ident.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    let next = cur.peek(0);
    let rawish = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
    if rawish && next == Some('"') {
        if ident.contains('r') {
            skip_raw_string(cur, 0);
        } else {
            skip_string(cur);
        }
        out.push(Tok {
            kind: TokKind::Literal,
            text: String::new(),
            line,
            col,
        });
        return;
    }
    if rawish && next == Some('#') {
        // Count hashes; `r#"` starts a raw string, `r#ident` is a raw
        // identifier.
        let mut hashes = 0usize;
        while cur.peek(hashes) == Some('#') {
            hashes += 1;
        }
        match cur.peek(hashes) {
            Some('"') => {
                for _ in 0..hashes {
                    cur.bump();
                }
                skip_raw_string(cur, hashes);
                out.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                    col,
                });
                return;
            }
            Some(c) if hashes == 1 && is_ident_start(c) => {
                cur.bump(); // the `#`
                let mut raw = String::new();
                while let Some(ch) = cur.peek(0) {
                    if is_ident_continue(ch) {
                        raw.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: raw,
                    line,
                    col,
                });
                return;
            }
            _ => {}
        }
    }
    out.push(Tok {
        kind: TokKind::Ident,
        text: ident,
        line,
        col,
    });
}

/// Line ranges (1-based, inclusive) of items gated to test builds:
/// anything carrying `#[test]` or a `#[cfg(...)]` attribute whose
/// arguments mention `test` (covering `#[cfg(test)]` and
/// `#[cfg(any(test, ...))]`). `#[cfg_attr(test, ...)]` does *not* gate
/// the item itself and is not skipped.
#[must_use]
pub fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        // Scan this attribute (and any directly following ones) for a
        // test gate, then remember where the attribute block ends.
        let mut gated = false;
        let mut j = i;
        while j < toks.len()
            && toks[j].is_punct('#')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0i32;
            let mut idents: Vec<&str> = Vec::new();
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident => idents.push(&toks[k].text),
                    _ => {}
                }
                k += 1;
            }
            let is_gate = match idents.first() {
                Some(&"test") => true,
                Some(&"cfg") => idents.contains(&"test"),
                _ => false,
            };
            gated = gated || is_gate;
            j = k + 1;
        }
        if !gated {
            i = j;
            continue;
        }
        // Skip the gated item: it ends at a `;` at bracket depth zero or
        // at the `}` matching the first brace opened at depth zero.
        let mut depth = 0i32;
        let mut entered_brace = false;
        let mut end_line = toks.last().map_or(attr_start_line, |t| t.line);
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('{') => {
                    depth += 1;
                    entered_brace = true;
                }
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if entered_brace && depth == 0 {
                        end_line = toks[k].line;
                        k += 1;
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => {
                    end_line = toks[k].line;
                    k += 1;
                    break;
                }
                _ => {}
            }
            end_line = toks[k].line;
            k += 1;
        }
        regions.push((attr_start_line, end_line));
        i = k;
    }
    regions
}

/// Whether `line` falls inside any of `regions`.
#[must_use]
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"let x = "HashMap.unwrap()"; // HashMap here too
            /* unwrap() in a block comment */ let y = r#"panic!"#;"##;
        assert!(!idents(src).iter().any(|s| s == "HashMap" || s == "unwrap"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = idents("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(toks.iter().any(|s| s == "unwrap"));
    }

    #[test]
    fn char_literals_lex_as_literals() {
        let toks = lex("let c = 'x'; let n = '\\n'; let l: &'static str = \"s\";");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            3
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ fn f() {}");
        assert!(toks[0].kind == TokKind::BlockComment);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn spans_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(!in_regions(&regions, 1));
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn test_attribute_gates_one_fn() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn real() {}\n";
        let regions = test_regions(&lex(src));
        assert_eq!(regions, vec![(1, 2)]);
    }

    #[test]
    fn cfg_attr_test_is_not_a_gate() {
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S { x: u32 }\n";
        assert!(test_regions(&lex(src)).is_empty());
    }

    #[test]
    fn cfg_any_test_is_a_gate() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nfn helper() {}\n";
        assert_eq!(test_regions(&lex(src)), vec![(1, 2)]);
    }
}
