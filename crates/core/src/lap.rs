//! Local articulation points (paper, §4).

use std::collections::BTreeSet;

use chromata_task::Task;
use chromata_topology::{Simplex, Vertex};

/// A local articulation point: a vertex `y ∈ Δ(σ)` whose link in `Δ(σ)`
/// has at least two connected components (paper, §4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lap {
    /// The input facet `σ` with respect to which `y` is articulated.
    pub facet: Simplex,
    /// The articulation vertex `y`.
    pub vertex: Vertex,
    /// The connected components `C₁, …, C_r` of `lk_{Δ(σ)}(y)`, ordered by
    /// minimum vertex.
    pub components: Vec<BTreeSet<Vertex>>,
}

impl Lap {
    /// The index of the component containing `z`, if any.
    #[must_use]
    pub fn component_of(&self, z: &Vertex) -> Option<usize> {
        self.components.iter().position(|c| c.contains(z))
    }

    /// Number of link components (`r ≥ 2`).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

/// All local articulation points of `task`, scanning input facets in
/// sorted order and, within each facet, image vertices in sorted order.
///
/// # Examples
///
/// ```
/// use chromata::laps;
/// use chromata_task::library::hourglass;
///
/// let found = laps(&hourglass());
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].component_count(), 2);
/// ```
#[must_use]
pub fn laps(task: &Task) -> Vec<Lap> {
    let mut out = Vec::new();
    for sigma in task.input().facets() {
        let img = task.delta().image_of(sigma);
        for y in img.disconnected_link_vertices() {
            let components = img.link(&y).connected_components();
            out.push(Lap {
                facet: sigma.clone(),
                vertex: y,
                components,
            });
        }
    }
    out
}

/// The first local articulation point with respect to `sigma`, if any.
#[must_use]
pub fn first_lap_of_facet(task: &Task, sigma: &Simplex) -> Option<Lap> {
    let img = task.delta().image_of(sigma);
    let y = img.disconnected_link_vertices().into_iter().next()?;
    let components = img.link(&y).connected_components();
    Some(Lap {
        facet: sigma.clone(),
        vertex: y,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{
        hourglass, identity_task, majority_consensus, pinwheel, two_set_agreement,
    };

    #[test]
    fn hourglass_has_one_lap() {
        let found = laps(&hourglass());
        assert_eq!(found.len(), 1);
        let lap = &found[0];
        assert_eq!(lap.vertex, Vertex::of(0, 1));
        assert_eq!(lap.component_count(), 2);
        // Component lookup is consistent with membership.
        for (i, comp) in lap.components.iter().enumerate() {
            for z in comp {
                assert_eq!(lap.component_of(z), Some(i));
            }
        }
        assert_eq!(lap.component_of(&Vertex::of(0, 1)), None);
    }

    #[test]
    fn pinwheel_has_nine_laps() {
        assert_eq!(laps(&pinwheel()).len(), 9);
    }

    #[test]
    fn link_connected_tasks_have_none() {
        assert!(laps(&identity_task(3)).is_empty());
        assert!(laps(&two_set_agreement()).is_empty());
    }

    #[test]
    fn majority_consensus_has_laps() {
        // The mixed-input facets exhibit articulation points.
        assert!(!laps(&majority_consensus()).is_empty());
    }

    #[test]
    fn first_lap_agrees_with_scan() {
        let t = hourglass();
        let sigma = t.input().facets().next().unwrap().clone();
        let lap = first_lap_of_facet(&t, &sigma).expect("hourglass has a LAP");
        assert_eq!(lap, laps(&t)[0]);
        let ok = identity_task(3);
        let s2 = ok.input().facets().next().unwrap().clone();
        assert!(first_lap_of_facet(&ok, &s2).is_none());
    }
}
