//! Complete decidability for two-process tasks (Proposition 5.4).
//!
//! For two processes a task is solvable iff there is a continuous map
//! `|I| → |O|` carried by `Δ` — no splitting, no contractibility: input
//! complexes are 1-dimensional, so the continuous tier (vertex choices +
//! edge connectivity) is a complete decision procedure.
//!
//! chromata-lint: allow(P3): indexing follows the two-color restriction invariants (pairs drawn from the task's own color set); every site is advisory-flagged by P2 for per-site review

use chromata_task::Task;

use crate::continuous::{continuous_map_exists, ContinuousOutcome};

/// Decides a two-process task completely (Proposition 5.4).
///
/// # Panics
///
/// Panics if the task does not have exactly two processes.
///
/// # Examples
///
/// ```
/// use chromata::decide_two_process;
/// use chromata_task::library::{identity_task, two_process_consensus};
///
/// assert!(decide_two_process(&identity_task(2)));
/// assert!(!decide_two_process(&two_process_consensus()));
/// ```
#[must_use]
pub fn decide_two_process(task: &Task) -> bool {
    assert_eq!(
        task.process_count(),
        2,
        "decide_two_process expects a two-process task"
    );
    match continuous_map_exists(task) {
        ContinuousOutcome::Exists { .. } => true,
        ContinuousOutcome::Impossible { .. } => false,
        ContinuousOutcome::Undetermined { reason } => {
            // chromata-lint: allow(P1): dimension <= 1 inputs carry no triangle conditions by construction
            unreachable!("1-dimensional inputs have no triangle conditions: {reason}")
        }
    }
}

/// Synthesizes an explicit solvability witness for a solvable two-process
/// task — the *constructive* content of Proposition 5.4, with no search:
///
/// 1. the continuous tier picks solo outputs `g(x)` and, for each input
///    edge, a walk between them in `Δ(edge)`;
/// 2. the subdivided input edge `Ch^r(e)` is a path of `3^r` segments
///    whose vertex colors alternate, exactly like the walk's; choosing
///    the least `r` with `3^r ≥ walk length` (both odd, so parities
///    agree), the path is folded onto the walk — forward to the end,
///    then zig-zagging in place;
/// 3. the resulting vertex map is simplicial, chromatic and carried by
///    `Δ` by construction, and is re-validated before being returned.
///
/// Returns `None` if the task is unsolvable.
///
/// # Panics
///
/// Panics if the task does not have exactly two processes.
///
/// # Examples
///
/// ```
/// use chromata::synthesize_two_process;
/// use chromata_task::library::{identity_task, two_process_consensus};
///
/// assert!(synthesize_two_process(&identity_task(2)).is_some());
/// assert!(synthesize_two_process(&two_process_consensus()).is_none());
/// ```
#[must_use]
pub fn synthesize_two_process(task: &Task) -> Option<(usize, chromata_topology::SimplicialMap)> {
    use chromata_subdivision::iterated_chromatic_subdivision;
    use chromata_topology::{Graph, Simplex, SimplicialMap, Vertex};

    assert_eq!(
        task.process_count(),
        2,
        "synthesize_two_process expects a two-process task"
    );
    let ContinuousOutcome::Exists { assignment, .. } = continuous_map_exists(task) else {
        return None;
    };

    // Walks per input edge and the required subdivision depth.
    let edges: Vec<Simplex> = task.input().simplices_of_dim(1).cloned().collect();
    let mut walks: Vec<Vec<Vertex>> = Vec::with_capacity(edges.len());
    let mut max_len = 1usize;
    for e in &edges {
        let vs = e.vertices();
        let g = Graph::from_complex(task.delta().image_of(e));
        let walk = g
            .shortest_path(&assignment[&vs[0]], &assignment[&vs[1]])
            .expect("the continuous tier verified connectivity"); // chromata-lint: allow(P1): the continuous tier verified connectivity before this tier runs
        max_len = max_len.max(walk.len() - 1);
        walks.push(walk);
    }
    let mut rounds = 0usize;
    let mut segments = 1usize;
    while segments < max_len {
        rounds += 1;
        segments *= 3;
    }

    let sub = iterated_chromatic_subdivision(task.input(), rounds);
    let mut map = SimplicialMap::new();
    // Solo corners first (also covers isolated input vertices).
    for x in task.input().vertices() {
        let part = sub.carrier.image_of(&Simplex::vertex(x.clone()));
        for corner in part.vertices() {
            map.insert(corner.clone(), assignment[x].clone());
        }
    }
    // Fold each subdivided edge path onto its walk.
    for (e, walk) in edges.iter().zip(&walks) {
        let vs = e.vertices();
        let part = sub.carrier.image_of(e);
        let graph = Graph::from_complex(part);
        // The subdivided edge is a path; orient it from x0's corner.
        let start = sub
            .carrier
            .image_of(&Simplex::vertex(vs[0].clone()))
            .vertices()
            .next()
            .expect("corner exists") // chromata-lint: allow(P1): a nontrivial path complex has exactly two degree-1 corners
            .clone();
        let end = sub
            .carrier
            .image_of(&Simplex::vertex(vs[1].clone()))
            .vertices()
            .next()
            .expect("corner exists") // chromata-lint: allow(P1): a nontrivial path complex has exactly two degree-1 corners
            .clone();
        let path = graph
            .shortest_path(&start, &end)
            .expect("Ch^r of an edge is a connected path"); // chromata-lint: allow(P1): the continuous tier verified connectivity before this tier runs
        let m = path.len() - 1; // 3^rounds segments
        let l = walk.len() - 1;
        debug_assert!(m >= l && (m - l).is_multiple_of(2), "parity argument");
        for (i, p) in path.iter().enumerate() {
            let phi = if i <= l {
                i
            } else {
                // Zig-zag tail: alternate l, l-1, l, …
                l - ((i - l) % 2)
            };
            map.insert(p.clone(), walk[phi].clone());
        }
    }
    debug_assert!(crate::act::validate_witness(&sub, task, &map));
    Some((rounds, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::solve_act;
    use chromata_task::library::{constant_task, identity_task, two_process_consensus};
    use chromata_task::Task;
    use chromata_topology::{Complex, Simplex, Value, Vertex};

    #[test]
    fn basic_verdicts() {
        assert!(decide_two_process(&identity_task(2)));
        assert!(decide_two_process(&constant_task(2)));
        assert!(!decide_two_process(&two_process_consensus()));
    }

    /// A solvable "path agreement" task: both processes decide vertices of
    /// a path, adjacent or equal, endpoints pinned by solo executions.
    fn path_agreement(len: i64) -> Task {
        let e = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]);
        let input = Complex::from_facets([e]);
        Task::from_delta_fn("path-agreement", input, move |tau| {
            let colors: Vec<u8> = tau.iter().map(|u| u.color().index()).collect();
            match colors.as_slice() {
                [0] => vec![Simplex::vertex(Vertex::of(0, 0))],
                [1] => vec![Simplex::vertex(Vertex::of(1, len))],
                [0, 1] => {
                    let mut out = Vec::new();
                    for k in 0..len {
                        out.push(Simplex::from_iter([Vertex::of(0, k), Vertex::of(1, k + 1)]));
                        out.push(Simplex::from_iter([Vertex::of(0, k + 1), Vertex::of(1, k)]));
                    }
                    for k in 0..=len {
                        out.push(Simplex::from_iter([Vertex::of(0, k), Vertex::of(1, k)]));
                    }
                    out
                }
                other => unreachable!("{other:?}"),
            }
        })
        .expect("valid")
    }

    #[test]
    fn path_agreement_solvable_and_act_agrees() {
        let t = path_agreement(3);
        assert!(decide_two_process(&t));
        // Cross-validate with the ACT baseline: a few subdivision rounds
        // suffice for a path of length 3.
        assert!(solve_act(&t, 3).is_solvable());
    }

    #[test]
    fn disconnected_path_unsolvable() {
        // Solo outputs pinned at the two ends of a path with a missing
        // middle edge: no continuous carried map.
        let e = Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 0)]);
        let input = Complex::from_facets([e]);
        let t = Task::from_delta_fn("broken-path", input, |tau| {
            let colors: Vec<u8> = tau.iter().map(|u| u.color().index()).collect();
            match colors.as_slice() {
                [0] => vec![Simplex::vertex(Vertex::of(0, 0))],
                [1] => vec![Simplex::vertex(Vertex::of(1, 9))],
                [0, 1] => vec![
                    Simplex::from_iter([Vertex::of(0, 0), Vertex::of(1, 1)]),
                    Simplex::from_iter([Vertex::of(0, 8), Vertex::of(1, 9)]),
                ],
                other => unreachable!("{other:?}"),
            }
        })
        .expect("valid");
        assert!(!decide_two_process(&t));
        assert!(!solve_act(&t, 2).is_solvable());
        let _ = Value::Int(0);
    }
}
