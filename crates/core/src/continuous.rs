//! Existence of a continuous map `|I| → |O'|` carried by `Δ'` (paper, §5).
//!
//! For a link-connected (split) three-process task the paper's Theorem 5.1
//! reduces solvability to the existence of a continuous carried map. For
//! 2-dimensional complexes that existence decomposes as:
//!
//! 1. **vertices** — choose `g(x) ∈ Δ'(x)` for every input vertex (the
//!    image of a point is a point of the 0-dimensional `|Δ'(x)|`);
//! 2. **edges** — for each input edge `e = {x, x'}`, `g(x)` and `g(x')`
//!    must lie in one connected component of `Δ'(e)` (the image of `|e|`
//!    is a path);
//! 3. **triangles** — for each input triangle `σ`, the boundary loop
//!    (concatenated edge paths) must be null-homotopic in `Δ'(σ)`, with
//!    the *same* path used by the two triangles sharing an edge.
//!
//! Steps 1–2 are decidable outright. Step 3 is the undecidable residue
//! (§7); it is attacked in two exact tiers and one sound tier:
//!
//! * if every relevant `Δ'(σ)` component is simply connected (Tietze-
//!   trivial edge-path group), any paths work — exact **yes**;
//! * the joint abelianized system — "can boundary corrections and
//!   path re-routings cancel every triangle loop in H₁?" — is an integer
//!   linear feasibility problem; infeasibility is a sound **no**, and
//!   feasibility is exact when every `Δ'(σ)`'s fundamental group is
//!   evidently abelian;
//! * otherwise **unknown**.
//!
//! chromata-lint: allow(P3): indexing throughout follows the 2-dimensional complex structure (vertex/edge/triangle tables are built together and indices are cross-derived from their lengths); every site is advisory-flagged by P2 for per-site review

use std::collections::BTreeMap;

use chromata_algebra::{is_feasible, EdgePathGroup, IntMatrix};
use chromata_task::Task;
use chromata_topology::{Graph, Simplex, Vertex};

use crate::stages::artifacts::{LinkGraphs, Presentations};

/// The three-valued outcome of the continuous-map existence check.
#[derive(Clone, Debug)]
pub enum ContinuousOutcome {
    /// A carried continuous map exists; the witness records the vertex
    /// assignment `g` and how each triangle condition was discharged.
    Exists {
        /// Chosen output vertex for each input vertex.
        assignment: BTreeMap<Vertex, Vertex>,
        /// Human-readable note on which tier certified each triangle.
        certificates: Vec<String>,
    },
    /// No carried continuous map exists (sound certificate).
    Impossible {
        /// Why every vertex assignment fails.
        reason: ImpossibilityReason,
    },
    /// Some assignments could be neither certified nor refuted.
    Undetermined {
        /// Description of the first undetermined assignment's obstacle.
        reason: String,
    },
}

/// Why no assignment can yield a carried continuous map.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImpossibilityReason {
    /// Some input vertex has an empty `Δ'(x)` (cannot happen for valid
    /// tasks; defensive).
    EmptyVertexImage(Vertex),
    /// Every vertex assignment violates an edge-connectivity constraint;
    /// the recorded edge fails for all choices (Corollary 5.5 / 5.6
    /// situations).
    SkeletonDisconnected {
        /// An input edge witnessing the failure of the last assignment
        /// tried.
        edge: Simplex,
    },
    /// Edge conditions are satisfiable but every assignment fails the
    /// abelianized (H₁) triangle condition.
    HomologyObstruction {
        /// An input triangle witnessing the failure of the last
        /// assignment tried.
        triangle: Simplex,
    },
}

/// Decides (as far as the tiers allow) whether a continuous map
/// `|I| → |O'|` carried by the task's `Δ` exists.
///
/// The task should be link-connected (post-splitting) for the paper's
/// Theorem 5.1 to equate the outcome with solvability; the function itself
/// is meaningful for any task of dimension ≤ 2 (for the *colorless*
/// reading of the hourglass gap, it is also run pre-splitting).
#[must_use]
pub fn continuous_map_exists(task: &Task) -> ContinuousOutcome {
    let links = LinkGraphs::build(task);
    let presentations = Presentations::build(task, &links);
    continuous_map_exists_with(&links, &presentations).0
}

/// [`continuous_map_exists`] against precomputed stage artifacts, also
/// returning how many full vertex assignments were triangle-checked.
/// The engine's homology stage calls this; the artifacts are pure
/// functions of `task`, so the outcome is identical to the plain entry
/// point.
pub(crate) fn continuous_map_exists_with(
    links: &LinkGraphs,
    presentations: &Presentations,
) -> (ContinuousOutcome, u64) {
    // Vertex domains, in vertex order: the artifact keeps empty domains
    // (it is a total function of the task), so the defensive first-empty
    // return happens here.
    if let Some(x) = links.first_empty_domain() {
        return (
            ContinuousOutcome::Impossible {
                reason: ImpossibilityReason::EmptyVertexImage(x.clone()),
            },
            0,
        );
    }

    let vindex: BTreeMap<&Vertex, usize> = links
        .vertices
        .iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();

    let mut ctx = SearchCtx {
        links,
        presentations,
        vindex: &vindex,
        edge_failure: None,
        homology_failure: None,
        undetermined: None,
        assignments_checked: 0,
    };
    let mut assignment: Vec<Option<Vertex>> = vec![None; links.vertices.len()];
    let found = ctx.search(0, &mut assignment);
    let checked = ctx.assignments_checked;

    let outcome = match found {
        Some((assignment, certificates)) => ContinuousOutcome::Exists {
            assignment,
            certificates,
        },
        None => {
            if let Some(reason) = ctx.undetermined {
                ContinuousOutcome::Undetermined { reason }
            } else if let Some(triangle) = ctx.homology_failure {
                ContinuousOutcome::Impossible {
                    reason: ImpossibilityReason::HomologyObstruction { triangle },
                }
            } else if let Some(edge) = ctx.edge_failure {
                ContinuousOutcome::Impossible {
                    reason: ImpossibilityReason::SkeletonDisconnected { edge },
                }
            } else {
                // No vertices at all: the empty map exists.
                ContinuousOutcome::Exists {
                    assignment: BTreeMap::new(),
                    certificates: Vec::new(),
                }
            }
        }
    };
    (outcome, checked)
}

/// Search state for the assignment enumeration.
struct SearchCtx<'a> {
    links: &'a LinkGraphs,
    presentations: &'a Presentations,
    vindex: &'a BTreeMap<&'a Vertex, usize>,
    edge_failure: Option<Simplex>,
    homology_failure: Option<Simplex>,
    undetermined: Option<String>,
    assignments_checked: u64,
}

impl SearchCtx<'_> {
    /// Depth-first enumeration with edge pruning; returns the first
    /// assignment whose triangle conditions are certified.
    fn search(
        &mut self,
        k: usize,
        assignment: &mut Vec<Option<Vertex>>,
    ) -> Option<(BTreeMap<Vertex, Vertex>, Vec<String>)> {
        if k == self.links.vertices.len() {
            if self.links.vertices.is_empty() {
                return None;
            }
            let g: BTreeMap<Vertex, Vertex> = self
                .links
                .vertices
                .iter()
                .zip(assignment.iter())
                .map(|(x, w)| (x.clone(), w.clone().expect("full assignment"))) // chromata-lint: allow(P1): the search succeeds only once every vertex is assigned
                .collect();
            self.assignments_checked += 1;
            return match check_triangles(self.links, self.presentations, &g) {
                TriangleCheck::Pass(certs) => Some((g, certs)),
                TriangleCheck::HomologyFail(t) => {
                    self.homology_failure = Some(t);
                    None
                }
                TriangleCheck::Unknown(msg) => {
                    if self.undetermined.is_none() {
                        self.undetermined = Some(msg);
                    }
                    None
                }
            };
        }
        'candidates: for cand in &self.links.domains[k] {
            assignment[k] = Some(cand.clone());
            // Edge pruning: every fully assigned edge must connect.
            for (e, graph) in self.links.edges.iter().zip(&self.links.edge_graphs) {
                let vs = e.vertices();
                let (Some(a), Some(b)) = (
                    assignment[self.vindex[&vs[0]]].as_ref(),
                    assignment[self.vindex[&vs[1]]].as_ref(),
                ) else {
                    continue;
                };
                if !graph.connected(a, b) {
                    self.edge_failure = Some(e.clone());
                    assignment[k] = None;
                    continue 'candidates;
                }
            }
            if let Some(r) = self.search(k + 1, assignment) {
                assignment[k] = None;
                return Some(r);
            }
            assignment[k] = None;
        }
        None
    }
}

enum TriangleCheck {
    Pass(Vec<String>),
    HomologyFail(Simplex),
    Unknown(String),
}

/// Checks the triangle (contractibility) conditions for a full vertex
/// assignment, consulting the precomputed presentation artifacts.
fn check_triangles(
    links: &LinkGraphs,
    presentations: &Presentations,
    g: &BTreeMap<Vertex, Vertex>,
) -> TriangleCheck {
    let triangles = &links.triangles;
    let edges = &links.edges;
    let edge_graphs = &links.edge_graphs;
    if triangles.is_empty() {
        return TriangleCheck::Pass(vec!["1-dimensional input: no triangle conditions".into()]);
    }

    // Per-triangle, two direct tiers: (a) the image component is simply
    // connected (any path choice works); (b) the base-path boundary loop
    // is certified contractible by the tiered word problem (exact e.g. in
    // free groups — the specific loop may contract even when some loop
    // does not). Tier (b) commits to the base paths everywhere, so it is
    // only usable when *every* non-simply-connected triangle passes it;
    // otherwise re-routing a shared edge for one triangle could break
    // another's certificate, and we fall through to the joint abelianized
    // system over all triangles.
    let mut certs = Vec::new();
    let mut nontrivial: Vec<usize> = Vec::new();
    let mut base_certs = Vec::new();
    let mut all_base_ok = true;
    let mut abelian_ok = true;
    for (ti, sigma) in triangles.iter().enumerate() {
        let summary = presentations.per_triangle[ti].summary_for(&g[&sigma.vertices()[0]]);
        let group = summary.group();
        if summary.is_trivial() {
            certs.push(format!(
                "triangle {sigma}: image component simply connected"
            ));
            continue;
        }
        nontrivial.push(ti);
        if !summary.is_evidently_abelian() {
            abelian_ok = false;
        }
        let base_trivial =
            base_loop_word(sigma, edges, edge_graphs, g, group).is_some_and(|word| {
                chromata_algebra::word_triviality(group.presentation(), &word)
                    == chromata_algebra::Triviality::Trivial
            });
        if base_trivial {
            base_certs.push(format!(
                "triangle {sigma}: base boundary loop contractible (word problem)"
            ));
        } else {
            all_base_ok = false;
        }
    }
    if nontrivial.is_empty() {
        return TriangleCheck::Pass(certs);
    }
    if all_base_ok {
        certs.extend(base_certs);
        return TriangleCheck::Pass(certs);
    }
    let needs_h1 = nontrivial;

    // Joint H1 system over all triangles with non-trivial π1 components.
    match joint_h1_feasible(links, presentations, g) {
        false => TriangleCheck::HomologyFail(triangles[needs_h1[0]].clone()),
        true if abelian_ok => {
            certs.push(format!(
                "joint H1 system feasible; {} non-simply-connected triangle image(s) all evidently abelian",
                needs_h1.len()
            ));
            TriangleCheck::Pass(certs)
        }
        true => TriangleCheck::Unknown(format!(
            "H1 feasible but π1 of {} triangle image(s) not certified abelian — contractibility undecided",
            needs_h1.len()
        )),
    }
}

/// The boundary loop of `sigma` along the base (shortest) paths, as a
/// word in the edge-path group of its image component. `None` if a path
/// is missing or leaves the component (cannot happen after edge pruning).
fn base_loop_word(
    sigma: &Simplex,
    edges: &[Simplex],
    edge_graphs: &[Graph],
    g: &BTreeMap<Vertex, Vertex>,
    group: &EdgePathGroup,
) -> Option<Vec<i32>> {
    let vs = sigma.vertices();
    let path = |a: usize, b: usize| -> Option<Vec<Vertex>> {
        let e = Simplex::from_iter([vs[a].clone(), vs[b].clone()]);
        let ei = edges.iter().position(|x| *x == e)?;
        edge_graphs[ei].shortest_path(&g[&vs[a]], &g[&vs[b]])
    };
    let mut walk = path(0, 1)?;
    walk.extend(path(1, 2)?.into_iter().skip(1));
    let mut back = path(0, 2)?;
    back.reverse();
    walk.extend(back.into_iter().skip(1));
    group.word_of_walk(&walk)
}

/// Joint integer feasibility of the abelianized triangle conditions:
/// unknowns are re-routing multiples of each input edge's attachable cycle
/// basis and per-triangle 2-chain corrections; the system demands that
/// every triangle's boundary loop become a boundary.
///
/// The assignment-independent ingredients — fundamental-cycle walks per
/// edge graph and chain complexes per triangle — come precomputed from
/// the [`LinkGraphs`] and [`Presentations`] artifacts; only the base
/// paths and the component filter depend on the assignment `g`.
fn joint_h1_feasible(
    links: &LinkGraphs,
    presentations: &Presentations,
    g: &BTreeMap<Vertex, Vertex>,
) -> bool {
    let triangles = &links.triangles;
    let edges = &links.edges;
    let edge_graphs = &links.edge_graphs;
    // Base paths and attachable cycles per input edge.
    struct EdgeEnv {
        base: Vec<Vertex>,        // walk g(x) → g(x')
        cycles: Vec<Vec<Vertex>>, // closed walks (attachable basis)
    }
    let mut envs: BTreeMap<&Simplex, EdgeEnv> = BTreeMap::new();
    for (ei, (e, graph)) in edges.iter().zip(edge_graphs).enumerate() {
        let vs = e.vertices();
        let (a, b) = (&g[&vs[0]], &g[&vs[1]]);
        let Some(base) = graph.shortest_path(a, b) else {
            return false; // edge condition failed (caller prunes earlier)
        };
        // Fundamental cycles of the component containing the base path:
        // the closed walks were precomputed per non-tree edge; only the
        // attachability filter depends on the assignment.
        let cycles: Vec<Vec<Vertex>> = links.edge_cycles[ei]
            .iter()
            .filter(|(u, _)| graph.connected(u, a))
            .map(|(_, walk)| walk.clone())
            .collect();
        envs.insert(e, EdgeEnv { base, cycles });
    }

    // Column layout: one column per (edge, cycle) + one per (triangle,
    // image 2-simplex). Rows: one block per triangle, sized by its image's
    // edge count.
    let mut col_of_cycle: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut ncols = 0usize;
    for (ei, e) in edges.iter().enumerate() {
        for ci in 0..envs[e].cycles.len() {
            col_of_cycle.insert((ei, ci), ncols);
            ncols += 1;
        }
    }
    // Triangle chain complexes, precomputed in the presentations artifact.
    let chain_complexes: Vec<&chromata_algebra::ChainComplex> = presentations
        .per_triangle
        .iter()
        .map(|tp| &tp.chain)
        .collect();
    let tri_col_start: Vec<usize> = chain_complexes
        .iter()
        .map(|cc| {
            let s = ncols;
            ncols += cc.triangles().len();
            s
        })
        .collect();

    let total_rows: usize = chain_complexes.iter().map(|cc| cc.edges().len()).sum();
    let mut a = IntMatrix::zeros(total_rows, ncols);
    let mut b = vec![0i64; total_rows];
    let mut row0 = 0usize;
    for (ti, sigma) in triangles.iter().enumerate() {
        let cc = &chain_complexes[ti];
        let nrows = cc.edges().len();
        // Boundary loop from base paths: x0 → x1 → x2 → x0 with signs.
        let vs = sigma.vertices();
        let tri_edges = [
            (Simplex::from_iter([vs[0].clone(), vs[1].clone()]), 1i64),
            (Simplex::from_iter([vs[1].clone(), vs[2].clone()]), 1),
            (Simplex::from_iter([vs[0].clone(), vs[2].clone()]), -1),
        ];
        for (e, sign) in &tri_edges {
            let ei = edges.iter().position(|x| x == e).expect("edge of input"); // chromata-lint: allow(P1): e is drawn from `edges` by the enclosing iteration
            let env = &envs[e];
            let Some(chain) = cc.walk_to_chain(&env.base) else {
                return false; // base path uses an edge outside Δ'(σ): impossible
            };
            for (r, val) in chain.iter().enumerate() {
                b[row0 + r] -= sign * val;
            }
            // Cycle re-routing columns (same sign as the path's use).
            for (ci, cyc) in env.cycles.iter().enumerate() {
                let Some(cchain) = cc.walk_to_chain(cyc) else {
                    return false;
                };
                let col = col_of_cycle[&(ei, ci)];
                for (r, val) in cchain.iter().enumerate() {
                    a.add_to(row0 + r, col, sign * val);
                }
            }
        }
        // 2-chain correction columns: −∂₂.
        for tcol in 0..cc.triangles().len() {
            for r in 0..nrows {
                let val = cc.boundary2.get(r, tcol);
                if val != 0 {
                    a.add_to(row0 + r, tri_col_start[ti] + tcol, -val);
                }
            }
        }
        row0 += nrows;
    }
    is_feasible(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitting::split_all;
    use chromata_task::canonicalize;
    use chromata_task::library::{
        constant_task, hourglass, identity_task, two_process_consensus, two_set_agreement,
    };

    #[test]
    fn identity_and_constant_admit_maps() {
        for t in [identity_task(3), constant_task(3)] {
            assert!(matches!(
                continuous_map_exists(&t),
                ContinuousOutcome::Exists { .. }
            ));
        }
    }

    #[test]
    fn hourglass_admits_colorless_map_before_splitting() {
        // The motivating gap (§1.1): the raw hourglass has a continuous
        // carried map |I| → |O| …
        let t = hourglass();
        assert!(matches!(
            continuous_map_exists(&t),
            ContinuousOutcome::Exists { .. }
        ));
    }

    #[test]
    fn hourglass_split_has_no_map() {
        // … but after splitting, the skeleton disconnects (Corollary 5.5).
        let out = split_all(&canonicalize(&hourglass()));
        match continuous_map_exists(&out.task) {
            ContinuousOutcome::Impossible {
                reason: ImpossibilityReason::SkeletonDisconnected { .. },
            } => {}
            other => panic!("expected skeleton disconnection, got {other:?}"),
        }
    }

    #[test]
    fn two_set_agreement_blocked_by_homology() {
        // Link-connected already; the annulus loop is the obstruction.
        let t = canonicalize(&two_set_agreement());
        let out = split_all(&t);
        assert!(out.steps.is_empty(), "2-set agreement has no LAPs");
        match continuous_map_exists(&out.task) {
            ContinuousOutcome::Impossible {
                reason: ImpossibilityReason::HomologyObstruction { .. },
            } => {}
            other => panic!("expected homology obstruction, got {other:?}"),
        }
    }

    #[test]
    fn majority_consensus_blocked_even_pre_split() {
        // Stronger than the paper needs: with identities kept, the
        // coupled H1 system across the 8 input facets is already
        // infeasible before any splitting.
        let t = chromata_task::library::majority_consensus();
        assert!(matches!(
            continuous_map_exists(&t),
            ContinuousOutcome::Impossible {
                reason: ImpossibilityReason::HomologyObstruction { .. }
            }
        ));
    }

    #[test]
    fn base_loop_word_tier_certifies_renaming_four() {
        // Δ(σ) of 4-renaming is not simply connected, but the boundary
        // loop along the base paths contracts — the word-problem tier
        // certifies it where the abelian tier cannot (free π1 of rank ≥ 2).
        let t = chromata_task::library::renaming(4);
        match continuous_map_exists(&t) {
            ContinuousOutcome::Exists { certificates, .. } => {
                assert!(
                    certificates.iter().any(|c| c.contains("word problem")),
                    "expected the word-problem certificate, got {certificates:?}"
                );
            }
            other => panic!("renaming-4 should admit a map, got {other:?}"),
        }
    }

    #[test]
    fn approximate_agreement_certified_simply_connected() {
        let t = chromata_task::library::approximate_agreement(2);
        match continuous_map_exists(&t) {
            ContinuousOutcome::Exists { certificates, .. } => {
                assert!(certificates.iter().all(|c| c.contains("simply connected")));
            }
            other => panic!("expected Exists, got {other:?}"),
        }
    }

    #[test]
    fn two_process_consensus_skeleton_disconnected() {
        let t = two_process_consensus();
        match continuous_map_exists(&t) {
            ContinuousOutcome::Impossible {
                reason: ImpossibilityReason::SkeletonDisconnected { .. },
            } => {}
            other => panic!("expected skeleton disconnection, got {other:?}"),
        }
    }
}
