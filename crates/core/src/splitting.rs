//! The splitting deformation (paper, §4).
//!
//! Splitting replaces a local articulation point `y ∈ Δ(σ)` by one copy
//! `y_i` per connected component of its link, re-targeting `Δ` so that:
//!
//! * facets of `Δ(τ)` for `τ ⊆ σ` move to the *single* copy of the
//!   component shared by their residual vertices (§4.1);
//! * facets of `Δ(τ)` for `τ ⊄ σ` fan out to *all* copies;
//! * the vertex-level image `{y} ∈ Δ(x)` for `x ∈ σ` receives the copies
//!   consistent with *every* input edge `x ⊂ e ⊆ σ` — the component
//!   indices realized by `y`'s partners in each `Δ(e)`, intersected.
//!   (This is forced by monotonicity of `Δ_y`, matches the neighbor
//!   argument in the proof of Lemma 4.2, and yields §6.2's "one copy per
//!   connected component" fan-out for the pinwheel.) If the intersection
//!   is empty and `{y}` was the only facet of `Δ(x)`, a solo execution of
//!   `id(x)` has no legal output in `T_y`: the split is *degenerate*, and
//!   the original task is unsolvable by the same neighbor argument.
//!
//! Lemma 4.2: splitting preserves solvability. Theorem 4.3: iterating
//! until no LAP remains yields a link-connected task `T'`.

use chromata_task::{is_canonical, Task};
use chromata_topology::{CarrierMap, Complex, Simplex, Value, Vertex};

use crate::lap::{first_lap_of_facet, Lap};

/// The outcome of iterated LAP elimination (Theorem 4.3): the
/// link-connected task `T'` and the sequence of splits performed.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    /// The link-connected task `T' = (I, O', Δ')` (the last well-formed
    /// task if the elimination became degenerate).
    pub task: Task,
    /// The splitting steps, in the order performed.
    pub steps: Vec<Lap>,
    /// If a split emptied some solo image, the input vertex concerned:
    /// the original task is unsolvable outright.
    pub degenerate: Option<Vertex>,
}

/// Splits one local articulation point, producing `T_y = (I, O_y, Δ_y)`.
///
/// # Errors
///
/// Returns the input vertex whose image became empty when the split is
/// degenerate (see the module docs) — a sound unsolvability certificate.
///
/// # Panics
///
/// Panics if the task does not have exactly three processes (the
/// deformation is specific to 2-dimensional output complexes, paper §7),
/// if `lap` does not identify a current articulation point of the task, or
/// (in debug builds) if the task is not canonical.
pub fn split_once(task: &Task, lap: &Lap) -> Result<Task, Vertex> {
    assert_eq!(
        task.process_count(),
        3,
        "the splitting deformation is specific to three-process tasks"
    );
    debug_assert!(is_canonical(task), "splitting requires a canonical task");
    assert!(
        lap.component_count() >= 2,
        "vertex {} is not articulated",
        lap.vertex
    );
    let y = &lap.vertex;
    let copies: Vec<Vertex> = (0..lap.component_count())
        .map(|i| y.with_value(Value::split(y.value().clone(), i as u32)))
        .collect();

    let mut delta = CarrierMap::new();
    for (tau, img) in task.delta().iter() {
        let mut facets: Vec<Simplex> = Vec::new();
        for rho in img.facets() {
            if !rho.contains(y) {
                facets.push(rho.clone());
                continue;
            }
            if tau.is_face_of(&lap.facet) {
                // Single-copy rule: the copy is determined by the residual
                // vertices' link component.
                match rho.iter().find(|z| *z != y) {
                    Some(z) => {
                        let copy = lap
                            .component_of(z)
                            .and_then(|i| copies.get(i))
                            .unwrap_or_else(|| {
                                // chromata-lint: allow(P1): guaranteed by Lemma 4.1; a violation is a soundness bug worth aborting on
                                panic!(
                                    "residual vertex {z} of {rho} not in any link component of {y}"
                                )
                            });
                        facets.push(rho.substituted(y, copy.clone()));
                    }
                    None => {
                        // ρ = {y} at the vertex level: intersection rule.
                        for i in allowed_copies_for_solo(task, lap, tau) {
                            let copy = copies.get(i).expect("allowed copy index in range"); // chromata-lint: allow(P1): allowed_copies_for_solo draws indices from 0..component_count = copies.len()
                            facets.push(Simplex::vertex(copy.clone()));
                        }
                    }
                }
            } else {
                // Fan-out rule for simplices not under σ.
                for c in &copies {
                    facets.push(rho.substituted(y, c.clone()));
                }
            }
        }
        if facets.is_empty() {
            // Degenerate: a solo image vanished; the original task is
            // unsolvable (module docs).
            let x = tau
                .vertices()
                .first()
                .expect("carrier-map domains are non-empty simplices") // chromata-lint: allow(P1): Δ is keyed by simplices, which have at least one vertex
                .clone();
            return Err(x);
        }
        delta.insert(tau.clone(), Complex::from_facets(facets));
    }
    let output = delta.full_image();
    Ok(
        Task::new(task.name().to_owned(), task.input().clone(), output, delta)
            .expect("splitting preserves task validity (Claim 1 / Lemma 4.1)"), // chromata-lint: allow(P1): guaranteed by Claim 1 / Lemma 4.1; a violation is a soundness bug worth aborting on
    )
}

/// The component indices a solo decision `{y} ∈ Δ(x)` may keep after the
/// split: those realized by `y`'s partners in `Δ(e)` for *every* input
/// edge `x ⊂ e ⊆ σ` (intersection over incident edges under σ).
fn allowed_copies_for_solo(task: &Task, lap: &Lap, x: &Simplex) -> Vec<usize> {
    let mut allowed: Vec<usize> = (0..lap.component_count()).collect();
    for e in task.input().simplices_of_dim(1) {
        if !x.is_face_of(e) || !e.is_face_of(&lap.facet) {
            continue;
        }
        let img = task.delta().image_of(e);
        if !img.contains_vertex(&lap.vertex) {
            continue;
        }
        let mut local: Vec<usize> = img
            .link(&lap.vertex)
            .vertices()
            .filter_map(|z| lap.component_of(z))
            .collect();
        local.sort_unstable();
        local.dedup();
        allowed.retain(|i| local.contains(i));
    }
    allowed
}

/// Eliminates every local articulation point (Theorem 4.3): processes the
/// input facets in sorted order, repeatedly splitting the first LAP of the
/// current facet until none remains, then moving on. Lemma 4.1 guarantees
/// termination and that processed facets stay clean.
///
/// # Panics
///
/// Panics if the task does not have exactly three processes or (in debug
/// builds) is not canonical.
///
/// # Examples
///
/// ```
/// use chromata::split_all;
/// use chromata_task::{canonicalize, library::hourglass};
///
/// let out = split_all(&canonicalize(&hourglass()));
/// assert_eq!(out.steps.len(), 1);
/// assert!(out.task.is_link_connected());
/// // Splitting the pinch disconnects the hourglass output.
/// assert_eq!(out.task.output().connected_components().len(), 2);
/// ```
#[must_use]
pub fn split_all(task: &Task) -> SplitOutcome {
    let mut current = task.clone();
    let mut steps = Vec::new();
    let facets: Vec<Simplex> = task.input().facets().cloned().collect();
    for sigma in facets {
        while let Some(lap) = first_lap_of_facet(&current, &sigma) {
            match split_once(&current, &lap) {
                Ok(next) => current = next,
                Err(x) => {
                    steps.push(lap);
                    return SplitOutcome {
                        task: current,
                        steps,
                        degenerate: Some(x),
                    };
                }
            }
            steps.push(lap);
        }
    }
    debug_assert!(current.is_link_connected());
    SplitOutcome {
        task: current,
        steps,
        degenerate: None,
    }
}

/// Transports a solvability witness across a split — the constructive
/// content of Lemma 4.2's hard direction: given a decision map
/// `δ : Ch^r(I) → O` for the pre-split task, build `δ_y` for `T_y` by
/// sending each protocol vertex `w` with `δ(w) = y` to the copy `y_i`
/// of the component its `P(σ)`-neighbors map into (or `y_1` outside
/// `P(σ)`), exactly as in the paper's proof.
///
/// The result should be re-validated against the split task with
/// `validate_witness` — which is what the tests do, turning the proof of
/// Lemma 4.2 into an executable check.
///
/// # Panics
///
/// Panics if `map` is not total on the subdivision, or if a protocol
/// vertex mapping to `y` has no differently-colored neighbor inside
/// `P(σ)` (impossible for genuine protocol complexes, §10.2.11 of HKR).
#[must_use]
pub fn transport_witness(
    lap: &Lap,
    sub: &chromata_subdivision::Subdivision,
    map: &chromata_topology::SimplicialMap,
) -> chromata_topology::SimplicialMap {
    let p_sigma = sub.carrier.image_of(&lap.facet);
    let mut out = chromata_topology::SimplicialMap::new();
    for v in sub.complex.vertices() {
        let img = map.get(v).expect("witness must be total"); // chromata-lint: allow(P1): the witness map is validated total before verification starts
        if img != &lap.vertex {
            out.insert(v.clone(), img.clone());
            continue;
        }
        let copy_index = if p_sigma.contains_vertex(v) {
            // Any differently-colored neighbor in P(σ): chromatic maps
            // send it into lk(y), and link-connectivity of P(σ) makes the
            // choice immaterial (proof of Lemma 4.2).
            let neighbor = p_sigma
                .simplices_of_dim(1)
                .filter(|e| e.contains(v))
                .flat_map(chromata_topology::Simplex::iter)
                .find(|w| w.color() != v.color())
                .unwrap_or_else(|| panic!("{v} has no neighbor in P(σ)")) // chromata-lint: allow(P1): every vertex of P(sigma) has a neighbor by construction of the split complex
                .clone();
            let w_img = map.get(&neighbor).expect("witness must be total"); // chromata-lint: allow(P1): the witness map is validated total before verification starts
            lap.component_of(w_img)
                // chromata-lint: allow(P1): a chromatic simplicial map sends neighbors of y's preimage into lk(y)
                .unwrap_or_else(|| panic!("neighbor image {w_img} not in lk(y)"))
        } else {
            0
        };
        out.insert(
            v.clone(),
            lap.vertex
                .with_value(Value::split(lap.vertex.value().clone(), copy_index as u32)),
        );
    }
    out
}

/// Projects a decision vertex of a split task back to the original
/// (pre-splitting) vertex — the easy direction of Lemma 4.2: an algorithm
/// for `T_y` yields one for `T` by outputting `y` instead of `y_i`.
#[must_use]
pub fn unsplit_vertex(v: &Vertex) -> Vertex {
    v.with_value(v.value().unsplit().clone())
}

/// Projects a whole decided simplex of a split task back to the original
/// task's output complex.
#[must_use]
pub fn unsplit_simplex(s: &Simplex) -> Simplex {
    Simplex::from_iter(s.iter().map(unsplit_vertex))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lap::laps;
    use chromata_task::canonicalize;
    use chromata_task::library::{hourglass, majority_consensus, pinwheel};

    #[test]
    fn hourglass_split_shape() {
        // The hourglass is already canonical (single facet, injective Δ at
        // the vertex level) — canonicalize anyway as the pipeline does.
        let t = canonicalize(&hourglass());
        let out = split_all(&t);
        assert_eq!(out.steps.len(), 1);
        let t2 = &out.task;
        assert!(t2.is_link_connected());
        // One vertex became two: 8 + 1 = 9 vertices, two components.
        assert_eq!(t2.output().vertex_count(), 9);
        assert_eq!(t2.output().connected_components().len(), 2);
        assert_eq!(t2.output().facet_count(), 5, "facet count unchanged");
    }

    #[test]
    fn split_is_canonical_and_valid() {
        // Claim 1: canonicity is preserved by each step.
        let t = canonicalize(&hourglass());
        let out = split_all(&t);
        assert!(is_canonical(&out.task));
        out.task
            .delta()
            .validate_chromatic(out.task.input())
            .expect("Δ' is a valid carrier map");
    }

    #[test]
    fn lemma_4_1_monotone_progress() {
        // Splitting strictly reduces the LAP count w.r.t. the split facet
        // and never adds LAPs to clean facets.
        let t = canonicalize(&pinwheel());
        let mut current = t;
        let mut last_count = laps(&current).len();
        assert!(last_count > 0);
        while let Some(lap) = laps(&current).first().cloned() {
            let next = split_once(&current, &lap).expect("pinwheel splits are non-degenerate");
            let next_count = laps(&next).len();
            assert!(
                next_count < last_count,
                "LAP count must strictly decrease: {last_count} -> {next_count}"
            );
            current = next;
            last_count = next_count;
        }
        assert!(current.is_link_connected());
    }

    #[test]
    fn pinwheel_splits_into_disjoint_components() {
        // The paper's Fig. 8 triangulation (available only graphically)
        // splits into 3 components; our rotation-symmetric reconstruction
        // splits into 6 — the same obstruction (strictly more than one
        // component, with every solo output trapped away from some
        // process's outputs), recorded in EXPERIMENTS.md.
        let out = split_all(&canonicalize(&pinwheel()));
        assert!(out.degenerate.is_none());
        assert!(out.task.is_link_connected());
        let comps = out.task.output().connected_components().len();
        assert_eq!(comps, 6, "measured component count changed: {comps}");
        assert!(comps >= 3);
    }

    #[test]
    fn majority_consensus_splits_clean() {
        let out = split_all(&canonicalize(&majority_consensus()));
        assert!(out.task.is_link_connected());
        assert!(!out.steps.is_empty());
    }

    #[test]
    fn vertex_level_fanout_matches_section_6_2() {
        // After splitting the pinwheel, each solo input vertex may decide
        // multiple copies — one per link component (§6.2).
        let out = split_all(&canonicalize(&pinwheel()));
        // The input vertex of P0 is (0, 1) — inputs are untouched by
        // canonicalization and splitting.
        let solo = Simplex::vertex(Vertex::of(0, 1));
        let img = out.task.delta().image_of(&solo);
        assert!(
            img.vertex_count() >= 2,
            "solo decision fans out to one copy per component, got {img}"
        );
    }

    #[test]
    fn lemma_4_2_witness_transport() {
        // Renaming with 3 names is solvable *and* has LAPs: find a
        // witness, split one LAP, transport the witness per the proof of
        // Lemma 4.2, and re-validate it against the split task.
        use crate::act::{find_decision_map, validate_witness};
        use chromata_subdivision::iterated_chromatic_subdivision;

        let t = canonicalize(&chromata_task::library::renaming(3));
        let lap = crate::lap::laps(&t).into_iter().next().expect("has LAPs");
        let split = split_once(&t, &lap).expect("non-degenerate");
        for rounds in 0..=2usize {
            let sub = iterated_chromatic_subdivision(t.input(), rounds);
            let Some(map) = find_decision_map(&sub, &t) else {
                continue;
            };
            assert!(validate_witness(&sub, &t, &map));
            let transported = transport_witness(&lap, &sub, &map);
            assert!(
                validate_witness(&sub, &split, &transported),
                "transported witness invalid at {rounds} round(s)"
            );
            return;
        }
        panic!("no witness found for renaming-3 within 2 rounds");
    }

    #[test]
    fn unsplit_roundtrip() {
        let out = split_all(&canonicalize(&hourglass()));
        for (tau, img) in out.task.delta().iter() {
            for f in img.facets() {
                let back = unsplit_simplex(f);
                // The original canonical task must carry the projected
                // simplex (Lemma 4.2, easy direction).
                let orig = canonicalize(&hourglass());
                assert!(
                    orig.delta().carries(tau, &back),
                    "unsplit image {back} escapes Δ({tau})"
                );
            }
        }
    }
}
