//! Baseline solvability check via the Herlihy–Shavit ACT (paper, §1.1,
//! §2.4, §5.1).
//!
//! A task is solvable iff for *some* `r` there is a chromatic simplicial
//! map `Ch^r(I) → O` carried by `Δ`. Checking this requires picking an `r`
//! a priori — the very difficulty the paper's characterization removes.
//! This module implements the check as a backtracking constraint search;
//! it serves as the comparison baseline for the benchmark suite and as a
//! cross-validation oracle for the pipeline (a found map certifies
//! solvability; exhausting the round budget is inconclusive).
//!
//! chromata-lint: allow(P3): indexing follows the carrier/chromatic arity invariants of subdivision simplices established at construction; every site is advisory-flagged by P2 for per-site review

use std::collections::BTreeMap;

use chromata_subdivision::{iterated_chromatic_subdivision, Subdivision};
use chromata_task::Task;
use chromata_topology::{Budget, CancelToken, Interrupt, Simplex, SimplicialMap, Vertex};

/// How many backtracking nodes the search expands between cooperative
/// [`Budget::check`] calls.
const CHECK_INTERVAL: usize = 4096;

/// Outcome of the bounded ACT search.
#[derive(Clone, Debug)]
pub enum ActOutcome {
    /// A chromatic simplicial map `Ch^r(I) → O` carried by `Δ` was found:
    /// the task is solvable by an `r`-round immediate-snapshot protocol.
    Solvable {
        /// Number of subdivision rounds used.
        rounds: usize,
        /// The decision map (a solvability witness).
        map: SimplicialMap,
    },
    /// No map exists for any `r ≤ max_rounds`; inconclusive (the paper's
    /// point: the original characterization is only semi-decidable).
    Exhausted {
        /// The round budget that was exhausted.
        max_rounds: usize,
    },
    /// The governed search was cancelled or ran out of wall-clock time
    /// before the round budget was exhausted.
    Interrupted {
        /// Rounds fully searched (without finding a map) before the
        /// interruption — partial diagnostics for the caller's report.
        rounds_completed: usize,
        /// Whether cancellation or the deadline fired.
        interrupt: Interrupt,
    },
}

impl ActOutcome {
    /// Whether a solvability witness was found.
    #[must_use]
    pub fn is_solvable(&self) -> bool {
        matches!(self, ActOutcome::Solvable { .. })
    }
}

/// Searches for a chromatic simplicial decision map from `Ch^r(I)` for
/// `r = 0, 1, …, max_rounds`.
///
/// # Examples
///
/// ```
/// use chromata::solve_act;
/// use chromata_task::library::{constant_task, consensus};
///
/// assert!(solve_act(&constant_task(3), 1).is_solvable());
/// assert!(!solve_act(&consensus(2), 2).is_solvable()); // FLP
/// ```
#[must_use]
pub fn solve_act(task: &Task, max_rounds: usize) -> ActOutcome {
    solve_act_governed(
        task,
        &Budget::unlimited().with_max_act_rounds(max_rounds),
        &CancelToken::new(),
    )
}

/// [`solve_act`] under a [`Budget`] and [`CancelToken`]: rounds
/// `0..=budget.max_act_rounds` are searched in order (the search is
/// inherently escalating — each round is an order of magnitude larger
/// than the last), with the deadline and the token checked every few
/// thousand backtracking nodes. Interruption degrades to
/// [`ActOutcome::Interrupted`] carrying the number of rounds already
/// ruled out.
#[must_use]
pub fn solve_act_governed(task: &Task, budget: &Budget, cancel: &CancelToken) -> ActOutcome {
    solve_act_governed_with_stats(task, budget, cancel).0
}

/// [`solve_act_governed`] additionally reporting the total number of
/// backtracking nodes expanded across every round searched — the state
/// counter the verdict engine's evidence chains record for the
/// exploration stage.
#[must_use]
pub fn solve_act_governed_with_stats(
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
) -> (ActOutcome, u64) {
    let max_rounds = budget.max_act_rounds;
    let mut total_nodes = 0u64;
    for rounds in 0..=max_rounds {
        if let Err(interrupt) = budget.check(cancel) {
            return (
                ActOutcome::Interrupted {
                    rounds_completed: rounds,
                    interrupt,
                },
                total_nodes,
            );
        }
        let sub = iterated_chromatic_subdivision(task.input(), rounds);
        let (found, nodes) = find_decision_map_counted(&sub, task, budget, cancel);
        total_nodes += nodes;
        match found {
            Ok(Some(map)) => return (ActOutcome::Solvable { rounds, map }, total_nodes),
            Ok(None) => {}
            Err(interrupt) => {
                return (
                    ActOutcome::Interrupted {
                        rounds_completed: rounds,
                        interrupt,
                    },
                    total_nodes,
                )
            }
        }
    }
    (ActOutcome::Exhausted { max_rounds }, total_nodes)
}

/// Searches for a chromatic simplicial map `sub.complex → task.output()`
/// carried by `Δ` relative to the subdivision's carrier map.
///
/// Backtracking over protocol-complex vertices with incremental
/// consistency checks: a partial assignment survives only while the image
/// of every constrained simplex's assigned part stays inside the
/// corresponding `Δ(τ)`.
#[must_use]
pub fn find_decision_map(sub: &Subdivision, task: &Task) -> Option<SimplicialMap> {
    // An unlimited budget with a fresh token can never interrupt.
    find_decision_map_governed(sub, task, &Budget::unlimited(), &CancelToken::new())
        .ok()
        .flatten()
}

/// [`find_decision_map`] with cooperative interruption: the deadline and
/// the token are checked every [`CHECK_INTERVAL`] backtracking nodes.
///
/// # Errors
///
/// Returns the [`Interrupt`] if the budget's deadline passes or the
/// token is cancelled mid-search.
pub fn find_decision_map_governed(
    sub: &Subdivision,
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
) -> Result<Option<SimplicialMap>, Interrupt> {
    find_decision_map_counted(sub, task, budget, cancel).0
}

/// [`find_decision_map_governed`] additionally reporting the number of
/// backtracking nodes the search expanded (even when interrupted).
pub(crate) fn find_decision_map_counted(
    sub: &Subdivision,
    task: &Task,
    budget: &Budget,
    cancel: &CancelToken,
) -> (Result<Option<SimplicialMap>, Interrupt>, u64) {
    let vertices: Vec<Vertex> = sub.complex.vertices().cloned().collect();
    let vindex: BTreeMap<&Vertex, usize> =
        vertices.iter().enumerate().map(|(i, v)| (v, i)).collect();

    // Domains: vertices of Δ(carrier(v)) with matching color.
    let mut domains: Vec<Vec<Vertex>> = Vec::with_capacity(vertices.len());
    for v in &vertices {
        let Some(tau) = sub.carrier.minimal_carrier_of_vertex(v) else {
            return (Ok(None), 0);
        };
        let Some(img) = task.delta().get(tau) else {
            return (Ok(None), 0);
        };
        let dom: Vec<Vertex> = img
            .vertices()
            .filter(|w| w.color() == v.color())
            .cloned()
            .collect();
        if dom.is_empty() {
            return (Ok(None), 0);
        }
        domains.push(dom);
    }

    // Constraints: for every input simplex τ and every facet ξ of the
    // subdivision of τ, f(ξ) must be a simplex of Δ(τ).
    struct Constraint {
        vars: Vec<usize>,
        tau: Simplex,
    }
    let mut constraints: Vec<Constraint> = Vec::new();
    for (tau, part) in sub.carrier.iter() {
        for xi in part.facets() {
            constraints.push(Constraint {
                vars: xi.iter().map(|v| vindex[v]).collect(),
                tau: tau.clone(),
            });
        }
    }
    // For fast lookup: constraints touching each variable.
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); vertices.len()];
    for (ci, c) in constraints.iter().enumerate() {
        for &v in &c.vars {
            touching[v].push(ci);
        }
    }

    // Order variables by ascending domain size (fail-first).
    let mut order: Vec<usize> = (0..vertices.len()).collect();
    order.sort_by_key(|&i| domains[i].len());
    let mut position = vec![usize::MAX; vertices.len()];
    for (k, &i) in order.iter().enumerate() {
        position[i] = k;
    }

    let mut assignment: Vec<Option<Vertex>> = vec![None; vertices.len()];

    fn consistent(
        assignment: &[Option<Vertex>],
        constraints: &[Constraint],
        touching: &[Vec<usize>],
        task: &Task,
        var: usize,
    ) -> bool {
        for &ci in &touching[var] {
            let c = &constraints[ci];
            let assigned: Vec<Vertex> = c
                .vars
                .iter()
                .filter_map(|&v| assignment[v].clone())
                .collect();
            let img = Simplex::new(assigned);
            if !task.delta().carries(&c.tau, &img) {
                return false;
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        k: usize,
        order: &[usize],
        domains: &[Vec<Vertex>],
        assignment: &mut Vec<Option<Vertex>>,
        constraints: &[Constraint],
        touching: &[Vec<usize>],
        task: &Task,
        nodes: &mut usize,
        budget: &Budget,
        cancel: &CancelToken,
    ) -> Result<bool, Interrupt> {
        if k == order.len() {
            return Ok(true);
        }
        // Cooperative checkpoint: cheap counter, rare clock read.
        *nodes += 1;
        if nodes.is_multiple_of(CHECK_INTERVAL) {
            budget.check(cancel)?;
        }
        let var = order[k];
        for cand in &domains[var] {
            assignment[var] = Some(cand.clone());
            if consistent(assignment, constraints, touching, task, var)
                && search(
                    k + 1,
                    order,
                    domains,
                    assignment,
                    constraints,
                    touching,
                    task,
                    nodes,
                    budget,
                    cancel,
                )?
            {
                return Ok(true);
            }
            assignment[var] = None;
        }
        Ok(false)
    }

    let mut nodes = 0usize;
    let found = search(
        0,
        &order,
        &domains,
        &mut assignment,
        &constraints,
        &touching,
        task,
        &mut nodes,
        budget,
        cancel,
    );
    let expanded = nodes as u64;
    match found {
        Err(interrupt) => (Err(interrupt), expanded),
        Ok(true) => (
            Ok(Some(
                vertices
                    .into_iter()
                    .zip(assignment)
                    .map(|(v, w)| (v, w.expect("search completed"))) // chromata-lint: allow(P1): the backtracking search reports success only with a full assignment
                    .collect(),
            )),
            expanded,
        ),
        Ok(false) => (Ok(None), expanded),
    }
}

/// Independently re-validates a witness returned by [`solve_act`]: the map
/// must be total, chromatic, simplicial into the output complex, and
/// carried by `Δ` on every subdivided input simplex.
#[must_use]
pub fn validate_witness(sub: &Subdivision, task: &Task, map: &SimplicialMap) -> bool {
    if !map.is_total_on(&sub.complex) || !map.is_chromatic() {
        return false;
    }
    if !map.is_simplicial(&sub.complex, task.output()) {
        return false;
    }
    for (tau, part) in sub.carrier.iter() {
        for xi in part.facets() {
            let Some(img) = map.apply(xi) else {
                return false;
            };
            if !task.delta().carries(tau, &img) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_subdivision::iterated_chromatic_subdivision;
    use chromata_task::library::{
        consensus, constant_task, hourglass, identity_task, majority_consensus,
        two_process_consensus,
    };

    #[test]
    fn trivial_tasks_solvable_at_zero_rounds() {
        for t in [identity_task(3), constant_task(3)] {
            match solve_act(&t, 0) {
                ActOutcome::Solvable { rounds, map } => {
                    assert_eq!(rounds, 0);
                    let sub = iterated_chromatic_subdivision(t.input(), 0);
                    assert!(validate_witness(&sub, &t, &map));
                }
                other => panic!("{} must be solvable, got {other:?}", t.name()),
            }
        }
    }

    #[test]
    fn two_process_consensus_unsolvable() {
        // FLP: no map at any round; we check a small budget.
        assert!(!solve_act(&two_process_consensus(), 2).is_solvable());
    }

    #[test]
    fn three_process_consensus_unsolvable() {
        assert!(!solve_act(&consensus(3), 1).is_solvable());
    }

    #[test]
    fn hourglass_unsolvable_at_small_rounds() {
        assert!(!solve_act(&hourglass(), 1).is_solvable());
    }

    #[test]
    fn majority_consensus_unsolvable_at_small_rounds() {
        assert!(!solve_act(&majority_consensus(), 1).is_solvable());
    }

    #[test]
    fn cancelled_act_search_degrades_to_interrupted() {
        let cancel = CancelToken::new();
        cancel.cancel();
        match solve_act_governed(
            &consensus(3),
            &Budget::unlimited().with_max_act_rounds(2),
            &cancel,
        ) {
            ActOutcome::Interrupted {
                rounds_completed: 0,
                interrupt: Interrupt::Cancelled,
            } => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_degrades_to_interrupted() {
        let budget = Budget::unlimited()
            .with_max_act_rounds(2)
            .with_deadline_in(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        match solve_act_governed(&consensus(3), &budget, &CancelToken::new()) {
            ActOutcome::Interrupted {
                interrupt: Interrupt::DeadlineExceeded,
                ..
            } => {}
            other => panic!("expected deadline interruption, got {other:?}"),
        }
    }

    #[test]
    fn witness_validation_rejects_corruption() {
        let t = constant_task(3);
        let ActOutcome::Solvable { rounds, map } = solve_act(&t, 0) else {
            panic!("constant task is solvable");
        };
        let sub = iterated_chromatic_subdivision(t.input(), rounds);
        assert!(validate_witness(&sub, &t, &map));
        // Corrupt one assignment's color.
        let mut bad = map.clone();
        let (v, _) = bad
            .iter()
            .next()
            .map(|(a, b)| (a.clone(), b.clone()))
            .unwrap();
        bad.insert(v.clone(), Vertex::of((v.color().index() + 1) % 3, 0));
        assert!(!validate_witness(&sub, &t, &bad));
    }
}
