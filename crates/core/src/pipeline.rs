//! The end-to-end solvability pipeline (paper, Theorem 5.1).
//!
//! ```text
//! T ──validate──▶ restrict to reachable ──§3──▶ T* ──§4──▶ T' ──§5──▶ verdict
//! ```
//!
//! For three-process tasks the pipeline canonicalizes, eliminates local
//! articulation points, and checks the continuous-map condition on the
//! link-connected result. Two-process tasks are decided directly by
//! Proposition 5.4 (no splitting; the continuous check on a 1-dimensional
//! input is exact). One-process tasks are trivially solvable.
//!
//! Because loop contractibility is undecidable in general (§7), the
//! pipeline can return [`Verdict::Unknown`]; callers may enable the
//! bounded ACT fallback to turn some unknowns into `Solvable`.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use chromata_task::{canonicalize, Task};

use crate::act::{solve_act, ActOutcome};
use crate::continuous::{continuous_map_exists, ContinuousOutcome, ImpossibilityReason};
use crate::splitting::{split_all, SplitOutcome};

/// The pipeline's answer.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The task is wait-free solvable.
    Solvable {
        /// How solvability was certified.
        certificate: String,
    },
    /// The task is not wait-free solvable.
    Unsolvable {
        /// The obstruction class.
        obstruction: Obstruction,
    },
    /// The decidable tiers were exhausted without an answer.
    Unknown {
        /// Why the outcome is undetermined.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict is `Solvable`.
    #[must_use]
    pub fn is_solvable(&self) -> bool {
        matches!(self, Verdict::Solvable { .. })
    }

    /// Whether the verdict is `Unsolvable`.
    #[must_use]
    pub fn is_unsolvable(&self) -> bool {
        matches!(self, Verdict::Unsolvable { .. })
    }
}

/// The two obstruction classes the paper exposes (§7).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Obstruction {
    /// After splitting, the skeleton conditions fail: some input edge's
    /// solo choices cannot be connected in the split output — the
    /// *chromatic* obstruction created by local articulation points.
    ArticulationPoints {
        /// Human-readable witness description.
        witness: String,
    },
    /// The colorless obstruction: the triangle boundary loop is
    /// non-contractible at the homology level.
    Contractibility {
        /// Human-readable witness description.
        witness: String,
    },
}

impl fmt::Display for Obstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obstruction::ArticulationPoints { witness } => {
                write!(f, "local-articulation-point obstruction: {witness}")
            }
            Obstruction::Contractibility { witness } => {
                write!(f, "contractibility obstruction: {witness}")
            }
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Solvable { certificate } => write!(f, "SOLVABLE — {certificate}"),
            Verdict::Unsolvable { obstruction } => write!(f, "UNSOLVABLE — {obstruction}"),
            Verdict::Unknown { reason } => write!(f, "UNKNOWN — {reason}"),
        }
    }
}

/// A full analysis record: the intermediate tasks and the verdict.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The canonical task `T*` (§3).
    pub canonical: Task,
    /// The split, link-connected task `T'` and the splitting steps (§4).
    pub split: SplitOutcome,
    /// The pipeline verdict (§5).
    pub verdict: Verdict,
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "canonical |O*| = {} facets; {} split step(s); O' = {} facets in {} component(s)",
            self.canonical.output().facet_count(),
            self.split.steps.len(),
            self.split.task.output().facet_count(),
            self.split.task.output().connected_components().len(),
        )?;
        write!(f, "{}", self.verdict)
    }
}

/// Options controlling the pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOptions {
    /// If the continuous tier is undetermined, run the bounded ACT search
    /// with this many rounds (0 disables the fallback).
    pub act_fallback_rounds: usize,
}

/// Hit/miss counters for the [`analyze`] decision cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DecisionCacheStats {
    /// Verdicts served from the cache without re-running the decision tiers.
    pub hits: u64,
    /// Verdicts computed by the decision tiers and then cached.
    pub misses: u64,
}

/// Memoized verdicts, keyed by the canonical task and the ACT fallback
/// bound. Canonicalization is a quotient: syntactically different
/// presentations of the same task collapse to one key, so the (much more
/// expensive) splitting/continuous/ACT tiers run once per semantic task.
struct DecisionCache {
    verdicts: HashMap<(Task, usize), Verdict>,
    stats: DecisionCacheStats,
}

fn decision_cache() -> &'static Mutex<DecisionCache> {
    static CACHE: OnceLock<Mutex<DecisionCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(DecisionCache {
            verdicts: HashMap::new(),
            stats: DecisionCacheStats::default(),
        })
    })
}

/// Current decision-cache counters (process-wide).
#[must_use]
pub fn decision_cache_stats() -> DecisionCacheStats {
    decision_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .stats
}

/// Drops all memoized verdicts and resets the counters.
pub fn clear_decision_cache() {
    let mut guard = decision_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.verdicts.clear();
    guard.stats = DecisionCacheStats::default();
}

/// Runs the full pipeline on a (1-, 2- or 3-process) task.
///
/// # Panics
///
/// Panics if the task has more than three processes — the splitting
/// deformation is specific to three processes (paper, §7).
///
/// # Examples
///
/// ```
/// use chromata::{analyze, PipelineOptions};
/// use chromata_task::library::{hourglass, identity_task};
///
/// assert!(analyze(&identity_task(3), PipelineOptions::default()).verdict.is_solvable());
/// assert!(analyze(&hourglass(), PipelineOptions::default()).verdict.is_unsolvable());
/// ```
#[must_use]
pub fn analyze(task: &Task, options: PipelineOptions) -> Analysis {
    assert!(
        task.process_count() <= 3,
        "the characterization is specific to at most three processes"
    );
    let reachable = task.restricted_to_reachable();
    let canonical = canonicalize(&reachable);
    let split = if task.process_count() == 3 {
        split_all(&canonical)
    } else {
        // Proposition 5.4: two-process tasks are decided on the raw task;
        // one-process tasks trivially.
        SplitOutcome {
            task: canonical.clone(),
            steps: Vec::new(),
            degenerate: None,
        }
    };
    let key = (canonical.clone(), options.act_fallback_rounds);
    let cached = {
        let mut guard = decision_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = guard.verdicts.get(&key).cloned();
        if found.is_some() {
            guard.stats.hits += 1;
        } else {
            guard.stats.misses += 1;
        }
        found
    };
    // Decide outside the lock; a racing miss recomputes the same verdict.
    let verdict = cached.unwrap_or_else(|| {
        let v = decide(&split, options);
        decision_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .verdicts
            .insert(key, v.clone());
        v
    });
    Analysis {
        canonical,
        split,
        verdict,
    }
}

fn decide(split: &SplitOutcome, options: PipelineOptions) -> Verdict {
    if let Some(x) = &split.degenerate {
        return Verdict::Unsolvable {
            obstruction: Obstruction::ArticulationPoints {
                witness: format!(
                    "splitting emptied the solo image of input vertex {x}: \
                     the incident edges force incompatible link components"
                ),
            },
        };
    }
    let t = &split.task;
    match continuous_map_exists(t) {
        ContinuousOutcome::Exists { certificates, .. } => Verdict::Solvable {
            certificate: if certificates.is_empty() {
                "continuous carried map exists (vertex/edge tiers)".to_owned()
            } else {
                certificates.join("; ")
            },
        },
        ContinuousOutcome::Impossible { reason } => {
            let obstruction = match reason {
                ImpossibilityReason::SkeletonDisconnected { edge } => {
                    Obstruction::ArticulationPoints {
                        witness: format!(
                            "after {} split step(s), no choice of solo outputs is connected across input edge {edge}",
                            split.steps.len()
                        ),
                    }
                }
                ImpossibilityReason::HomologyObstruction { triangle } => {
                    Obstruction::Contractibility {
                        witness: format!(
                            "the boundary loop of input triangle {triangle} is non-contractible (H1 certificate)"
                        ),
                    }
                }
                ImpossibilityReason::EmptyVertexImage(x) => Obstruction::ArticulationPoints {
                    witness: format!("input vertex {x} has an empty image"),
                },
            };
            Verdict::Unsolvable { obstruction }
        }
        ContinuousOutcome::Undetermined { reason } => {
            if options.act_fallback_rounds > 0 {
                if let ActOutcome::Solvable { rounds, .. } =
                    solve_act(t, options.act_fallback_rounds)
                {
                    return Verdict::Solvable {
                        certificate: format!(
                            "ACT fallback found a decision map at {rounds} round(s)"
                        ),
                    };
                }
            }
            Verdict::Unknown { reason }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{
        adaptive_renaming, approximate_agreement, consensus, constant_task, disk_complex,
        hourglass, identity_task, leader_election, loop_agreement, majority_consensus, pinwheel,
        projective_plane_complex, renaming, sphere_complex, torus_complex, two_process_consensus,
        two_process_leader_election, two_set_agreement,
    };

    fn verdict(t: &Task) -> Verdict {
        analyze(t, PipelineOptions::default()).verdict
    }

    #[test]
    fn solvable_controls() {
        assert!(verdict(&identity_task(3)).is_solvable());
        assert!(verdict(&constant_task(3)).is_solvable());
        assert!(verdict(&identity_task(2)).is_solvable());
    }

    #[test]
    fn hourglass_unsolvable_via_articulation() {
        let a = analyze(&hourglass(), PipelineOptions::default());
        assert_eq!(a.split.steps.len(), 1);
        match a.verdict {
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints { .. },
            } => {}
            other => panic!("expected LAP obstruction, got {other:?}"),
        }
    }

    #[test]
    fn pinwheel_unsolvable() {
        let a = analyze(&pinwheel(), PipelineOptions::default());
        assert!(a.verdict.is_unsolvable());
        assert!(!a.split.steps.is_empty());
    }

    #[test]
    fn majority_consensus_unsolvable() {
        assert!(verdict(&majority_consensus()).is_unsolvable());
    }

    #[test]
    fn consensus_unsolvable_three_and_two() {
        assert!(verdict(&consensus(3)).is_unsolvable());
        assert!(verdict(&two_process_consensus()).is_unsolvable());
    }

    #[test]
    fn two_set_agreement_unsolvable_via_contractibility() {
        match verdict(&two_set_agreement()) {
            Verdict::Unsolvable {
                obstruction: Obstruction::Contractibility { .. },
            } => {}
            other => panic!("expected contractibility obstruction, got {other:?}"),
        }
    }

    #[test]
    fn klein_bottle_loops_span_the_verdict_spectrum() {
        use chromata_task::library::{klein_bottle_doubled_loop, klein_bottle_single_loop};
        // Torsion loop: exactly refuted by the H1 tier.
        let single = loop_agreement("klein-single", klein_bottle_single_loop());
        match verdict(&single) {
            Verdict::Unsolvable {
                obstruction: Obstruction::Contractibility { .. },
            } => {}
            other => panic!("expected torsion refutation, got {other:?}"),
        }
        // Doubled loop: null-homologous but not null-homotopic in the
        // infinite non-abelian π1 — the genuinely undecidable residue
        // (§7); the pipeline must answer Unknown, not guess.
        let doubled = loop_agreement("klein-doubled", klein_bottle_doubled_loop());
        match verdict(&doubled) {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("contractibility undecided"), "{reason}");
            }
            other => panic!("expected the honest Unknown, got {other:?}"),
        }
    }

    #[test]
    fn loop_agreement_verdicts_match_contractibility() {
        // Contractible loops: solvable.
        assert!(verdict(&loop_agreement("disk", disk_complex())).is_solvable());
        assert!(verdict(&loop_agreement("sphere", sphere_complex())).is_solvable());
        // Essential loops: unsolvable (torus: free abelian class; RP²:
        // torsion class — both caught by the H1 tier exactly).
        assert!(verdict(&loop_agreement("torus", torus_complex())).is_unsolvable());
        assert!(verdict(&loop_agreement("rp2", projective_plane_complex())).is_unsolvable());
    }

    #[test]
    fn renaming_family_verdicts() {
        // Task solvability admits identifier-based symmetry breaking, so
        // every finite renaming task here is solvable.
        assert!(verdict(&adaptive_renaming()).is_solvable());
        assert!(verdict(&renaming(5)).is_solvable());
        assert!(verdict(&renaming(4)).is_solvable());
        assert!(verdict(&renaming(3)).is_solvable());
    }

    #[test]
    fn leader_election_unsolvable_via_articulation() {
        let a = analyze(&leader_election(), PipelineOptions::default());
        match a.verdict {
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints { .. },
            } => {}
            other => panic!("expected LAP obstruction, got {other:?}"),
        }
        assert_eq!(a.split.steps.len(), 3, "the three loser vertices split");
        // The two-process variant is 2-consensus in disguise.
        assert!(verdict(&two_process_leader_election()).is_unsolvable());
    }

    #[test]
    fn approximate_agreement_solvable_at_all_resolutions() {
        for k in 1..=3 {
            assert!(
                verdict(&approximate_agreement(k)).is_solvable(),
                "resolution {k}"
            );
        }
    }

    #[test]
    fn repeated_analysis_hits_the_decision_cache() {
        // Prime the cache, then re-analyze the identical task: the second
        // run must be served from the cache. Other tests run concurrently
        // and also touch the process-wide counters, so assert monotone
        // deltas rather than absolute values.
        let task = two_set_agreement();
        let options = PipelineOptions::default();
        let first = analyze(&task, options);
        let primed = decision_cache_stats();
        let second = analyze(&task, options);
        let after = decision_cache_stats();
        assert!(
            after.hits > primed.hits,
            "expected a cache hit: {primed:?} -> {after:?}"
        );
        // The cached verdict is the one the tiers computed.
        assert_eq!(format!("{}", first.verdict), format!("{}", second.verdict));
    }

    #[test]
    fn clearing_the_decision_cache_is_transparent() {
        // Clearing mid-flight must not change any verdict, only force the
        // tiers to re-run; verdicts repopulate on the next analysis.
        let before = verdict(&hourglass());
        clear_decision_cache();
        let after = verdict(&hourglass());
        assert!(before.is_unsolvable() && after.is_unsolvable());
    }

    #[test]
    fn verdict_predicates() {
        let v = Verdict::Unknown { reason: "x".into() };
        assert!(!v.is_solvable());
        assert!(!v.is_unsolvable());
        assert!(format!("{v}").contains("UNKNOWN"));
    }

    #[test]
    fn analysis_display_summarizes() {
        let a = analyze(&hourglass(), PipelineOptions::default());
        let text = format!("{a}");
        assert!(text.contains("1 split step(s)"), "{text}");
        assert!(text.contains("UNSOLVABLE"), "{text}");
    }
}
