//! The end-to-end solvability pipeline (paper, Theorem 5.1).
//!
//! ```text
//! T ──validate──▶ restrict to reachable ──§3──▶ T* ──§4──▶ T' ──§5──▶ verdict
//! ```
//!
//! For three-process tasks the pipeline canonicalizes, eliminates local
//! articulation points, and checks the continuous-map condition on the
//! link-connected result. Two-process tasks are decided directly by
//! Proposition 5.4 (no splitting; the continuous check on a 1-dimensional
//! input is exact). One-process tasks are trivially solvable.
//!
//! Because loop contractibility is undecidable in general (§7), the
//! pipeline can return [`Verdict::Unknown`]; callers may enable the
//! bounded ACT fallback to turn some unknowns into `Solvable`.

// chromata-lint: allow(D1): imported for the key-addressed decision cache; every use is justified at its site
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Mutex, MutexGuard, OnceLock};

use chromata_task::{canonicalize, Task};
use chromata_topology::{Budget, CancelToken};

use crate::act::{solve_act_governed, ActOutcome};
use crate::continuous::{continuous_map_exists, ContinuousOutcome, ImpossibilityReason};
use crate::splitting::{split_all, SplitOutcome};

/// The pipeline's answer.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The task is wait-free solvable.
    Solvable {
        /// How solvability was certified.
        certificate: String,
    },
    /// The task is not wait-free solvable.
    Unsolvable {
        /// The obstruction class.
        obstruction: Obstruction,
    },
    /// The decidable tiers were exhausted without an answer.
    Unknown {
        /// Why the outcome is undetermined.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict is `Solvable`.
    #[must_use]
    pub fn is_solvable(&self) -> bool {
        matches!(self, Verdict::Solvable { .. })
    }

    /// Whether the verdict is `Unsolvable`.
    #[must_use]
    pub fn is_unsolvable(&self) -> bool {
        matches!(self, Verdict::Unsolvable { .. })
    }
}

/// The two obstruction classes the paper exposes (§7).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Obstruction {
    /// After splitting, the skeleton conditions fail: some input edge's
    /// solo choices cannot be connected in the split output — the
    /// *chromatic* obstruction created by local articulation points.
    ArticulationPoints {
        /// Human-readable witness description.
        witness: String,
    },
    /// The colorless obstruction: the triangle boundary loop is
    /// non-contractible at the homology level.
    Contractibility {
        /// Human-readable witness description.
        witness: String,
    },
}

impl fmt::Display for Obstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obstruction::ArticulationPoints { witness } => {
                write!(f, "local-articulation-point obstruction: {witness}")
            }
            Obstruction::Contractibility { witness } => {
                write!(f, "contractibility obstruction: {witness}")
            }
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Solvable { certificate } => write!(f, "SOLVABLE — {certificate}"),
            Verdict::Unsolvable { obstruction } => write!(f, "UNSOLVABLE — {obstruction}"),
            Verdict::Unknown { reason } => write!(f, "UNKNOWN — {reason}"),
        }
    }
}

/// A full analysis record: the intermediate tasks and the verdict.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The canonical task `T*` (§3).
    pub canonical: Task,
    /// The split, link-connected task `T'` and the splitting steps (§4).
    pub split: SplitOutcome,
    /// The pipeline verdict (§5).
    pub verdict: Verdict,
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "canonical |O*| = {} facets; {} split step(s); O' = {} facets in {} component(s)",
            self.canonical.output().facet_count(),
            self.split.steps.len(),
            self.split.task.output().facet_count(),
            self.split.task.output().connected_components().len(),
        )?;
        write!(f, "{}", self.verdict)
    }
}

/// Options controlling the pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOptions {
    /// If the continuous tier is undetermined, run the bounded ACT search
    /// with this many rounds (0 disables the fallback).
    pub act_fallback_rounds: usize,
}

/// Hit/miss counters for the [`analyze`] decision cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DecisionCacheStats {
    /// Verdicts served from the cache without re-running the decision tiers.
    pub hits: u64,
    /// Verdicts computed by the decision tiers and then cached.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
}

/// Default capacity of the global decision cache (entries), overridable
/// with the `CHROMATA_DECISION_CACHE_CAP` environment variable or
/// [`set_decision_cache_capacity`].
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Memoized verdicts, keyed by the canonical task and the ACT fallback
/// bound. Canonicalization is a quotient: syntactically different
/// presentations of the same task collapse to one key, so the (much more
/// expensive) splitting/continuous/ACT tiers run once per semantic task.
///
/// The cache is *bounded*: `queue` records insertion order and the
/// oldest entries are evicted first (FIFO) once `capacity` is reached,
/// so long-running processes cannot grow it without limit. Invariant:
/// `queue` holds each key of `verdicts` exactly once.
struct DecisionCache {
    // chromata-lint: allow(D1): key-addressed only; the one iteration (poison recovery) sorts by structural fingerprint
    verdicts: HashMap<(Task, usize), Verdict>,
    queue: VecDeque<(Task, usize)>,
    capacity: usize,
    stats: DecisionCacheStats,
}

impl DecisionCache {
    fn with_capacity(capacity: usize) -> Self {
        DecisionCache {
            verdicts: HashMap::new(), // chromata-lint: allow(D1): see the field's justification
            queue: VecDeque::new(),
            capacity,
            stats: DecisionCacheStats::default(),
        }
    }

    /// Looks up a verdict, bumping the hit/miss counters.
    fn get(&mut self, key: &(Task, usize)) -> Option<Verdict> {
        let found = self.verdicts.get(key).cloned();
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Inserts a verdict, evicting the oldest entries past capacity.
    fn insert(&mut self, key: (Task, usize), verdict: Verdict) {
        if self.capacity == 0 {
            return;
        }
        if self.verdicts.insert(key.clone(), verdict).is_none() {
            self.queue.push_back(key);
        }
        while self.verdicts.len() > self.capacity {
            let Some(oldest) = self.queue.pop_front() else {
                break;
            };
            self.verdicts.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    /// Validate-or-drop after recovering a poisoned lock: a worker that
    /// panicked mid-update may have inserted into `verdicts` without
    /// recording the key in `queue` (or vice versa). Individual entries
    /// are never torn (both structures are updated with complete values),
    /// so recovery re-derives the queue from the surviving map: orphaned
    /// queue keys are dropped, unqueued map keys are re-queued in
    /// structural-fingerprint order (hash-map iteration order must not
    /// decide future evictions — rule D1), and the capacity bound is
    /// re-imposed.
    fn restore_invariants(&mut self) {
        // chromata-lint: allow(D1): re-queue order is made deterministic by the fingerprint sort below
        let mut seen = std::collections::HashSet::new();
        self.queue
            .retain(|k| self.verdicts.contains_key(k) && seen.insert(k.clone()));
        let mut unqueued: Vec<(Task, usize)> = self
            .verdicts
            .keys()
            .filter(|k| !seen.contains(*k))
            .cloned()
            .collect();
        unqueued.sort_by_key(key_fingerprint);
        for k in unqueued {
            self.queue.push_back(k);
        }
        while self.verdicts.len() > self.capacity {
            let Some(oldest) = self.queue.pop_front() else {
                break;
            };
            self.verdicts.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn clear(&mut self) {
        self.verdicts.clear();
        self.queue.clear();
        self.stats = DecisionCacheStats::default();
    }
}

/// Deterministic total order on cache keys for poison recovery: the
/// fixed-key FNV structural fingerprint, identical across runs and
/// feature configurations (collisions would merely tie-break the
/// re-queue order, never affect a verdict).
fn key_fingerprint(key: &(Task, usize)) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = chromata_topology::StructuralHasher::default();
    key.hash(&mut h);
    h.finish()
}

fn decision_cache() -> &'static Mutex<DecisionCache> {
    static CACHE: OnceLock<Mutex<DecisionCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Environment reads go through `govern` (rule D2): configuration
        // is sampled once at cache initialization, never on a decision.
        let capacity = chromata_topology::govern::env_usize("CHROMATA_DECISION_CACHE_CAP")
            .unwrap_or(DEFAULT_CACHE_CAPACITY);
        Mutex::new(DecisionCache::with_capacity(capacity))
    })
}

/// Locks the global cache, recovering from poisoning: if a thread
/// panicked while holding the lock, the cache's cross-structure
/// invariants are re-validated (and violating entries dropped) before
/// the guard is handed out.
fn lock_cache() -> MutexGuard<'static, DecisionCache> {
    match decision_cache().lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            guard.restore_invariants();
            guard
        }
    }
}

/// Current decision-cache counters (process-wide).
#[must_use]
pub fn decision_cache_stats() -> DecisionCacheStats {
    lock_cache().stats
}

/// Drops all memoized verdicts and resets the counters.
pub fn clear_decision_cache() {
    lock_cache().clear();
}

/// Replaces the decision cache's capacity (process-wide), evicting the
/// oldest entries if the cache currently exceeds the new bound. A
/// capacity of 0 disables caching entirely.
pub fn set_decision_cache_capacity(capacity: usize) {
    let mut guard = lock_cache();
    guard.capacity = capacity;
    guard.restore_invariants();
}

/// Runs the full pipeline on a (1-, 2- or 3-process) task.
///
/// # Panics
///
/// Panics if the task has more than three processes — the splitting
/// deformation is specific to three processes (paper, §7).
///
/// # Examples
///
/// ```
/// use chromata::{analyze, PipelineOptions};
/// use chromata_task::library::{hourglass, identity_task};
///
/// assert!(analyze(&identity_task(3), PipelineOptions::default()).verdict.is_solvable());
/// assert!(analyze(&hourglass(), PipelineOptions::default()).verdict.is_unsolvable());
/// ```
#[must_use]
pub fn analyze(task: &Task, options: PipelineOptions) -> Analysis {
    analyze_governed(task, options, &Budget::unlimited(), &CancelToken::new())
}

/// [`analyze`] under a [`Budget`] and [`CancelToken`]: the ACT fallback
/// respects the wall-clock deadline and cooperative cancellation, and —
/// when a deadline is set — escalates its round cap through a doubling
/// ladder (`configured, 2×, 4×, …` up to `budget.max_act_rounds`) while
/// time remains. Exhaustion and interruption degrade to
/// [`Verdict::Unknown`] with a reason recording how far the analysis
/// got; interrupted verdicts are **not** cached, so a later run with a
/// larger budget re-decides from scratch.
#[must_use]
pub fn analyze_governed(
    task: &Task,
    options: PipelineOptions,
    budget: &Budget,
    cancel: &CancelToken,
) -> Analysis {
    assert!(
        task.process_count() <= 3,
        "the characterization is specific to at most three processes"
    );
    let reachable = task.restricted_to_reachable();
    let canonical = canonicalize(&reachable);
    let split = if task.process_count() == 3 {
        split_all(&canonical)
    } else {
        // Proposition 5.4: two-process tasks are decided on the raw task;
        // one-process tasks trivially.
        SplitOutcome {
            task: canonical.clone(),
            steps: Vec::new(),
            degenerate: None,
        }
    };
    let key = (canonical.clone(), options.act_fallback_rounds);
    let cached = lock_cache().get(&key);
    // Decide outside the lock; a racing miss recomputes the same verdict.
    let verdict = cached.unwrap_or_else(|| {
        let (v, cacheable) = decide(&split, options, budget, cancel);
        // Budget-induced answers are circumstantial — never poison the
        // cache with them; a later unstarved run must re-decide.
        if cacheable {
            lock_cache().insert(key, v.clone());
        }
        v
    });
    Analysis {
        canonical,
        split,
        verdict,
    }
}

/// Runs the decision tiers; the second component is whether the verdict
/// is budget-independent and therefore safe to memoize.
fn decide(
    split: &SplitOutcome,
    options: PipelineOptions,
    budget: &Budget,
    cancel: &CancelToken,
) -> (Verdict, bool) {
    if let Err(interrupt) = budget.check(cancel) {
        return (
            Verdict::Unknown {
                reason: format!("analysis {interrupt} before the decision tiers ran"),
            },
            false,
        );
    }
    if let Some(x) = &split.degenerate {
        return (
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints {
                    witness: format!(
                        "splitting emptied the solo image of input vertex {x}: \
                         the incident edges force incompatible link components"
                    ),
                },
            },
            true,
        );
    }
    let t = &split.task;
    match continuous_map_exists(t) {
        ContinuousOutcome::Exists { certificates, .. } => (
            Verdict::Solvable {
                certificate: if certificates.is_empty() {
                    "continuous carried map exists (vertex/edge tiers)".to_owned()
                } else {
                    certificates.join("; ")
                },
            },
            true,
        ),
        ContinuousOutcome::Impossible { reason } => {
            let obstruction = match reason {
                ImpossibilityReason::SkeletonDisconnected { edge } => {
                    Obstruction::ArticulationPoints {
                        witness: format!(
                            "after {} split step(s), no choice of solo outputs is connected across input edge {edge}",
                            split.steps.len()
                        ),
                    }
                }
                ImpossibilityReason::HomologyObstruction { triangle } => {
                    Obstruction::Contractibility {
                        witness: format!(
                            "the boundary loop of input triangle {triangle} is non-contractible (H1 certificate)"
                        ),
                    }
                }
                ImpossibilityReason::EmptyVertexImage(x) => Obstruction::ArticulationPoints {
                    witness: format!("input vertex {x} has an empty image"),
                },
            };
            (Verdict::Unsolvable { obstruction }, true)
        }
        ContinuousOutcome::Undetermined { reason } => {
            if options.act_fallback_rounds == 0 {
                return (Verdict::Unknown { reason }, true);
            }
            act_ladder(t, &reason, options.act_fallback_rounds, budget, cancel)
        }
    }
}

/// The retry-escalation ladder around the governed ACT fallback: start
/// at the configured round cap (clamped by the budget) and, when a
/// deadline is set, keep doubling the cap while wall-clock remains —
/// cheap first attempt, deeper retries only with leftover time.
fn act_ladder(
    t: &Task,
    undetermined_reason: &str,
    configured_rounds: usize,
    budget: &Budget,
    cancel: &CancelToken,
) -> (Verdict, bool) {
    let mut cap = configured_rounds.min(budget.max_act_rounds);
    loop {
        match solve_act_governed(t, &budget.with_max_act_rounds(cap), cancel) {
            ActOutcome::Solvable { rounds, .. } => {
                // A witness is budget-independent: always cacheable.
                return (
                    Verdict::Solvable {
                        certificate: format!(
                            "ACT fallback found a decision map at {rounds} round(s)"
                        ),
                    },
                    true,
                );
            }
            ActOutcome::Interrupted {
                rounds_completed,
                interrupt,
            } => {
                return (
                    Verdict::Unknown {
                        reason: format!(
                            "{undetermined_reason}; ACT fallback {interrupt} after ruling out \
                             {rounds_completed} of {cap} round(s)"
                        ),
                    },
                    false,
                );
            }
            ActOutcome::Exhausted { .. } => {
                let next = cap.saturating_mul(2).min(budget.max_act_rounds);
                if budget.deadline.is_none() || budget.deadline_exceeded() || next == cap {
                    // The verdict depends on the budget unless the ladder
                    // stopped exactly at the configured bound.
                    return (
                        Verdict::Unknown {
                            reason: format!(
                                "{undetermined_reason}; ACT fallback exhausted {cap} round(s)"
                            ),
                        },
                        cap == configured_rounds,
                    );
                }
                cap = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{
        adaptive_renaming, approximate_agreement, consensus, constant_task, disk_complex,
        hourglass, identity_task, leader_election, loop_agreement, majority_consensus, pinwheel,
        projective_plane_complex, renaming, sphere_complex, torus_complex, two_process_consensus,
        two_process_leader_election, two_set_agreement,
    };

    fn verdict(t: &Task) -> Verdict {
        analyze(t, PipelineOptions::default()).verdict
    }

    #[test]
    fn solvable_controls() {
        assert!(verdict(&identity_task(3)).is_solvable());
        assert!(verdict(&constant_task(3)).is_solvable());
        assert!(verdict(&identity_task(2)).is_solvable());
    }

    #[test]
    fn hourglass_unsolvable_via_articulation() {
        let a = analyze(&hourglass(), PipelineOptions::default());
        assert_eq!(a.split.steps.len(), 1);
        match a.verdict {
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints { .. },
            } => {}
            other => panic!("expected LAP obstruction, got {other:?}"),
        }
    }

    #[test]
    fn pinwheel_unsolvable() {
        let a = analyze(&pinwheel(), PipelineOptions::default());
        assert!(a.verdict.is_unsolvable());
        assert!(!a.split.steps.is_empty());
    }

    #[test]
    fn majority_consensus_unsolvable() {
        assert!(verdict(&majority_consensus()).is_unsolvable());
    }

    #[test]
    fn consensus_unsolvable_three_and_two() {
        assert!(verdict(&consensus(3)).is_unsolvable());
        assert!(verdict(&two_process_consensus()).is_unsolvable());
    }

    #[test]
    fn two_set_agreement_unsolvable_via_contractibility() {
        match verdict(&two_set_agreement()) {
            Verdict::Unsolvable {
                obstruction: Obstruction::Contractibility { .. },
            } => {}
            other => panic!("expected contractibility obstruction, got {other:?}"),
        }
    }

    #[test]
    fn klein_bottle_loops_span_the_verdict_spectrum() {
        use chromata_task::library::{klein_bottle_doubled_loop, klein_bottle_single_loop};
        // Torsion loop: exactly refuted by the H1 tier.
        let single = loop_agreement("klein-single", klein_bottle_single_loop());
        match verdict(&single) {
            Verdict::Unsolvable {
                obstruction: Obstruction::Contractibility { .. },
            } => {}
            other => panic!("expected torsion refutation, got {other:?}"),
        }
        // Doubled loop: null-homologous but not null-homotopic in the
        // infinite non-abelian π1 — the genuinely undecidable residue
        // (§7); the pipeline must answer Unknown, not guess.
        let doubled = loop_agreement("klein-doubled", klein_bottle_doubled_loop());
        match verdict(&doubled) {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("contractibility undecided"), "{reason}");
            }
            other => panic!("expected the honest Unknown, got {other:?}"),
        }
    }

    #[test]
    fn loop_agreement_verdicts_match_contractibility() {
        // Contractible loops: solvable.
        assert!(verdict(&loop_agreement("disk", disk_complex())).is_solvable());
        assert!(verdict(&loop_agreement("sphere", sphere_complex())).is_solvable());
        // Essential loops: unsolvable (torus: free abelian class; RP²:
        // torsion class — both caught by the H1 tier exactly).
        assert!(verdict(&loop_agreement("torus", torus_complex())).is_unsolvable());
        assert!(verdict(&loop_agreement("rp2", projective_plane_complex())).is_unsolvable());
    }

    #[test]
    fn renaming_family_verdicts() {
        // Task solvability admits identifier-based symmetry breaking, so
        // every finite renaming task here is solvable.
        assert!(verdict(&adaptive_renaming()).is_solvable());
        assert!(verdict(&renaming(5)).is_solvable());
        assert!(verdict(&renaming(4)).is_solvable());
        assert!(verdict(&renaming(3)).is_solvable());
    }

    #[test]
    fn leader_election_unsolvable_via_articulation() {
        let a = analyze(&leader_election(), PipelineOptions::default());
        match a.verdict {
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints { .. },
            } => {}
            other => panic!("expected LAP obstruction, got {other:?}"),
        }
        assert_eq!(a.split.steps.len(), 3, "the three loser vertices split");
        // The two-process variant is 2-consensus in disguise.
        assert!(verdict(&two_process_leader_election()).is_unsolvable());
    }

    #[test]
    fn approximate_agreement_solvable_at_all_resolutions() {
        for k in 1..=3 {
            assert!(
                verdict(&approximate_agreement(k)).is_solvable(),
                "resolution {k}"
            );
        }
    }

    #[test]
    fn repeated_analysis_hits_the_decision_cache() {
        // Prime the cache, then re-analyze the identical task: the second
        // run must be served from the cache. Other tests run concurrently
        // and also touch the process-wide counters, so assert monotone
        // deltas rather than absolute values.
        let task = two_set_agreement();
        let options = PipelineOptions::default();
        let first = analyze(&task, options);
        let primed = decision_cache_stats();
        let second = analyze(&task, options);
        let after = decision_cache_stats();
        assert!(
            after.hits > primed.hits,
            "expected a cache hit: {primed:?} -> {after:?}"
        );
        // The cached verdict is the one the tiers computed.
        assert_eq!(format!("{}", first.verdict), format!("{}", second.verdict));
    }

    #[test]
    fn clearing_the_decision_cache_is_transparent() {
        // Clearing mid-flight must not change any verdict, only force the
        // tiers to re-run; verdicts repopulate on the next analysis.
        let before = verdict(&hourglass());
        clear_decision_cache();
        let after = verdict(&hourglass());
        assert!(before.is_unsolvable() && after.is_unsolvable());
    }

    #[test]
    fn cache_is_bounded_with_fifo_eviction() {
        // Unit-level, on a private instance: the global cache is shared
        // with concurrently running tests.
        let mut cache = DecisionCache::with_capacity(2);
        let key = |n: usize| (identity_task(2), n);
        let v = Verdict::Unknown { reason: "x".into() };
        cache.insert(key(0), v.clone());
        cache.insert(key(1), v.clone());
        cache.insert(key(2), v.clone());
        assert_eq!(cache.verdicts.len(), 2);
        assert_eq!(cache.stats.evictions, 1);
        // FIFO: the oldest key was evicted, the newer two survive.
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert_eq!(cache.stats.hits, 2);
        assert_eq!(cache.stats.misses, 1);
        // Re-inserting an existing key neither grows nor evicts.
        cache.insert(key(1), v);
        assert_eq!(cache.verdicts.len(), 2);
        assert_eq!(cache.stats.evictions, 1);
        // A zero-capacity cache stores nothing.
        let mut off = DecisionCache::with_capacity(0);
        off.insert(key(9), Verdict::Unknown { reason: "y".into() });
        assert!(off.verdicts.is_empty() && off.queue.is_empty());
    }

    #[test]
    fn poison_recovery_validates_or_drops() {
        // Unit-level check of the recovery routine itself: an orphaned
        // queue key (map insert lost to a panic) is dropped; an unqueued
        // map key (queue push lost to a panic) is re-queued, not dropped.
        let mut cache = DecisionCache::with_capacity(4);
        let v = Verdict::Unknown { reason: "x".into() };
        cache.insert((identity_task(2), 0), v.clone());
        cache.queue.push_back((identity_task(2), 7)); // orphan: not in map
        cache.verdicts.insert((identity_task(2), 8), v); // unqueued
        cache.restore_invariants();
        assert_eq!(cache.queue.len(), cache.verdicts.len());
        assert!(cache.queue.iter().all(|k| cache.verdicts.contains_key(k)));
        assert!(cache.verdicts.contains_key(&(identity_task(2), 8)));
        assert!(!cache.queue.contains(&(identity_task(2), 7)));
    }

    #[test]
    fn panicked_worker_poisons_then_cache_recovers_and_redecides() {
        // Regression: a worker that panics while holding the cache lock
        // (mid-decision bookkeeping) poisons the mutex. Every later
        // analysis must transparently recover — re-validating the cache —
        // and identical calls must still decide correctly.
        let before = verdict(&hourglass());
        let _ = std::thread::spawn(|| {
            let mut guard = decision_cache().lock().unwrap();
            // Tear the invariant the way an interrupted insert would:
            // queued key without a map entry — then die holding the lock.
            guard.queue.push_back((identity_task(2), usize::MAX));
            panic!("worker dies mid-decision");
        })
        .join();
        let after = verdict(&hourglass());
        assert!(before.is_unsolvable() && after.is_unsolvable());
        assert_eq!(format!("{before}"), format!("{after}"));
        // The torn queue entry was dropped by validation.
        let guard = lock_cache();
        assert!(!guard.queue.contains(&(identity_task(2), usize::MAX)));
        assert_eq!(guard.queue.len(), guard.verdicts.len());
    }

    #[test]
    fn starved_analysis_degrades_to_uncached_unknown() {
        // A cancelled analysis answers Unknown instead of panicking, and
        // the circumstantial verdict is NOT cached: the same call with an
        // unlimited budget re-decides and gets the real answer. (Task
        // names participate in the cache key, so the unique name keeps
        // this test independent of concurrently cached verdicts.)
        let task = loop_agreement("starved-probe", torus_complex());
        let cancel = CancelToken::new();
        cancel.cancel();
        let starved = analyze_governed(
            &task,
            PipelineOptions::default(),
            &Budget::unlimited(),
            &cancel,
        );
        match &starved.verdict {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("cancelled"), "{reason}");
            }
            other => panic!("expected a graceful Unknown, got {other:?}"),
        }
        let recovered = analyze(&task, PipelineOptions::default());
        assert!(recovered.verdict.is_unsolvable(), "re-decided from scratch");
    }

    #[test]
    fn deadline_escalation_ladder_reports_progress() {
        use chromata_task::library::{klein_bottle_doubled_loop, loop_agreement};
        // The doubled Klein loop hits the undecidable residue, so the ACT
        // fallback actually runs; an already-elapsed deadline interrupts
        // it and the reason records the partial progress.
        let task = loop_agreement("klein-doubled-governed", klein_bottle_doubled_loop());
        let budget = Budget::unlimited()
            .with_max_act_rounds(4)
            .with_deadline_in(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = analyze_governed(
            &task,
            PipelineOptions {
                act_fallback_rounds: 1,
            },
            &budget,
            &CancelToken::new(),
        );
        match &a.verdict {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("deadline exceeded"), "{reason}");
            }
            other => panic!("expected budget-limited Unknown, got {other:?}"),
        }
    }

    #[test]
    fn verdict_predicates() {
        let v = Verdict::Unknown { reason: "x".into() };
        assert!(!v.is_solvable());
        assert!(!v.is_unsolvable());
        assert!(format!("{v}").contains("UNKNOWN"));
    }

    #[test]
    fn analysis_display_summarizes() {
        let a = analyze(&hourglass(), PipelineOptions::default());
        let text = format!("{a}");
        assert!(text.contains("1 split step(s)"), "{text}");
        assert!(text.contains("UNSOLVABLE"), "{text}");
    }

    /// The cross-structure invariants every `DecisionCache` op must
    /// preserve: `queue` holds each key of `verdicts` exactly once, and
    /// the capacity bound is respected.
    fn assert_cache_invariants(cache: &DecisionCache, context: &str) {
        assert_eq!(cache.queue.len(), cache.verdicts.len(), "{context}");
        assert!(cache.verdicts.len() <= cache.capacity, "{context}");
        let mut seen = std::collections::BTreeSet::new();
        for k in &cache.queue {
            assert!(
                cache.verdicts.contains_key(k),
                "orphan queue key: {context}"
            );
            assert!(
                seen.insert(key_fingerprint(k)),
                "duplicate queue key: {context}"
            );
        }
    }

    /// Loom-style exhaustive op-level model check of the FIFO
    /// `DecisionCache` (see `chromata_topology::interleave`): every op
    /// runs under the cache mutex, so concurrent behaviour is fully
    /// determined by the commit order. Enumerate every interleaving of
    /// the per-thread op programs, replay each sequentially, and assert
    /// (a) the cross-structure invariants after every op, and (b) that
    /// replaying the same schedule twice produces the identical queue —
    /// no hash-map iteration order may leak into eviction order (rule
    /// D1). `--cfg chromata_loom` raises thread count and depth.
    #[test]
    fn decision_cache_exhaustive_interleavings() {
        use chromata_topology::interleave::{depth_budget, for_each_interleaving, max_threads};

        #[derive(Clone, Copy)]
        enum Op {
            /// Insert a verdict for key `k`.
            Insert(usize),
            /// Look up key `k`.
            Get(usize),
            /// Poison recovery ran (models a worker panic + re-lock).
            Restore,
        }
        let keys: Vec<(Task, usize)> = vec![
            (identity_task(2), 0),
            (identity_task(2), 1),
            (constant_task(2), 0),
            (two_process_consensus(), 0),
        ];
        let verdict = Verdict::Solvable {
            certificate: "model".into(),
        };
        let threads = max_threads();
        let depth = depth_budget();
        // Thread t's program: insert its own key, probe a shared key,
        // insert the shared key (contended), then recover — truncated to
        // the depth budget.
        let programs: Vec<Vec<Op>> = (0..threads)
            .map(|t| {
                let mut p = vec![
                    Op::Insert(t),
                    Op::Get(threads),
                    Op::Insert(threads),
                    Op::Restore,
                ];
                p.truncate(depth);
                p
            })
            .collect();
        let counts: Vec<usize> = programs.iter().map(Vec::len).collect();
        let replay = |schedule: &[usize]| -> Vec<u64> {
            let mut cache = DecisionCache::with_capacity(2);
            let mut pc = vec![0usize; threads];
            for (step, &t) in schedule.iter().enumerate() {
                let op = programs[t][pc[t]];
                pc[t] += 1;
                match op {
                    Op::Insert(k) => cache.insert(keys[k].clone(), verdict.clone()),
                    Op::Get(k) => {
                        cache.get(&keys[k]);
                    }
                    Op::Restore => cache.restore_invariants(),
                }
                assert_cache_invariants(&cache, &format!("after step {step} of {schedule:?}"));
            }
            cache.queue.iter().map(key_fingerprint).collect()
        };
        let mut schedules = 0usize;
        for_each_interleaving(&counts, |schedule| {
            schedules += 1;
            assert_eq!(
                replay(schedule),
                replay(schedule),
                "non-deterministic replay of {schedule:?}"
            );
        });
        assert!(
            schedules >= 20,
            "expected full enumeration, got {schedules}"
        );
    }

    /// Poison recovery repairs torn states deterministically: keys
    /// inserted into `verdicts` without being queued (the worst a panic
    /// mid-update can leave behind) are re-queued in structural-
    /// fingerprint order, independent of hash-map iteration order.
    #[test]
    fn decision_cache_restore_repairs_torn_writes() {
        let keys: Vec<(Task, usize)> = (0..4usize).map(|r| (identity_task(2), r)).collect();
        let run = |insertion_order: &[usize]| -> Vec<u64> {
            let mut cache = DecisionCache::with_capacity(8);
            for &i in insertion_order {
                // Tear: map updated, queue not (simulates a panic between
                // the two updates under the lock).
                cache.verdicts.insert(
                    keys[i].clone(),
                    Verdict::Solvable {
                        certificate: "model".into(),
                    },
                );
            }
            // Also an orphan queue entry with no verdict.
            cache.queue.push_back((constant_task(2), 9));
            cache.restore_invariants();
            assert_cache_invariants(&cache, "after restore");
            cache.queue.iter().map(key_fingerprint).collect()
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 1, 0, 2]);
        assert_eq!(a.len(), 4);
        assert_eq!(a, b, "re-queue order must not depend on insertion order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted, "re-queue order is fingerprint-sorted");
    }
}
