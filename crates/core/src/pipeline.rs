//! The end-to-end solvability pipeline (paper, Theorem 5.1).
//!
//! ```text
//! T ──validate──▶ restrict to reachable ──§3──▶ T* ──§4──▶ T' ──§5──▶ verdict
//! ```
//!
//! For three-process tasks the pipeline canonicalizes, eliminates local
//! articulation points, and checks the continuous-map condition on the
//! link-connected result. Two-process tasks are decided directly by
//! Proposition 5.4 (no splitting; the continuous check on a 1-dimensional
//! input is exact). One-process tasks are trivially solvable.
//!
//! Since PR 4 the decision tiers run as a *staged verdict engine* (see
//! [`crate::stages`]): each tier is a [`Stage`](crate::stages::Stage)
//! with its own bounded, fingerprint-keyed cache in the process-wide
//! [`ArtifactStore`](crate::stages::cache::ArtifactStore), and every
//! [`Analysis`] carries the [`EvidenceChain`] of the stages that
//! produced its verdict. [`analyze`] and [`analyze_governed`] are
//! source-compatible façades over the engine; [`analyze_batch`] fans it
//! out over a task slice with shared artifacts.
//!
//! Because loop contractibility is undecidable in general (§7), the
//! pipeline can return [`Verdict::Unknown`]; callers may enable the
//! bounded ACT fallback to turn some unknowns into `Solvable`.

use std::fmt;

use chromata_task::Task;
use chromata_topology::{par_map, Budget, CancelToken};

use crate::splitting::SplitOutcome;
use crate::stages::cache::{self, ArtifactKind};
use crate::stages::persist;
use crate::stages::EvidenceChain;

pub use crate::stages::cache::DecisionCacheStats;

/// The pipeline's answer.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The task is wait-free solvable.
    Solvable {
        /// How solvability was certified.
        certificate: String,
    },
    /// The task is not wait-free solvable.
    Unsolvable {
        /// The obstruction class.
        obstruction: Obstruction,
    },
    /// The decidable tiers were exhausted without an answer.
    Unknown {
        /// Why the outcome is undetermined.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict is `Solvable`.
    #[must_use]
    pub fn is_solvable(&self) -> bool {
        matches!(self, Verdict::Solvable { .. })
    }

    /// Whether the verdict is `Unsolvable`.
    #[must_use]
    pub fn is_unsolvable(&self) -> bool {
        matches!(self, Verdict::Unsolvable { .. })
    }
}

/// The two obstruction classes the paper exposes (§7).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Obstruction {
    /// After splitting, the skeleton conditions fail: some input edge's
    /// solo choices cannot be connected in the split output — the
    /// *chromatic* obstruction created by local articulation points.
    ArticulationPoints {
        /// Human-readable witness description.
        witness: String,
    },
    /// The colorless obstruction: the triangle boundary loop is
    /// non-contractible at the homology level.
    Contractibility {
        /// Human-readable witness description.
        witness: String,
    },
}

impl fmt::Display for Obstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obstruction::ArticulationPoints { witness } => {
                write!(f, "local-articulation-point obstruction: {witness}")
            }
            Obstruction::Contractibility { witness } => {
                write!(f, "contractibility obstruction: {witness}")
            }
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Solvable { certificate } => write!(f, "SOLVABLE — {certificate}"),
            Verdict::Unsolvable { obstruction } => write!(f, "UNSOLVABLE — {obstruction}"),
            Verdict::Unknown { reason } => write!(f, "UNKNOWN — {reason}"),
        }
    }
}

/// A full analysis record: the intermediate tasks, the verdict, and the
/// evidence chain of the stages that produced it.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The canonical task `T*` (§3).
    pub canonical: Task,
    /// The split, link-connected task `T'` and the splitting steps (§4).
    pub split: SplitOutcome,
    /// The pipeline verdict (§5).
    pub verdict: Verdict,
    /// Per-stage evidence: which stages ran (or were replayed from the
    /// verdict cache), what they concluded, and what they cost.
    pub evidence: EvidenceChain,
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "canonical |O*| = {} facets; {} split step(s); O' = {} facets in {} component(s)",
            self.canonical.output().facet_count(),
            self.split.steps.len(),
            self.split.task.output().facet_count(),
            self.split.task.output().connected_components().len(),
        )?;
        write!(f, "{}", self.verdict)
    }
}

/// Options controlling the pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOptions {
    /// If the continuous tier is undetermined, run the bounded ACT search
    /// with this many rounds (0 disables the fallback).
    pub act_fallback_rounds: usize,
}

/// Current verdict-cache counters (process-wide).
///
/// The single decision cache was split into per-stage caches in PR 4;
/// this shim reports the **verdict** cache only.
#[deprecated(note = "use `stage_cache_stats()` for per-stage counters")]
#[must_use]
pub fn decision_cache_stats() -> DecisionCacheStats {
    cache::store().verdict.lock().stats()
}

/// Drops every memoized artifact of every stage and resets the counters.
pub fn clear_decision_cache() {
    cache::clear_stage_caches();
}

/// Replaces the verdict cache's capacity (process-wide), evicting the
/// oldest entries if the cache currently exceeds the new bound. A
/// capacity of 0 disables verdict caching entirely. Other stage caches
/// are controlled via [`cache::set_stage_cache_capacity`].
pub fn set_decision_cache_capacity(capacity: usize) {
    cache::set_stage_cache_capacity(ArtifactKind::Verdict, capacity);
}

/// Runs the full pipeline on a (1-, 2- or 3-process) task.
///
/// # Panics
///
/// Panics if the task has more than three processes — the splitting
/// deformation is specific to three processes (paper, §7).
///
/// # Examples
///
/// ```
/// use chromata::{analyze, PipelineOptions};
/// use chromata_task::library::{hourglass, identity_task};
///
/// assert!(analyze(&identity_task(3), PipelineOptions::default()).verdict.is_solvable());
/// assert!(analyze(&hourglass(), PipelineOptions::default()).verdict.is_unsolvable());
/// ```
#[must_use]
pub fn analyze(task: &Task, options: PipelineOptions) -> Analysis {
    analyze_governed(task, options, &Budget::unlimited(), &CancelToken::new())
}

/// [`analyze`] under a [`Budget`] and [`CancelToken`]: the ACT fallback
/// respects the wall-clock deadline and cooperative cancellation, and —
/// when a deadline is set — escalates its round cap through a doubling
/// ladder (`configured, 2×, 4×, …` up to `budget.max_act_rounds`) while
/// time remains. Exhaustion and interruption degrade to
/// [`Verdict::Unknown`] with a reason recording how far the analysis
/// got; interrupted verdicts are **not** cached, so a later run with a
/// larger budget re-decides from scratch.
#[must_use]
pub fn analyze_governed(
    task: &Task,
    options: PipelineOptions,
    budget: &Budget,
    cancel: &CancelToken,
) -> Analysis {
    assert!(
        task.process_count() <= 3,
        "the characterization is specific to at most three processes"
    );
    // The entire decision path lives in the stage layer since PR 9 (the
    // former monolith remnants — canonicalization evidence, the skip-split
    // shortcut, verdict-cache replay and the tier walk — were folded into
    // `stages::run_engine`); this façade only validates and delegates.
    crate::stages::run_engine(task, options, budget, cancel)
}

/// [`analyze`] over a batch of tasks, fanned out with the workspace's
/// panic-safe scoped-thread `par_map` (sequential without the `parallel`
/// feature). All analyses share the process-wide [`ArtifactStore`], so
/// tasks with a common canonical form — or merely common split/link
/// artifacts — are decided once; verdicts and evidence digests are
/// byte-identical to running [`analyze`] per task.
#[must_use]
pub fn analyze_batch(tasks: &[Task], options: PipelineOptions) -> Vec<Analysis> {
    analyze_batch_governed(tasks, options, &Budget::unlimited(), &CancelToken::new())
}

/// [`analyze_batch`] under a shared [`Budget`] and [`CancelToken`].
#[must_use]
pub fn analyze_batch_governed(
    tasks: &[Task],
    options: PipelineOptions,
    budget: &Budget,
    cancel: &CancelToken,
) -> Vec<Analysis> {
    par_map(tasks, |t| analyze_governed(t, options, budget, cancel))
}

/// The persistence bookkeeping of one [`analyze_persistent`] /
/// [`analyze_batch_persistent`] call. A save failure is reported here —
/// never raised — because persistence must not poison a verdict.
#[derive(Clone, Debug, Default)]
pub struct PersistenceReport {
    /// What the warm start restored — `None` when persistence is
    /// disabled or this directory was already loaded by this process.
    pub loaded: Option<persist::LoadReport>,
    /// What the post-analysis snapshot wrote, when it succeeded.
    pub saved: Option<persist::SaveReport>,
    /// The snapshot failure, when saving did not succeed. Verdicts are
    /// unaffected; the previous on-disk snapshots stay valid.
    pub save_error: Option<persist::PersistError>,
}

fn persist_after(cache_dir: &persist::CacheDirConfig, report: &mut PersistenceReport) {
    match persist::persist_now(cache_dir) {
        Some(Ok(saved)) => report.saved = Some(saved),
        Some(Err(error)) => report.save_error = Some(error),
        None => {}
    }
}

/// [`analyze`] with durable stage caches: warm-starts the process-wide
/// [`ArtifactStore`] from `cache_dir` (once per directory per process),
/// analyzes, then snapshots the caches back. Verdicts and evidence
/// digests are byte-identical to a cold [`analyze`]; corruption on disk
/// degrades to recovery counters, and a save failure is reported — not
/// raised.
#[must_use]
pub fn analyze_persistent(
    task: &Task,
    options: PipelineOptions,
    cache_dir: &persist::CacheDirConfig,
) -> (Analysis, PersistenceReport) {
    let mut report = PersistenceReport {
        loaded: persist::warm_start(cache_dir),
        ..PersistenceReport::default()
    };
    let analysis = analyze(task, options);
    persist_after(cache_dir, &mut report);
    (analysis, report)
}

/// [`analyze_batch`] with durable stage caches: one warm start before
/// the fan-out, one snapshot after every task is decided.
#[must_use]
pub fn analyze_batch_persistent(
    tasks: &[Task],
    options: PipelineOptions,
    cache_dir: &persist::CacheDirConfig,
) -> (Vec<Analysis>, PersistenceReport) {
    let mut report = PersistenceReport {
        loaded: persist::warm_start(cache_dir),
        ..PersistenceReport::default()
    };
    let analyses = analyze_batch(tasks, options);
    persist_after(cache_dir, &mut report);
    (analyses, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::CacheEvent;
    use chromata_task::library::{
        adaptive_renaming, approximate_agreement, consensus, constant_task, disk_complex,
        hourglass, identity_task, leader_election, loop_agreement, majority_consensus, pinwheel,
        projective_plane_complex, renaming, sphere_complex, torus_complex, two_process_consensus,
        two_process_leader_election, two_set_agreement,
    };

    fn verdict(t: &Task) -> Verdict {
        analyze(t, PipelineOptions::default()).verdict
    }

    #[test]
    fn solvable_controls() {
        assert!(verdict(&identity_task(3)).is_solvable());
        assert!(verdict(&constant_task(3)).is_solvable());
        assert!(verdict(&identity_task(2)).is_solvable());
    }

    #[test]
    fn hourglass_unsolvable_via_articulation() {
        let a = analyze(&hourglass(), PipelineOptions::default());
        assert_eq!(a.split.steps.len(), 1);
        match a.verdict {
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints { .. },
            } => {}
            other => panic!("expected LAP obstruction, got {other:?}"),
        }
    }

    #[test]
    fn pinwheel_unsolvable() {
        let a = analyze(&pinwheel(), PipelineOptions::default());
        assert!(a.verdict.is_unsolvable());
        assert!(!a.split.steps.is_empty());
    }

    #[test]
    fn majority_consensus_unsolvable() {
        assert!(verdict(&majority_consensus()).is_unsolvable());
    }

    #[test]
    fn consensus_unsolvable_three_and_two() {
        assert!(verdict(&consensus(3)).is_unsolvable());
        assert!(verdict(&two_process_consensus()).is_unsolvable());
    }

    #[test]
    fn two_set_agreement_unsolvable_via_contractibility() {
        match verdict(&two_set_agreement()) {
            Verdict::Unsolvable {
                obstruction: Obstruction::Contractibility { .. },
            } => {}
            other => panic!("expected contractibility obstruction, got {other:?}"),
        }
    }

    #[test]
    fn klein_bottle_loops_span_the_verdict_spectrum() {
        use chromata_task::library::{klein_bottle_doubled_loop, klein_bottle_single_loop};
        // Torsion loop: exactly refuted by the H1 tier.
        let single = loop_agreement("klein-single", klein_bottle_single_loop());
        match verdict(&single) {
            Verdict::Unsolvable {
                obstruction: Obstruction::Contractibility { .. },
            } => {}
            other => panic!("expected torsion refutation, got {other:?}"),
        }
        // Doubled loop: null-homologous but not null-homotopic in the
        // infinite non-abelian π1 — the genuinely undecidable residue
        // (§7); the pipeline must answer Unknown, not guess.
        let doubled = loop_agreement("klein-doubled", klein_bottle_doubled_loop());
        match verdict(&doubled) {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("contractibility undecided"), "{reason}");
            }
            other => panic!("expected the honest Unknown, got {other:?}"),
        }
    }

    #[test]
    fn loop_agreement_verdicts_match_contractibility() {
        // Contractible loops: solvable.
        assert!(verdict(&loop_agreement("disk", disk_complex())).is_solvable());
        assert!(verdict(&loop_agreement("sphere", sphere_complex())).is_solvable());
        // Essential loops: unsolvable (torus: free abelian class; RP²:
        // torsion class — both caught by the H1 tier exactly).
        assert!(verdict(&loop_agreement("torus", torus_complex())).is_unsolvable());
        assert!(verdict(&loop_agreement("rp2", projective_plane_complex())).is_unsolvable());
    }

    #[test]
    fn renaming_family_verdicts() {
        // Task solvability admits identifier-based symmetry breaking, so
        // every finite renaming task here is solvable.
        assert!(verdict(&adaptive_renaming()).is_solvable());
        assert!(verdict(&renaming(5)).is_solvable());
        assert!(verdict(&renaming(4)).is_solvable());
        assert!(verdict(&renaming(3)).is_solvable());
    }

    #[test]
    fn leader_election_unsolvable_via_articulation() {
        let a = analyze(&leader_election(), PipelineOptions::default());
        match a.verdict {
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints { .. },
            } => {}
            other => panic!("expected LAP obstruction, got {other:?}"),
        }
        assert_eq!(a.split.steps.len(), 3, "the three loser vertices split");
        // The two-process variant is 2-consensus in disguise.
        assert!(verdict(&two_process_leader_election()).is_unsolvable());
    }

    #[test]
    fn approximate_agreement_solvable_at_all_resolutions() {
        for k in 1..=3 {
            assert!(
                verdict(&approximate_agreement(k)).is_solvable(),
                "resolution {k}"
            );
        }
    }

    #[test]
    #[allow(deprecated)] // exercising the compat shim is the point
    fn repeated_analysis_hits_the_decision_cache() {
        // Prime the cache, then re-analyze the identical task: the second
        // run must be served from the cache. Other tests run concurrently
        // and also touch the process-wide counters, so assert monotone
        // deltas rather than absolute values.
        let task = two_set_agreement();
        let options = PipelineOptions::default();
        let first = analyze(&task, options);
        let primed = decision_cache_stats();
        let second = analyze(&task, options);
        let after = decision_cache_stats();
        assert!(
            after.hits > primed.hits,
            "expected a cache hit: {primed:?} -> {after:?}"
        );
        // The cached verdict is the one the tiers computed.
        assert_eq!(format!("{}", first.verdict), format!("{}", second.verdict));
    }

    #[test]
    fn clearing_the_decision_cache_is_transparent() {
        // Clearing mid-flight must not change any verdict, only force the
        // tiers to re-run; verdicts repopulate on the next analysis.
        let before = verdict(&hourglass());
        clear_decision_cache();
        let after = verdict(&hourglass());
        assert!(before.is_unsolvable() && after.is_unsolvable());
    }

    #[test]
    fn panicked_worker_poisons_then_cache_recovers_and_redecides() {
        // Regression: a worker that panics while holding the verdict-cache
        // lock (mid-decision bookkeeping) poisons the mutex. Every later
        // analysis must transparently recover — re-validating the cache —
        // and identical calls must still decide correctly.
        let before = verdict(&hourglass());
        let _ = std::thread::spawn(|| {
            let _guard = cache::store().verdict.lock();
            panic!("worker dies mid-decision");
        })
        .join();
        let after = verdict(&hourglass());
        assert!(before.is_unsolvable() && after.is_unsolvable());
        assert_eq!(format!("{before}"), format!("{after}"));
    }

    #[test]
    fn starved_analysis_degrades_to_uncached_unknown() {
        // A cancelled analysis answers Unknown instead of panicking, and
        // the circumstantial verdict is NOT cached: the same call with an
        // unlimited budget re-decides and gets the real answer. (Task
        // names participate in the cache key, so the unique name keeps
        // this test independent of concurrently cached verdicts.)
        let task = loop_agreement("starved-probe", torus_complex());
        let cancel = CancelToken::new();
        cancel.cancel();
        let starved = analyze_governed(
            &task,
            PipelineOptions::default(),
            &Budget::unlimited(),
            &cancel,
        );
        match &starved.verdict {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("cancelled"), "{reason}");
            }
            other => panic!("expected a graceful Unknown, got {other:?}"),
        }
        assert_eq!(starved.evidence.decided_by, "budget");
        let recovered = analyze(&task, PipelineOptions::default());
        assert!(recovered.verdict.is_unsolvable(), "re-decided from scratch");
    }

    #[test]
    fn deadline_escalation_ladder_reports_progress() {
        use chromata_task::library::{klein_bottle_doubled_loop, loop_agreement};
        // The doubled Klein loop hits the undecidable residue, so the ACT
        // fallback actually runs; an already-elapsed deadline interrupts
        // it and the reason records the partial progress.
        let task = loop_agreement("klein-doubled-governed", klein_bottle_doubled_loop());
        let budget = Budget::unlimited()
            .with_max_act_rounds(4)
            .with_deadline_in(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = analyze_governed(
            &task,
            PipelineOptions {
                act_fallback_rounds: 1,
            },
            &budget,
            &CancelToken::new(),
        );
        match &a.verdict {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("deadline exceeded"), "{reason}");
            }
            other => panic!("expected budget-limited Unknown, got {other:?}"),
        }
        // The elapsed deadline trips the pre-tier budget check, so the
        // budget guard is the deciding "stage".
        assert_eq!(a.evidence.decided_by, "budget");
    }

    #[test]
    fn verdict_predicates() {
        let v = Verdict::Unknown { reason: "x".into() };
        assert!(!v.is_solvable());
        assert!(!v.is_unsolvable());
        assert!(format!("{v}").contains("UNKNOWN"));
    }

    #[test]
    fn analysis_display_summarizes() {
        let a = analyze(&hourglass(), PipelineOptions::default());
        let text = format!("{a}");
        assert!(text.contains("1 split step(s)"), "{text}");
        assert!(text.contains("UNSOLVABLE"), "{text}");
    }

    #[test]
    fn evidence_chain_names_the_deciding_stage() {
        // The solvable control decides at the homology tier, and the
        // chain records every stage the engine ran, in order.
        let a = analyze(&identity_task(3), PipelineOptions::default());
        assert_eq!(a.evidence.decided_by, "homology");
        let names: Vec<&str> = a.evidence.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            names,
            [
                "canonicalize",
                "split",
                "link-graphs",
                "presentations",
                "homology"
            ],
            "unexpected stage order"
        );
        // Two-process tasks skip splitting but still record the stage.
        let two = analyze(&identity_task(2), PipelineOptions::default());
        assert!(two
            .evidence
            .stages
            .iter()
            .any(|s| s.stage == "split" && s.detail.contains("Proposition 5.4")));
    }

    #[test]
    fn cached_analysis_replays_identical_evidence() {
        // A verdict-cache hit replays the deterministic traces, so the
        // digest matches the cold run exactly. (The unique task name
        // keeps this probe independent of concurrently cached verdicts.)
        let task = loop_agreement("evidence-replay-probe", torus_complex());
        let first = analyze(&task, PipelineOptions::default());
        let second = analyze(&task, PipelineOptions::default());
        assert_eq!(
            first.evidence.deterministic_digest(),
            second.evidence.deterministic_digest()
        );
        assert_eq!(first.evidence.decided_by, second.evidence.decided_by);
        assert!(
            second
                .evidence
                .stages
                .iter()
                .any(|s| s.cache == CacheEvent::Replayed),
            "second run should replay from the verdict cache"
        );
    }

    #[test]
    fn analyze_batch_matches_sequential() {
        let tasks = vec![identity_task(3), hourglass(), two_set_agreement()];
        let batch = analyze_batch(&tasks, PipelineOptions::default());
        assert_eq!(batch.len(), tasks.len());
        for (t, b) in tasks.iter().zip(&batch) {
            let solo = analyze(t, PipelineOptions::default());
            assert_eq!(format!("{}", solo.verdict), format!("{}", b.verdict));
            assert_eq!(
                solo.evidence.deterministic_digest(),
                b.evidence.deterministic_digest(),
                "evidence diverged for {}",
                t.name()
            );
        }
    }
}
