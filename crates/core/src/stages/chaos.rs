//! Seeded fault-injection for end-to-end chaos campaigns.
//!
//! The paper's subject is correctness under adversarial executions, and
//! the fault-model framing of Gafni–Kuznetsov–Manolescu treats a fault
//! model as a *set of runs*: the serving stack's standing invariants
//! (never a wrong verdict, digest parity with a clean run, bounded
//! recovery) must hold not just under the hand-picked single faults the
//! unit suites inject, but under randomized *composed* schedules of
//! them. This module supplies the injectable machinery; the campaign
//! driver lives in the CLI (`chromata chaos`).
//!
//! Three seams are armed here, mirroring the production seams exactly:
//!
//! * **[`PersistChaos`]** — implements the persist layer's I/O seam and
//!   installs itself process-wide, so a scheduled ENOSPC, short write,
//!   or kill-point hits the *real* [`persist_now`](super::persist::persist_now)
//!   path the daemon's cadence thread calls;
//! * **[`ChaosShardIo`]** — wraps any [`ShardIo`] and injects
//!   partitions, stalls, mid-response kills, and corrupt-but-valid-
//!   checksum artifacts (the latter exercising the engine's semantic
//!   re-validation, `invalid_artifact`);
//! * **[`InProcessShards`]** — a loopback [`ShardIo`] executing stage
//!   jobs in-process (the worker code path without sockets), so a
//!   campaign can run a multi-shard pool inside one process.
//!
//! Schedules are produced by [`FaultSchedule`]: xorshift64*-seeded
//! (the same discipline as the task mutator and the remote engine's
//! backoff jitter), a pure function of `(seed, round)` so any campaign
//! replays exactly from its seed.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use serde_json::Value;

use super::persist::{self, PersistIo, RealIo};
use super::remote::{ShardIo, ShardIoError, ShardStep};

/// Poison-recovering lock: chaos bookkeeping is all counters and maps,
/// so a panicking holder cannot leave them torn.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// xorshift64* step — the workspace's deterministic generator (same as
/// the task mutator and the remote engine's backoff jitter).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// FNV-1a over bytes — the stage-response checksum (same constants as
/// the persist and remote layers), needed to re-checksum a tampered
/// artifact so it stays wire-valid.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Fault vocabulary
// ---------------------------------------------------------------------------

/// The four fault families a campaign can enable (`--faults`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultKind {
    /// Snapshot I/O faults through the persist seam.
    Persist,
    /// Shard-exchange faults through the [`ShardIo`] seam.
    Shard,
    /// Admission-layer abuse over real connections (floods, slow-loris,
    /// malformed bursts) — armed by the CLI driver, not this module.
    Net,
    /// Graceful-shutdown signal followed by a warm restart.
    Signal,
}

/// Every fault family, in canonical order.
pub const ALL_FAULT_KINDS: [FaultKind; 4] = [
    FaultKind::Persist,
    FaultKind::Shard,
    FaultKind::Net,
    FaultKind::Signal,
];

impl FaultKind {
    /// Stable lower-case label (the `--faults` vocabulary).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Persist => "persist",
            FaultKind::Shard => "shard",
            FaultKind::Net => "net",
            FaultKind::Signal => "signal",
        }
    }
}

/// Parses a `--faults persist,shard,net,signal` list (deduplicated,
/// canonical order).
///
/// # Errors
///
/// Returns a message naming the unknown fault kind.
pub fn parse_fault_kinds(spec: &str) -> Result<Vec<FaultKind>, String> {
    let mut kinds = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let kind = ALL_FAULT_KINDS
            .iter()
            .find(|k| k.label() == part)
            .copied()
            .ok_or_else(|| {
                format!("unknown fault kind `{part}` (expected persist, shard, net, signal)")
            })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err("no fault kinds enabled".to_owned());
    }
    kinds.sort();
    Ok(kinds)
}

/// A snapshot-I/O fault, applied to the next temp-file write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PersistFault {
    /// The write fails outright with an ENOSPC-style error; nothing of
    /// the new snapshot reaches the final path.
    Enospc,
    /// A prefix is written, then the write errors (torn temp file).
    ShortWrite,
    /// Half the bytes land and the save aborts, modeling a process
    /// kill mid-snapshot.
    KillPoint,
}

impl PersistFault {
    /// Stable label for campaign reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PersistFault::Enospc => "persist/enospc",
            PersistFault::ShortWrite => "persist/short-write",
            PersistFault::KillPoint => "persist/kill-point",
        }
    }
}

/// A shard-exchange fault, applied to the next exchange with the armed
/// shard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardFault {
    /// The shard is unreachable (connection refused).
    Partition,
    /// The shard stalls past the caller's patience, then times out.
    Stall,
    /// The shard answers, but the connection dies mid-response.
    MidResponseKill,
    /// The shard returns a tampered artifact with a *recomputed, valid
    /// checksum* — only semantic re-validation can reject it.
    CorruptArtifact,
}

impl ShardFault {
    /// Stable label for campaign reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShardFault::Partition => "shard/partition",
            ShardFault::Stall => "shard/stall",
            ShardFault::MidResponseKill => "shard/mid-response-kill",
            ShardFault::CorruptArtifact => "shard/corrupt-artifact",
        }
    }
}

/// An admission-layer abuse pattern, driven over real connections by
/// the CLI campaign driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetFault {
    /// A burst of concurrent connections racing the real request.
    Flood,
    /// A connection that trickles a partial line and holds the socket.
    SlowLoris,
    /// A burst of malformed request lines.
    MalformedBurst,
}

impl NetFault {
    /// Stable label for campaign reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetFault::Flood => "net/flood",
            NetFault::SlowLoris => "net/slow-loris",
            NetFault::MalformedBurst => "net/malformed-burst",
        }
    }
}

/// One fault the schedule plans for a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlannedFault {
    /// Arm the persist seam.
    Persist(PersistFault),
    /// Arm one shard of the pool.
    Shard {
        /// Pool index to arm.
        shard: usize,
        /// The fault to inject there.
        fault: ShardFault,
    },
    /// Abuse the admission layer.
    Net(NetFault),
    /// SIGTERM-equivalent graceful shutdown plus warm restart.
    Signal,
}

impl PlannedFault {
    /// The family this fault belongs to.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        match self {
            PlannedFault::Persist(_) => FaultKind::Persist,
            PlannedFault::Shard { .. } => FaultKind::Shard,
            PlannedFault::Net(_) => FaultKind::Net,
            PlannedFault::Signal => FaultKind::Signal,
        }
    }

    /// Stable label for campaign reports, e.g. `shard/stall@2`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PlannedFault::Persist(f) => f.label().to_owned(),
            PlannedFault::Shard { shard, fault } => format!("{}@{shard}", fault.label()),
            PlannedFault::Net(f) => f.label().to_owned(),
            PlannedFault::Signal => "signal/graceful-restart".to_owned(),
        }
    }
}

/// A seeded, replayable fault schedule: [`plan`](Self::plan) is a pure
/// function of `(seed, round)`, so re-running a campaign with the same
/// seed fires byte-identical fault sequences.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    seed: u64,
    kinds: Vec<FaultKind>,
}

impl FaultSchedule {
    /// A schedule over the enabled fault families.
    #[must_use]
    pub fn new(seed: u64, kinds: &[FaultKind]) -> Self {
        FaultSchedule {
            seed,
            kinds: kinds.to_vec(),
        }
    }

    /// The faults to fire in `round`, against a pool of `pool` shards.
    /// Every round carries one primary fault; every other round (by
    /// draw) composes a second, non-signal fault on top, so restarts
    /// stay bounded at one per round while seams still overlap.
    #[must_use]
    pub fn plan(&self, round: u64, pool: usize) -> Vec<PlannedFault> {
        if self.kinds.is_empty() {
            return Vec::new();
        }
        // Splitmix-style per-round state so rounds are independent.
        let mut state = self
            .seed
            .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut planned = Vec::new();
        let primary = self.draw_fault(&mut state, pool, &self.kinds);
        planned.push(primary);
        let composed: Vec<FaultKind> = self
            .kinds
            .iter()
            .copied()
            .filter(|k| *k != FaultKind::Signal)
            .collect();
        if !composed.is_empty() && xorshift(&mut state).is_multiple_of(2) {
            let secondary = self.draw_fault(&mut state, pool, &composed);
            if !planned.contains(&secondary) {
                planned.push(secondary);
            }
        }
        planned
    }

    fn draw_fault(&self, state: &mut u64, pool: usize, kinds: &[FaultKind]) -> PlannedFault {
        let index = (xorshift(state) % kinds.len().max(1) as u64) as usize;
        let kind = kinds.get(index).copied().unwrap_or(FaultKind::Persist);
        match kind {
            FaultKind::Persist => PlannedFault::Persist(match xorshift(state) % 3 {
                0 => PersistFault::Enospc,
                1 => PersistFault::ShortWrite,
                _ => PersistFault::KillPoint,
            }),
            FaultKind::Shard => PlannedFault::Shard {
                shard: (xorshift(state) % pool.max(1) as u64) as usize,
                fault: match xorshift(state) % 4 {
                    0 => ShardFault::Partition,
                    1 => ShardFault::Stall,
                    2 => ShardFault::MidResponseKill,
                    _ => ShardFault::CorruptArtifact,
                },
            },
            FaultKind::Net => PlannedFault::Net(match xorshift(state) % 3 {
                0 => NetFault::Flood,
                1 => NetFault::SlowLoris,
                _ => NetFault::MalformedBurst,
            }),
            FaultKind::Signal => PlannedFault::Signal,
        }
    }
}

// ---------------------------------------------------------------------------
// Persist seam injection
// ---------------------------------------------------------------------------

/// Fault-injecting [`PersistIo`]: delegates to the real filesystem
/// until [`arm`](Self::arm)ed, then fails the next temp-file write in
/// the armed mode (one-shot — the next save after the fault fires is
/// healthy again, modeling a disk that filled and was cleared).
///
/// Installed process-wide with [`install`](Self::install), so the fault
/// hits the *real* `persist_now` path of the serving daemon.
pub struct PersistChaos {
    inner: RealIo,
    armed: Mutex<Option<PersistFault>>,
    fired: AtomicU64,
}

impl PersistChaos {
    /// Creates the injector and installs it as the process-wide persist
    /// I/O. Pair with [`uninstall`](Self::uninstall).
    #[must_use]
    pub fn install() -> Arc<PersistChaos> {
        let chaos = Arc::new(PersistChaos {
            inner: RealIo,
            armed: Mutex::new(None),
            fired: AtomicU64::new(0),
        });
        persist::set_persist_io(Arc::clone(&chaos) as Arc<dyn PersistIo + Send + Sync>);
        chaos
    }

    /// Restores the real filesystem as the process-wide persist I/O.
    pub fn uninstall() {
        persist::clear_persist_io();
    }

    /// Arms `fault` for the next snapshot write (replacing any pending
    /// armed fault).
    pub fn arm(&self, fault: PersistFault) {
        *lock(&self.armed) = Some(fault);
    }

    /// Clears any armed fault without firing it.
    pub fn disarm(&self) {
        *lock(&self.armed) = None;
    }

    /// How many persist faults have fired.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl PersistIo for PersistChaos {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn write_tmp(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let fault = lock(&self.armed).take();
        let Some(fault) = fault else {
            return self.inner.write_tmp(path, bytes);
        };
        self.fired.fetch_add(1, Ordering::Relaxed);
        match fault {
            PersistFault::Enospc => Err(io::Error::other(
                "no space left on device (injected ENOSPC)",
            )),
            PersistFault::ShortWrite => {
                let keep = bytes.len().saturating_sub(7);
                let head = bytes.get(..keep).unwrap_or(&[]);
                self.inner.write_tmp(path, head)?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "short write: device refused the tail (injected)",
                ))
            }
            PersistFault::KillPoint => {
                let head = bytes.get(..bytes.len() / 2).unwrap_or(&[]);
                self.inner.write_tmp(path, head)?;
                Err(io::Error::other(
                    "killed mid-snapshot (injected kill-point)",
                ))
            }
        }
    }

    fn sync_tmp(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_tmp(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        self.inner.read(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

// ---------------------------------------------------------------------------
// Shard seam injection
// ---------------------------------------------------------------------------

/// How long a stalled shard holds the caller before timing out.
const STALL_MS: u64 = 30;

/// Fault-injecting [`ShardIo`] wrapper: exchanges pass through to the
/// wrapped pool until a shard is [`arm`](Self::arm)ed, then the next
/// exchange with that shard fails in the armed mode (one-shot — the
/// engine's retry, rotated or not, sees a healthy pool again).
pub struct ChaosShardIo {
    inner: Arc<dyn ShardIo>,
    armed: Mutex<BTreeMap<usize, ShardFault>>,
    fired: AtomicU64,
}

impl ChaosShardIo {
    /// Wraps a shard pool.
    #[must_use]
    pub fn new(inner: Arc<dyn ShardIo>) -> Self {
        ChaosShardIo {
            inner,
            armed: Mutex::new(BTreeMap::new()),
            fired: AtomicU64::new(0),
        }
    }

    /// Arms `fault` for the next exchange with `shard`.
    pub fn arm(&self, shard: usize, fault: ShardFault) {
        lock(&self.armed).insert(shard, fault);
    }

    /// Clears every armed shard fault without firing it.
    pub fn disarm(&self) {
        lock(&self.armed).clear();
    }

    /// How many shard faults have fired.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl ShardIo for ChaosShardIo {
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn exchange(
        &self,
        shard: usize,
        line: &str,
        deadline: Option<std::time::Duration>,
    ) -> Result<String, ShardIoError> {
        let fault = lock(&self.armed).remove(&shard);
        let Some(fault) = fault else {
            return self.inner.exchange(shard, line, deadline);
        };
        self.fired.fetch_add(1, Ordering::Relaxed);
        match fault {
            ShardFault::Partition => Err(ShardIoError::new(
                ShardStep::Connect,
                io::ErrorKind::ConnectionRefused,
                "connection refused (injected partition)",
            )),
            ShardFault::Stall => {
                let mut pause = std::time::Duration::from_millis(STALL_MS);
                if let Some(deadline) = deadline {
                    pause = pause.min(deadline);
                }
                std::thread::sleep(pause);
                Err(ShardIoError::new(
                    ShardStep::Recv,
                    io::ErrorKind::TimedOut,
                    "shard stalled past the deadline (injected)",
                ))
            }
            ShardFault::MidResponseKill => {
                // The shard does the work; the caller never sees it.
                let _ = self.inner.exchange(shard, line, deadline);
                Err(ShardIoError::new(
                    ShardStep::Recv,
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response (injected kill)",
                ))
            }
            ShardFault::CorruptArtifact => {
                let text = self.inner.exchange(shard, line, deadline)?;
                // A tampered artifact must stay checksum-valid and
                // decodable, or we would only be exercising the decode
                // fault path; when no safe tamper exists for this
                // stage, degrade to a mid-response kill.
                match tamper_response(&text) {
                    Some(tampered) => Ok(tampered),
                    None => Err(ShardIoError::new(
                        ShardStep::Recv,
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response (injected kill; no safe tamper)",
                    )),
                }
            }
        }
    }
}

/// Tampers a stage response's artifact payload such that it still
/// decodes and re-checksums, but fails the engine's semantic
/// re-validation (`invalid_artifact`). `None` when the response is not
/// a tamperable stage artifact.
fn tamper_response(text: &str) -> Option<String> {
    let Ok(Value::Object(mut entries)) = serde_json::from_str::<Value>(text) else {
        return None;
    };
    let stage = entries.iter().find_map(|(k, v)| match (k.as_str(), v) {
        ("stage", Value::String(s)) => Some(s.clone()),
        _ => None,
    })?;
    let payload = entries.iter().find_map(|(k, v)| match (k.as_str(), v) {
        ("artifact", Value::String(s)) => Some(s.clone()),
        _ => None,
    })?;
    let tampered = tamper_artifact(&stage, &payload)?;
    let check = fnv1a(tampered.as_bytes());
    for (key, value) in &mut entries {
        match key.as_str() {
            "artifact" => *value = Value::String(tampered.clone()),
            "check" => *value = Value::String(format!("{check:016x}")),
            _ => {}
        }
    }
    serde_json::to_string(&Value::Object(entries)).ok()
}

/// Stage-specific artifact tampering. Each edit is chosen so the
/// result *decodes* but is semantically inadmissible — the exact class
/// of corruption only the engine's re-validation can catch.
fn tamper_artifact(stage: &str, payload: &str) -> Option<String> {
    let value = serde_json::from_str::<Value>(payload).ok()?;
    let tampered = match (stage, value) {
        // Drop one triangle: the branch count no longer matches the
        // task's input complex.
        ("link-graphs", Value::Object(mut entries)) => {
            pop_array_field(&mut entries, "triangles")?;
            Value::Object(entries)
        }
        // Presentations serialize as a bare per-triangle array.
        ("presentations", Value::Array(mut items)) => {
            items.pop()?;
            Value::Array(items)
        }
        // Drop one vertex from an existence witness's assignment.
        ("homology", Value::Object(mut entries)) => {
            let outcome = entries
                .iter_mut()
                .find(|(k, _)| k == "outcome")
                .map(|(_, v)| v)?;
            let Value::Object(variant) = outcome else {
                return None;
            };
            let exists = variant
                .iter_mut()
                .find(|(k, _)| k == "exists")
                .map(|(_, v)| v)?;
            let Value::Object(exists_fields) = exists else {
                return None;
            };
            pop_array_field(exists_fields, "assignment")?;
            Value::Object(entries)
        }
        // Report a round cap beyond anything the dispatcher configured.
        ("explore", Value::Object(mut entries)) => {
            let cap = entries
                .iter_mut()
                .find(|(k, _)| k == "rounds_cap")
                .map(|(_, v)| v)?;
            *cap = Value::UInt(u64::from(u32::MAX));
            Value::Object(entries)
        }
        // `split` artifacts have no edit that is guaranteed both
        // decodable and inadmissible; the caller degrades the fault.
        _ => return None,
    };
    serde_json::to_string(&tampered).ok()
}

/// Removes the last element of the named array field; `None` when the
/// field is missing, not an array, or already empty.
fn pop_array_field(entries: &mut [(String, Value)], name: &str) -> Option<Value> {
    let field = entries
        .iter_mut()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)?;
    match field {
        Value::Array(items) => items.pop(),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// In-process shard pool
// ---------------------------------------------------------------------------

/// A loopback [`ShardIo`]: every exchange parses the stage request and
/// executes it in-process against the process-wide store — the worker
/// code path without sockets. Lets a chaos campaign run a multi-shard
/// pool (wrapped in [`ChaosShardIo`]) inside one process.
pub struct InProcessShards {
    shards: usize,
    exchanges: AtomicU64,
}

impl InProcessShards {
    /// A pool of `shards` loopback workers.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        InProcessShards {
            shards,
            exchanges: AtomicU64::new(0),
        }
    }

    /// Total exchanges served.
    #[must_use]
    pub fn exchanges(&self) -> u64 {
        self.exchanges.load(Ordering::Relaxed)
    }
}

impl ShardIo for InProcessShards {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn exchange(
        &self,
        _shard: usize,
        line: &str,
        _deadline: Option<std::time::Duration>,
    ) -> Result<String, ShardIoError> {
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        let value: Value = serde_json::from_str(line).map_err(|e| {
            ShardIoError::new(ShardStep::Recv, io::ErrorKind::InvalidData, e.to_string())
        })?;
        let Value::Object(entries) = value else {
            return Err(ShardIoError::new(
                ShardStep::Recv,
                io::ErrorKind::InvalidData,
                "stage request is not a JSON object",
            ));
        };
        if entries
            .iter()
            .any(|(k, v)| k == "op" && *v == Value::String("ping".to_owned()))
        {
            return Ok(r#"{"status":"ok","op":"ping"}"#.to_owned());
        }
        let job = super::remote::parse_stage_fields(&entries)
            .map_err(|e| ShardIoError::new(ShardStep::Recv, io::ErrorKind::InvalidData, e))?;
        super::remote::execute_stage_line(&job)
            .map_err(|e| ShardIoError::new(ShardStep::Recv, io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_identically_from_their_seed() {
        let schedule = FaultSchedule::new(42, &ALL_FAULT_KINDS);
        let replay = FaultSchedule::new(42, &ALL_FAULT_KINDS);
        for round in 0..200 {
            assert_eq!(schedule.plan(round, 3), replay.plan(round, 3));
        }
    }

    #[test]
    fn schedules_differ_across_seeds_and_respect_enabled_kinds() {
        let all = FaultSchedule::new(1, &ALL_FAULT_KINDS);
        let other = FaultSchedule::new(2, &ALL_FAULT_KINDS);
        let plans_a: Vec<_> = (0..50).map(|r| all.plan(r, 3)).collect();
        let plans_b: Vec<_> = (0..50).map(|r| other.plan(r, 3)).collect();
        assert_ne!(plans_a, plans_b, "seeds must vary the schedule");

        let persist_only = FaultSchedule::new(1, &[FaultKind::Persist]);
        for round in 0..100 {
            for fault in persist_only.plan(round, 3) {
                assert_eq!(fault.kind(), FaultKind::Persist);
            }
        }
    }

    #[test]
    fn every_round_plans_at_least_one_fault_and_at_most_one_signal() {
        let schedule = FaultSchedule::new(7, &ALL_FAULT_KINDS);
        for round in 0..300 {
            let plan = schedule.plan(round, 3);
            assert!(!plan.is_empty());
            assert!(plan.len() <= 2);
            let signals = plan
                .iter()
                .filter(|f| f.kind() == FaultKind::Signal)
                .count();
            assert!(signals <= 1);
        }
    }

    #[test]
    fn fault_kind_specs_parse_and_reject() {
        assert_eq!(
            parse_fault_kinds("persist,shard,net,signal").unwrap(),
            ALL_FAULT_KINDS.to_vec()
        );
        assert_eq!(
            parse_fault_kinds("signal, persist").unwrap(),
            vec![FaultKind::Persist, FaultKind::Signal]
        );
        assert!(parse_fault_kinds("gremlins").is_err());
        assert!(parse_fault_kinds("").is_err());
    }

    #[test]
    fn shard_faults_are_one_shot() {
        struct Healthy;
        impl ShardIo for Healthy {
            fn shard_count(&self) -> usize {
                2
            }
            fn exchange(
                &self,
                _shard: usize,
                _line: &str,
                _deadline: Option<std::time::Duration>,
            ) -> Result<String, ShardIoError> {
                Ok("pong".to_owned())
            }
        }
        let io = ChaosShardIo::new(Arc::new(Healthy));
        io.arm(1, ShardFault::Partition);
        assert!(io.exchange(0, "x", None).is_ok(), "unarmed shard passes");
        let err = io.exchange(1, "x", None).unwrap_err();
        assert_eq!(err.step, ShardStep::Connect);
        assert!(io.exchange(1, "x", None).is_ok(), "fault fired once");
        assert_eq!(io.fired(), 1);
    }

    #[test]
    fn tampering_preserves_the_checksum_and_breaks_semantics() {
        // A handcrafted link-graphs response with one triangle.
        let payload = r#"{"vertices":[],"domains":[],"edges":[],"edge_graphs":[],"edge_cycles":[],"triangles":[["a"]]}"#;
        let check = fnv1a(payload.as_bytes());
        let response = serde_json::to_string(&Value::Object(vec![
            ("status".to_owned(), Value::String("ok".to_owned())),
            ("stage".to_owned(), Value::String("link-graphs".to_owned())),
            ("check".to_owned(), Value::String(format!("{check:016x}"))),
            ("artifact".to_owned(), Value::String(payload.to_owned())),
        ]))
        .unwrap();
        let tampered = tamper_response(&response).expect("tamperable");
        let Value::Object(entries) = serde_json::from_str::<Value>(&tampered).unwrap() else {
            panic!("tampered response must stay an object");
        };
        let get = |name: &str| {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let Value::String(new_payload) = get("artifact") else {
            panic!("artifact field must stay a string");
        };
        let Value::String(new_check) = get("check") else {
            panic!("check field must stay a string");
        };
        assert_ne!(new_payload, payload, "payload must change");
        assert_eq!(
            u64::from_str_radix(&new_check, 16).unwrap(),
            fnv1a(new_payload.as_bytes()),
            "tampered checksum must re-validate"
        );
        assert!(
            new_payload.contains(r#""triangles":[]"#),
            "one triangle dropped: {new_payload}"
        );
    }

    #[test]
    fn split_responses_degrade_instead_of_tampering() {
        let response = r#"{"status":"ok","stage":"split","check":"00","artifact":"{}"}"#;
        assert!(tamper_response(response).is_none());
    }
}
