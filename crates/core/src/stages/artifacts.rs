//! Typed artifacts flowing between the verdict engine's stages.
//!
//! Each artifact is a pure function of the task it is keyed by, so the
//! per-stage caches in [`super::cache`] can share them across analyses
//! and across the tasks of a batch: two tasks whose canonical forms
//! coincide reuse the same [`SubdividedComplex`]; two analyses of the
//! same split task reuse the same [`LinkGraphs`] and [`Presentations`]
//! no matter which ACT fallback bound they run with.

use std::collections::BTreeSet;

use chromata_algebra::{ChainComplex, PresentationSummary};
use chromata_task::Task;
use chromata_topology::{Complex, Graph, Simplex, Vertex};

use crate::continuous::ContinuousOutcome;
use crate::pipeline::Verdict;
use crate::splitting::SplitOutcome;

/// The §4 splitting deformation of a canonical task — the first cached
/// artifact on the three-process path.
#[derive(Clone, Debug)]
pub struct SubdividedComplex {
    /// The split, link-connected task `T'` with its splitting steps and
    /// the degenerate witness, if splitting emptied a solo image.
    pub split: SplitOutcome,
}

/// The decidable skeleton of the continuous-map condition: per-vertex
/// image domains, per-edge image graphs (with their precomputed
/// fundamental-cycle walks), and the triangle list.
///
/// Everything here is assignment-independent: the depth-first search in
/// `continuous_map_exists` consults it without recomputing images.
#[derive(Clone, Debug)]
pub struct LinkGraphs {
    /// Input vertices, in complex order (the search's variable order).
    pub vertices: Vec<Vertex>,
    /// `Δ'(x)` vertex domain per input vertex (parallel to `vertices`).
    /// An empty domain is kept (not short-circuited) so the artifact
    /// stays a total function of the task; consumers report the first
    /// empty domain in vertex order.
    pub domains: Vec<Vec<Vertex>>,
    /// Input edges (1-simplices), in complex order.
    pub edges: Vec<Simplex>,
    /// `Graph::from_complex(Δ'(e))` per input edge (parallel to `edges`).
    pub edge_graphs: Vec<Graph>,
    /// Per edge, the assignment-independent fundamental-cycle walks of
    /// its image graph: for each non-tree edge `(u, w)` (in
    /// `non_tree_edges` order), the closed walk `u → … → w → u`. The
    /// H1 tier filters these by component at solve time.
    pub edge_cycles: Vec<Vec<(Vertex, Vec<Vertex>)>>,
    /// Input triangles (2-simplices), in complex order.
    pub triangles: Vec<Simplex>,
}

impl LinkGraphs {
    /// Builds the skeleton artifact for a (typically split) task.
    #[must_use]
    pub fn build(task: &Task) -> Self {
        let input = task.input();
        let vertices: Vec<Vertex> = input.vertices().cloned().collect();
        let domains: Vec<Vec<Vertex>> = vertices
            .iter()
            .map(|x| {
                task.delta()
                    .image_of(&Simplex::vertex(x.clone()))
                    .vertices()
                    .cloned()
                    .collect()
            })
            .collect();
        let edges: Vec<Simplex> = input.simplices_of_dim(1).cloned().collect();
        let edge_graphs: Vec<Graph> = edges
            .iter()
            .map(|e| Graph::from_complex(task.delta().image_of(e)))
            .collect();
        let edge_cycles: Vec<Vec<(Vertex, Vec<Vertex>)>> = edge_graphs
            .iter()
            .map(|graph| {
                graph
                    .non_tree_edges()
                    .into_iter()
                    .map(|(u, w)| {
                        let mut walk = graph
                            .shortest_path(&u, &w)
                            .expect("non-tree edge endpoints share a component"); // chromata-lint: allow(P1): (u, w) is an edge of the graph, so a path between them always exists
                                                                                  // Close the cycle with the non-tree edge w → u.
                        walk.push(u.clone());
                        (u, walk)
                    })
                    .collect()
            })
            .collect();
        let triangles: Vec<Simplex> = input.simplices_of_dim(2).cloned().collect();
        LinkGraphs {
            vertices,
            domains,
            edges,
            edge_graphs,
            edge_cycles,
            triangles,
        }
    }

    /// The first input vertex (in vertex order) whose image is empty,
    /// if any — the defensive `EmptyVertexImage` witness.
    #[must_use]
    pub fn first_empty_domain(&self) -> Option<&Vertex> {
        self.vertices
            .iter()
            .zip(&self.domains)
            .find(|(_, dom)| dom.is_empty())
            .map(|(x, _)| x)
    }
}

/// One connected component of a triangle's image, with its edge-path
/// group presentation summarized once.
#[derive(Clone, Debug)]
pub struct ComponentPresentation {
    /// The component's vertex set (membership test for assignment seeds).
    pub members: BTreeSet<Vertex>,
    /// The component's π₁ presentation summary (simplified triviality,
    /// evident abelianness, and the group itself for word problems).
    pub summary: PresentationSummary,
}

/// Assignment-independent π₁/H₁ data for one input triangle: every
/// connected component of `Δ'(σ)` with its presentation, plus the
/// triangle's chain complex for the joint H1 system.
#[derive(Clone, Debug)]
pub struct TrianglePresentations {
    /// Components of `Δ'(σ)`, in `connected_components` order.
    pub components: Vec<ComponentPresentation>,
    /// The presentation of the empty complex, returned when a seed lies
    /// in no component (defensive; mirrors the pre-engine fallback).
    pub empty: PresentationSummary,
    /// `ChainComplex::new(Δ'(σ))` for the abelianized (H1) tier.
    pub chain: ChainComplex,
}

impl TrianglePresentations {
    /// The presentation of the component containing `seed`, or the empty
    /// presentation if the seed lies in no component.
    #[must_use]
    pub fn summary_for(&self, seed: &Vertex) -> &PresentationSummary {
        self.components
            .iter()
            .find(|c| c.members.contains(seed))
            .map_or(&self.empty, |c| &c.summary)
    }
}

/// Per-triangle presentation artifacts for a task, parallel to
/// [`LinkGraphs::triangles`].
#[derive(Clone, Debug)]
pub struct Presentations {
    /// One entry per input triangle, in `triangles` order.
    pub per_triangle: Vec<TrianglePresentations>,
}

impl Presentations {
    /// Builds presentation summaries for every component of every
    /// triangle image of `task`.
    #[must_use]
    pub fn build(task: &Task, links: &LinkGraphs) -> Self {
        let per_triangle = links
            .triangles
            .iter()
            .map(|sigma| {
                let img = task.delta().image_of(sigma);
                let components = img
                    .connected_components()
                    .into_iter()
                    .map(|members| {
                        let sub = img.filtered(|s| s.iter().all(|v| members.contains(v)));
                        ComponentPresentation {
                            summary: PresentationSummary::of(&sub),
                            members,
                        }
                    })
                    .collect();
                TrianglePresentations {
                    components,
                    empty: PresentationSummary::of(&Complex::new()),
                    chain: ChainComplex::new(img),
                }
            })
            .collect();
        Presentations { per_triangle }
    }

    /// Total number of component presentations across all triangles.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.per_triangle.iter().map(|t| t.components.len()).sum()
    }

    /// How many triangles have every component simply connected.
    #[must_use]
    pub fn simply_connected_triangles(&self) -> usize {
        self.per_triangle
            .iter()
            .filter(|t| t.components.iter().all(|c| c.summary.is_trivial()))
            .count()
    }
}

/// Outcome of the continuous-map (homology) tier, with its search
/// effort counter.
#[derive(Clone, Debug)]
pub struct HomologyReport {
    /// The three-valued continuous-map outcome.
    pub outcome: ContinuousOutcome,
    /// Full vertex assignments whose triangle conditions were checked.
    pub assignments: u64,
}

/// Outcome of the bounded ACT exploration ladder, with its effort
/// counters and cacheability.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// The verdict the ladder settled on.
    pub verdict: Verdict,
    /// Backtracking nodes expanded across every round and ladder rung.
    pub nodes: u64,
    /// The final round cap the ladder reached.
    pub rounds_cap: usize,
    /// Whether the verdict is independent of the budget (and therefore
    /// safe to memoize): witnesses always are; exhaustion only when the
    /// ladder stopped exactly at the configured bound.
    pub budget_independent: bool,
}

/// The assignment `g` and certificates of an `Exists` outcome, exposed
/// for reporting.
pub(crate) fn exists_summary(outcome: &ContinuousOutcome) -> Option<(usize, usize)> {
    match outcome {
        ContinuousOutcome::Exists {
            assignment,
            certificates,
        } => Some((assignment.len(), certificates.len())),
        _ => None,
    }
}

/// Keeps artifact invariants honest in tests without exporting internals.
#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{renaming, two_set_agreement};

    #[test]
    fn link_graphs_mirror_the_input_complex() {
        let t = two_set_agreement();
        let links = LinkGraphs::build(&t);
        assert_eq!(links.vertices.len(), links.domains.len());
        assert_eq!(links.edges.len(), links.edge_graphs.len());
        assert_eq!(links.edges.len(), links.edge_cycles.len());
        assert!(links.first_empty_domain().is_none());
        assert!(!links.triangles.is_empty());
    }

    #[test]
    fn presentations_cover_every_triangle() {
        let t = renaming(4);
        let links = LinkGraphs::build(&t);
        let pres = Presentations::build(&t, &links);
        assert_eq!(pres.per_triangle.len(), links.triangles.len());
        assert!(pres.component_count() >= links.triangles.len());
        // The empty fallback is trivially simply connected.
        for tp in &pres.per_triangle {
            assert!(tp.empty.is_trivial());
        }
    }

    #[test]
    fn summary_for_falls_back_to_empty_on_unknown_seed() {
        let t = two_set_agreement();
        let links = LinkGraphs::build(&t);
        let pres = Presentations::build(&t, &links);
        let tp = &pres.per_triangle[0];
        // A vertex that cannot occur in any output component.
        let alien = Vertex::of(0, 987_654);
        assert!(tp.summary_for(&alien).is_trivial());
        // A real member resolves to its component's summary.
        if let Some(c) = tp.components.first() {
            let seed = c.members.iter().next().expect("nonempty component");
            assert!(std::ptr::eq(tp.summary_for(seed), &c.summary));
        }
    }
}
