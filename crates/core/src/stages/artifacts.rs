//! Typed artifacts flowing between the verdict engine's stages.
//!
//! Each artifact is a pure function of the task it is keyed by, so the
//! per-stage caches in [`super::cache`] can share them across analyses
//! and across the tasks of a batch: two tasks whose canonical forms
//! coincide reuse the same [`SubdividedComplex`]; two analyses of the
//! same split task reuse the same [`LinkGraphs`] and [`Presentations`]
//! no matter which ACT fallback bound they run with.

use std::collections::BTreeSet;

use chromata_algebra::{ChainComplex, PresentationSummary};
use chromata_task::Task;
use chromata_topology::{Complex, Graph, Simplex, Vertex};

use crate::continuous::ContinuousOutcome;
use crate::pipeline::Verdict;
use crate::splitting::SplitOutcome;

/// The §4 splitting deformation of a canonical task — the first cached
/// artifact on the three-process path.
#[derive(Clone, Debug)]
pub struct SubdividedComplex {
    /// The split, link-connected task `T'` with its splitting steps and
    /// the degenerate witness, if splitting emptied a solo image.
    pub split: SplitOutcome,
}

/// The decidable skeleton of the continuous-map condition: per-vertex
/// image domains, per-edge image graphs (with their precomputed
/// fundamental-cycle walks), and the triangle list.
///
/// Everything here is assignment-independent: the depth-first search in
/// `continuous_map_exists` consults it without recomputing images.
#[derive(Clone, Debug)]
pub struct LinkGraphs {
    /// Input vertices, in complex order (the search's variable order).
    pub vertices: Vec<Vertex>,
    /// `Δ'(x)` vertex domain per input vertex (parallel to `vertices`).
    /// An empty domain is kept (not short-circuited) so the artifact
    /// stays a total function of the task; consumers report the first
    /// empty domain in vertex order.
    pub domains: Vec<Vec<Vertex>>,
    /// Input edges (1-simplices), in complex order.
    pub edges: Vec<Simplex>,
    /// `Graph::from_complex(Δ'(e))` per input edge (parallel to `edges`).
    pub edge_graphs: Vec<Graph>,
    /// Per edge, the assignment-independent fundamental-cycle walks of
    /// its image graph: for each non-tree edge `(u, w)` (in
    /// `non_tree_edges` order), the closed walk `u → … → w → u`. The
    /// H1 tier filters these by component at solve time.
    pub edge_cycles: Vec<Vec<(Vertex, Vec<Vertex>)>>,
    /// Input triangles (2-simplices), in complex order.
    pub triangles: Vec<Simplex>,
}

impl LinkGraphs {
    /// Builds the skeleton artifact for a (typically split) task.
    #[must_use]
    pub fn build(task: &Task) -> Self {
        let input = task.input();
        let vertices: Vec<Vertex> = input.vertices().cloned().collect();
        let domains: Vec<Vec<Vertex>> = vertices
            .iter()
            .map(|x| {
                task.delta()
                    .image_of(&Simplex::vertex(x.clone()))
                    .vertices()
                    .cloned()
                    .collect()
            })
            .collect();
        let edges: Vec<Simplex> = input.simplices_of_dim(1).cloned().collect();
        let edge_graphs: Vec<Graph> = edges
            .iter()
            .map(|e| Graph::from_complex(task.delta().image_of(e)))
            .collect();
        let edge_cycles: Vec<Vec<(Vertex, Vec<Vertex>)>> = edge_graphs
            .iter()
            .map(|graph| {
                graph
                    .non_tree_edges()
                    .into_iter()
                    .map(|(u, w)| {
                        let mut walk = graph
                            .shortest_path(&u, &w)
                            .expect("non-tree edge endpoints share a component"); // chromata-lint: allow(P1): (u, w) is an edge of the graph, so a path between them always exists
                                                                                  // Close the cycle with the non-tree edge w → u.
                        walk.push(u.clone());
                        (u, walk)
                    })
                    .collect()
            })
            .collect();
        let triangles: Vec<Simplex> = input.simplices_of_dim(2).cloned().collect();
        LinkGraphs {
            vertices,
            domains,
            edges,
            edge_graphs,
            edge_cycles,
            triangles,
        }
    }

    /// The first input vertex (in vertex order) whose image is empty,
    /// if any — the defensive `EmptyVertexImage` witness.
    #[must_use]
    pub fn first_empty_domain(&self) -> Option<&Vertex> {
        self.vertices
            .iter()
            .zip(&self.domains)
            .find(|(_, dom)| dom.is_empty())
            .map(|(x, _)| x)
    }
}

/// One connected component of a triangle's image, with its edge-path
/// group presentation summarized once.
#[derive(Clone, Debug)]
pub struct ComponentPresentation {
    /// The component's vertex set (membership test for assignment seeds).
    pub members: BTreeSet<Vertex>,
    /// The component's π₁ presentation summary (simplified triviality,
    /// evident abelianness, and the group itself for word problems).
    pub summary: PresentationSummary,
}

/// Assignment-independent π₁/H₁ data for one input triangle: every
/// connected component of `Δ'(σ)` with its presentation, plus the
/// triangle's chain complex for the joint H1 system.
#[derive(Clone, Debug)]
pub struct TrianglePresentations {
    /// Components of `Δ'(σ)`, in `connected_components` order.
    pub components: Vec<ComponentPresentation>,
    /// The presentation of the empty complex, returned when a seed lies
    /// in no component (defensive; mirrors the pre-engine fallback).
    pub empty: PresentationSummary,
    /// `ChainComplex::new(Δ'(σ))` for the abelianized (H1) tier.
    pub chain: ChainComplex,
}

impl TrianglePresentations {
    /// The presentation of the component containing `seed`, or the empty
    /// presentation if the seed lies in no component.
    #[must_use]
    pub fn summary_for(&self, seed: &Vertex) -> &PresentationSummary {
        self.components
            .iter()
            .find(|c| c.members.contains(seed))
            .map_or(&self.empty, |c| &c.summary)
    }
}

/// Per-triangle presentation artifacts for a task, parallel to
/// [`LinkGraphs::triangles`].
#[derive(Clone, Debug)]
pub struct Presentations {
    /// One entry per input triangle, in `triangles` order.
    pub per_triangle: Vec<TrianglePresentations>,
}

impl Presentations {
    /// Builds presentation summaries for every component of every
    /// triangle image of `task`.
    #[must_use]
    pub fn build(task: &Task, links: &LinkGraphs) -> Self {
        let per_triangle = links
            .triangles
            .iter()
            .map(|sigma| {
                let img = task.delta().image_of(sigma);
                let components = img
                    .connected_components()
                    .into_iter()
                    .map(|members| {
                        let sub = img.filtered(|s| s.iter().all(|v| members.contains(v)));
                        ComponentPresentation {
                            summary: PresentationSummary::of(&sub),
                            members,
                        }
                    })
                    .collect();
                TrianglePresentations {
                    components,
                    empty: PresentationSummary::of(&Complex::new()),
                    chain: ChainComplex::new(img),
                }
            })
            .collect();
        Presentations { per_triangle }
    }

    /// Total number of component presentations across all triangles.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.per_triangle.iter().map(|t| t.components.len()).sum()
    }

    /// How many triangles have every component simply connected.
    #[must_use]
    pub fn simply_connected_triangles(&self) -> usize {
        self.per_triangle
            .iter()
            .filter(|t| t.components.iter().all(|c| c.summary.is_trivial()))
            .count()
    }
}

/// Outcome of the continuous-map (homology) tier, with its search
/// effort counter.
#[derive(Clone, Debug)]
pub struct HomologyReport {
    /// The three-valued continuous-map outcome.
    pub outcome: ContinuousOutcome,
    /// Full vertex assignments whose triangle conditions were checked.
    pub assignments: u64,
}

/// Outcome of the bounded ACT exploration ladder, with its effort
/// counters and cacheability.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// The verdict the ladder settled on.
    pub verdict: Verdict,
    /// Backtracking nodes expanded across every round and ladder rung.
    pub nodes: u64,
    /// The final round cap the ladder reached.
    pub rounds_cap: usize,
    /// Whether the verdict is independent of the budget (and therefore
    /// safe to memoize): witnesses always are; exhaustion only when the
    /// ladder stopped exactly at the configured bound.
    pub budget_independent: bool,
}

/// The assignment `g` and certificates of an `Exists` outcome, exposed
/// for reporting.
pub(crate) fn exists_summary(outcome: &ContinuousOutcome) -> Option<(usize, usize)> {
    match outcome {
        ContinuousOutcome::Exists {
            assignment,
            certificates,
        } => Some((assignment.len(), certificates.len())),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Serde plumbing — the persistence layer (`super::persist`) snapshots every
// stage cache, so each artifact (and the verdict record) needs a stable,
// canonical serialized form. Same rules as the topology/algebra serde
// layers: explicit mirror shapes on the vendored `Content` tree, ordered
// containers rendered as sorted sequences, and *validation before
// construction* — a corrupt snapshot entry must become an `Err`, never a
// panic or a malformed artifact.
// ---------------------------------------------------------------------------

use serde::de::Error as DeError;
use serde::{de, ser, Content, Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;

use super::{DecisionRecord, StageTrace};
use crate::continuous::ImpossibilityReason;
use crate::lap::Lap;
use crate::pipeline::Obstruction;

/// The engine's fixed stage names (plus the governance pseudo-stages),
/// interned back to `&'static str` on load. A snapshot naming any other
/// stage is treated as corrupt by the persist layer.
pub(crate) fn intern_stage_name(name: &str) -> Option<&'static str> {
    const KNOWN: [&str; 8] = [
        "canonicalize",
        "split",
        "link-graphs",
        "presentations",
        "homology",
        "explore",
        "budget",
        "unknown",
    ];
    KNOWN.iter().find(|&&k| k == name).copied()
}

fn field<'a>(entries: &'a [(String, Content)], name: &str) -> Result<&'a Content, String> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{name}'"))
}

fn as_map(c: &Content) -> Result<&[(String, Content)], String> {
    match c {
        Content::Map(entries) => Ok(entries),
        other => Err(format!("expected an object, found {other:?}")),
    }
}

/// Unwraps an externally tagged enum: a map with exactly one entry.
fn as_variant(c: &Content) -> Result<(&str, &Content), String> {
    let entries = as_map(c)?;
    let [(tag, payload)] = entries else {
        return Err("expected exactly one variant tag".to_owned());
    };
    Ok((tag.as_str(), payload))
}

fn to_content<T: Serialize>(v: &T) -> Result<Content, String> {
    ser::to_content(v).map_err(|e| e.0)
}

fn from_content<'de, T: Deserialize<'de>>(c: &Content) -> Result<T, String> {
    de::from_content(c.clone()).map_err(|e| e.0)
}

fn variant(tag: &str, payload: Content) -> Content {
    Content::Map(vec![(tag.to_owned(), payload)])
}

macro_rules! content_backed {
    ($ty:ty) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let content = self
                    .to_content_repr()
                    .map_err(<S::Error as ser::Error>::custom)?;
                s.serialize_content(content)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                Self::from_content_repr(&d.deserialize_content()?).map_err(D::Error::custom)
            }
        }
    };
}

impl Verdict {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(match self {
            Verdict::Solvable { certificate } => {
                variant("solvable", Content::Str(certificate.clone()))
            }
            Verdict::Unsolvable { obstruction } => {
                variant("unsolvable", obstruction.to_content_repr()?)
            }
            Verdict::Unknown { reason } => variant("unknown", Content::Str(reason.clone())),
        })
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let (tag, payload) = as_variant(c)?;
        match tag {
            "solvable" => Ok(Verdict::Solvable {
                certificate: from_content(payload)?,
            }),
            "unsolvable" => Ok(Verdict::Unsolvable {
                obstruction: Obstruction::from_content_repr(payload)?,
            }),
            "unknown" => Ok(Verdict::Unknown {
                reason: from_content(payload)?,
            }),
            other => Err(format!("unknown verdict variant '{other}'")),
        }
    }
}
content_backed!(Verdict);

impl Obstruction {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(match self {
            Obstruction::ArticulationPoints { witness } => {
                variant("articulation_points", Content::Str(witness.clone()))
            }
            Obstruction::Contractibility { witness } => {
                variant("contractibility", Content::Str(witness.clone()))
            }
        })
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let (tag, payload) = as_variant(c)?;
        match tag {
            "articulation_points" => Ok(Obstruction::ArticulationPoints {
                witness: from_content(payload)?,
            }),
            "contractibility" => Ok(Obstruction::Contractibility {
                witness: from_content(payload)?,
            }),
            other => Err(format!("unknown obstruction variant '{other}'")),
        }
    }
}
content_backed!(Obstruction);

impl ImpossibilityReason {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(match self {
            ImpossibilityReason::EmptyVertexImage(x) => {
                variant("empty_vertex_image", to_content(x)?)
            }
            ImpossibilityReason::SkeletonDisconnected { edge } => {
                variant("skeleton_disconnected", to_content(edge)?)
            }
            ImpossibilityReason::HomologyObstruction { triangle } => {
                variant("homology_obstruction", to_content(triangle)?)
            }
        })
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let (tag, payload) = as_variant(c)?;
        match tag {
            "empty_vertex_image" => Ok(ImpossibilityReason::EmptyVertexImage(from_content(
                payload,
            )?)),
            "skeleton_disconnected" => Ok(ImpossibilityReason::SkeletonDisconnected {
                edge: from_content(payload)?,
            }),
            "homology_obstruction" => Ok(ImpossibilityReason::HomologyObstruction {
                triangle: from_content(payload)?,
            }),
            other => Err(format!("unknown impossibility variant '{other}'")),
        }
    }
}
content_backed!(ImpossibilityReason);

impl ContinuousOutcome {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(match self {
            ContinuousOutcome::Exists {
                assignment,
                certificates,
            } => {
                // BTreeMap iterates sorted, so the pair list is canonical.
                let pairs: Vec<(&Vertex, &Vertex)> = assignment.iter().collect();
                variant(
                    "exists",
                    serde::map_content(vec![
                        ("assignment", to_content(&pairs)?),
                        ("certificates", to_content(certificates)?),
                    ]),
                )
            }
            ContinuousOutcome::Impossible { reason } => {
                variant("impossible", reason.to_content_repr()?)
            }
            ContinuousOutcome::Undetermined { reason } => {
                variant("undetermined", Content::Str(reason.clone()))
            }
        })
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let (tag, payload) = as_variant(c)?;
        match tag {
            "exists" => {
                let entries = as_map(payload)?;
                let pairs: Vec<(Vertex, Vertex)> = from_content(field(entries, "assignment")?)?;
                let certificates: Vec<String> = from_content(field(entries, "certificates")?)?;
                let assignment: BTreeMap<Vertex, Vertex> = pairs.into_iter().collect();
                Ok(ContinuousOutcome::Exists {
                    assignment,
                    certificates,
                })
            }
            "impossible" => Ok(ContinuousOutcome::Impossible {
                reason: ImpossibilityReason::from_content_repr(payload)?,
            }),
            "undetermined" => Ok(ContinuousOutcome::Undetermined {
                reason: from_content(payload)?,
            }),
            other => Err(format!("unknown continuous-outcome variant '{other}'")),
        }
    }
}
content_backed!(ContinuousOutcome);

impl Lap {
    fn to_content_repr(&self) -> Result<Content, String> {
        let components: Vec<Vec<&Vertex>> =
            self.components.iter().map(|c| c.iter().collect()).collect();
        Ok(serde::map_content(vec![
            ("facet", to_content(&self.facet)?),
            ("vertex", to_content(&self.vertex)?),
            ("components", to_content(&components)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        let components: Vec<Vec<Vertex>> = from_content(field(entries, "components")?)?;
        Ok(Lap {
            facet: from_content(field(entries, "facet")?)?,
            vertex: from_content(field(entries, "vertex")?)?,
            components: components
                .into_iter()
                .map(|c| c.into_iter().collect())
                .collect(),
        })
    }
}
content_backed!(Lap);

impl SplitOutcome {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("task", to_content(&self.task)?),
            ("steps", to_content(&self.steps)?),
            ("degenerate", to_content(&self.degenerate)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        Ok(SplitOutcome {
            task: from_content(field(entries, "task")?)?,
            steps: from_content(field(entries, "steps")?)?,
            degenerate: from_content(field(entries, "degenerate")?)?,
        })
    }
}
content_backed!(SplitOutcome);

impl Serialize for SubdividedComplex {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.split.serialize(s)
    }
}

impl<'de> Deserialize<'de> for SubdividedComplex {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(SubdividedComplex {
            split: SplitOutcome::deserialize(d)?,
        })
    }
}

impl LinkGraphs {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("vertices", to_content(&self.vertices)?),
            ("domains", to_content(&self.domains)?),
            ("edges", to_content(&self.edges)?),
            ("edge_graphs", to_content(&self.edge_graphs)?),
            ("edge_cycles", to_content(&self.edge_cycles)?),
            ("triangles", to_content(&self.triangles)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        let out = LinkGraphs {
            vertices: from_content(field(entries, "vertices")?)?,
            domains: from_content(field(entries, "domains")?)?,
            edges: from_content(field(entries, "edges")?)?,
            edge_graphs: from_content(field(entries, "edge_graphs")?)?,
            edge_cycles: from_content(field(entries, "edge_cycles")?)?,
            triangles: from_content(field(entries, "triangles")?)?,
        };
        // Consumers index these arrays in parallel; a snapshot that broke
        // the parallel-array invariant must not construct.
        if out.domains.len() != out.vertices.len()
            || out.edge_graphs.len() != out.edges.len()
            || out.edge_cycles.len() != out.edges.len()
        {
            return Err("link-graphs parallel arrays disagree in length".to_owned());
        }
        Ok(out)
    }
}
content_backed!(LinkGraphs);

impl ComponentPresentation {
    fn to_content_repr(&self) -> Result<Content, String> {
        let members: Vec<&Vertex> = self.members.iter().collect();
        Ok(serde::map_content(vec![
            ("members", to_content(&members)?),
            ("summary", to_content(&self.summary)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        let members: Vec<Vertex> = from_content(field(entries, "members")?)?;
        Ok(ComponentPresentation {
            members: members.into_iter().collect(),
            summary: from_content(field(entries, "summary")?)?,
        })
    }
}
content_backed!(ComponentPresentation);

impl TrianglePresentations {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("components", to_content(&self.components)?),
            ("empty", to_content(&self.empty)?),
            ("chain", to_content(&self.chain)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        Ok(TrianglePresentations {
            components: from_content(field(entries, "components")?)?,
            empty: from_content(field(entries, "empty")?)?,
            chain: from_content(field(entries, "chain")?)?,
        })
    }
}
content_backed!(TrianglePresentations);

impl Serialize for Presentations {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.per_triangle.serialize(s)
    }
}

impl<'de> Deserialize<'de> for Presentations {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Presentations {
            per_triangle: Vec::<TrianglePresentations>::deserialize(d)?,
        })
    }
}

impl HomologyReport {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("outcome", self.outcome.to_content_repr()?),
            ("assignments", to_content(&self.assignments)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        Ok(HomologyReport {
            outcome: ContinuousOutcome::from_content_repr(field(entries, "outcome")?)?,
            assignments: from_content(field(entries, "assignments")?)?,
        })
    }
}
content_backed!(HomologyReport);

impl ExplorationReport {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("verdict", self.verdict.to_content_repr()?),
            ("nodes", to_content(&self.nodes)?),
            ("rounds_cap", to_content(&self.rounds_cap)?),
            ("budget_independent", to_content(&self.budget_independent)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        Ok(ExplorationReport {
            verdict: Verdict::from_content_repr(field(entries, "verdict")?)?,
            nodes: from_content(field(entries, "nodes")?)?,
            rounds_cap: from_content(field(entries, "rounds_cap")?)?,
            budget_independent: from_content(field(entries, "budget_independent")?)?,
        })
    }
}
content_backed!(ExplorationReport);

impl StageTrace {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("stage", Content::Str(self.stage.to_owned())),
            ("detail", Content::Str(self.detail.clone())),
            ("work", to_content(&self.work)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        let name: String = from_content(field(entries, "stage")?)?;
        let stage = intern_stage_name(&name)
            .ok_or_else(|| format!("unknown stage name '{name}' in persisted trace"))?;
        Ok(StageTrace {
            stage,
            detail: from_content(field(entries, "detail")?)?,
            work: from_content(field(entries, "work")?)?,
        })
    }
}
content_backed!(StageTrace);

impl DecisionRecord {
    fn to_content_repr(&self) -> Result<Content, String> {
        Ok(serde::map_content(vec![
            ("verdict", self.verdict.to_content_repr()?),
            ("decided_by", Content::Str(self.decided_by.to_owned())),
            ("stages", to_content(&self.stages)?),
        ]))
    }

    fn from_content_repr(c: &Content) -> Result<Self, String> {
        let entries = as_map(c)?;
        let decided: String = from_content(field(entries, "decided_by")?)?;
        let decided_by = intern_stage_name(&decided)
            .ok_or_else(|| format!("unknown deciding stage '{decided}' in persisted record"))?;
        Ok(DecisionRecord {
            verdict: Verdict::from_content_repr(field(entries, "verdict")?)?,
            decided_by,
            stages: from_content(field(entries, "stages")?)?,
        })
    }
}
content_backed!(DecisionRecord);

/// Keeps artifact invariants honest in tests without exporting internals.
#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{renaming, two_set_agreement};

    #[test]
    fn link_graphs_mirror_the_input_complex() {
        let t = two_set_agreement();
        let links = LinkGraphs::build(&t);
        assert_eq!(links.vertices.len(), links.domains.len());
        assert_eq!(links.edges.len(), links.edge_graphs.len());
        assert_eq!(links.edges.len(), links.edge_cycles.len());
        assert!(links.first_empty_domain().is_none());
        assert!(!links.triangles.is_empty());
    }

    #[test]
    fn presentations_cover_every_triangle() {
        let t = renaming(4);
        let links = LinkGraphs::build(&t);
        let pres = Presentations::build(&t, &links);
        assert_eq!(pres.per_triangle.len(), links.triangles.len());
        assert!(pres.component_count() >= links.triangles.len());
        // The empty fallback is trivially simply connected.
        for tp in &pres.per_triangle {
            assert!(tp.empty.is_trivial());
        }
    }

    #[test]
    fn summary_for_falls_back_to_empty_on_unknown_seed() {
        let t = two_set_agreement();
        let links = LinkGraphs::build(&t);
        let pres = Presentations::build(&t, &links);
        let tp = &pres.per_triangle[0];
        // A vertex that cannot occur in any output component.
        let alien = Vertex::of(0, 987_654);
        assert!(tp.summary_for(&alien).is_trivial());
        // A real member resolves to its component's summary.
        if let Some(c) = tp.components.first() {
            let seed = c.members.iter().next().expect("nonempty component");
            assert!(std::ptr::eq(tp.summary_for(seed), &c.summary));
        }
    }
}
