//! The staged verdict engine (architecture layer under [`crate::analyze`]).
//!
//! The decision procedure is inherently staged — canonicalize, split
//! (§4), build link graphs, derive π₁ presentations, run the
//! homology/word-problem tiers (§5), fall back to the bounded ACT
//! exploration — and this module makes the stages explicit:
//!
//! ```text
//! canonicalize ─▶ split ─▶ link-graphs ─▶ presentations ─▶ homology ─▶ explore
//!     (live)    [cached]     [cached]        [cached]       [cached]   [cached]
//! ```
//!
//! Every stage implements [`Stage`]: it names itself, derives a
//! structural-fingerprint cache key, and `run`s against the
//! [`ArtifactStore`](cache::ArtifactStore) — returning its typed
//! artifact plus a [`StageEvidence`] record (detail, work counter,
//! cache event, wall clock). The engine threads the evidence into the
//! [`EvidenceChain`] every [`crate::Analysis`] now carries, which is
//! what `chromata explain` prints.
//!
//! Since PR 9 the link-graph and presentation stages are keyed **per
//! split branch**: the split task is decomposed into one name-erased
//! single-facet sub-task per input facet (see [`branch_tasks`]), each
//! branch artifact is cached under that sub-task alone, and the global
//! artifact is assembled from the branch parts. Two tasks whose splits
//! overlap — a batch of near-duplicates, or one task across edits —
//! share every common branch artifact; the sharing is observable as the
//! `reuse_hits` cache counter and the per-stage
//! [`StageEvidence::reused`] flag, while verdicts and
//! [`EvidenceChain::deterministic_digest`] stay byte-identical to a
//! cold whole-task run.

pub mod artifacts;
pub mod cache;
pub mod chaos;
pub mod persist;
pub mod remote;

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

use chromata_task::{canonicalize, facet_restriction, Task};
use chromata_topology::{structural_fingerprint, Budget, CancelToken, Stopwatch};

use crate::act::solve_act_governed_with_stats;
use crate::act::ActOutcome;
use crate::continuous::{continuous_map_exists_with, ContinuousOutcome, ImpossibilityReason};
use crate::pipeline::{Analysis, Obstruction, PipelineOptions, Verdict};
use crate::splitting::{split_all, SplitOutcome};

use artifacts::{
    exists_summary, ExplorationReport, HomologyReport, LinkGraphs, Presentations,
    SubdividedComplex, TrianglePresentations,
};
use cache::{ArtifactKind, ArtifactStore, SharedCache};

/// How a stage's artifact interacted with its cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheEvent {
    /// Served from the stage cache without recomputation.
    Hit,
    /// Computed by the stage and inserted into the cache.
    Miss,
    /// Computed but not cached (budget-dependent or per-call work).
    Uncached,
    /// Replayed from a cached verdict record (the stage did not run).
    Replayed,
}

impl CacheEvent {
    /// Stable lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheEvent::Hit => "hit",
            CacheEvent::Miss => "miss",
            CacheEvent::Uncached => "uncached",
            CacheEvent::Replayed => "replay",
        }
    }
}

impl fmt::Display for CacheEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a stage's artifact was computed. Circumstantial provenance —
/// like [`StageEvidence::wall`] and [`StageEvidence::cache`] it is
/// excluded from [`EvidenceChain::deterministic_digest`], so a
/// shard-computed analysis and a single-machine run agree byte-for-byte
/// on their digests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageOrigin {
    /// Computed in-process (no remote engine configured, a cache hit,
    /// or a budget-sensitive stage pinned local for determinism).
    Local,
    /// Fetched from a worker shard on the given dispatch attempt
    /// (1-based).
    Shard {
        /// Shard index within the configured pool.
        shard: usize,
        /// Dispatch attempt that succeeded (1 = first try).
        attempt: u32,
    },
    /// Every remote option was exhausted; the stage was recomputed
    /// locally (graceful degradation, never a missing artifact).
    LocalFallback,
}

impl StageOrigin {
    /// Stable label, e.g. `local`, `shard-1#2`, `local-fallback`.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            StageOrigin::Local => "local".to_owned(),
            StageOrigin::Shard { shard, attempt } => format!("shard-{shard}#{attempt}"),
            StageOrigin::LocalFallback => "local-fallback".to_owned(),
        }
    }
}

impl fmt::Display for StageOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One stage's contribution to an analysis: what it concluded, how much
/// work it did, and how it interacted with its cache.
#[derive(Clone, Debug)]
pub struct StageEvidence {
    /// Stage name (one of the engine's fixed stage names).
    pub stage: &'static str,
    /// Deterministic human-readable summary of the artifact.
    pub detail: String,
    /// Deterministic work counter (facets, assignments, search nodes …).
    pub work: u64,
    /// Cache interaction for this run.
    pub cache: CacheEvent,
    /// Wall-clock time the stage took in this run (zero when replayed).
    /// Excluded from [`EvidenceChain::deterministic_digest`].
    pub wall: Duration,
    /// Which machine computed the artifact (shard, local, or fallback).
    /// Excluded from [`EvidenceChain::deterministic_digest`].
    pub origin: StageOrigin,
    /// Whether any part of the artifact was served from a cache — for
    /// branch-keyed stages, whether at least one branch hit. Excluded
    /// from [`EvidenceChain::deterministic_digest`] (it legitimately
    /// differs between cold and warm runs).
    pub reused: bool,
    /// How many sub-task (branch) keys the stage consulted: the branch
    /// count for branch-keyed stages, 0 for whole-task stages and
    /// replays. Excluded from [`EvidenceChain::deterministic_digest`].
    pub subkeys: usize,
}

/// The full evidence chain of one analysis: every stage that ran (or
/// was replayed from the verdict cache) plus the stage that decided.
#[derive(Clone, Debug)]
pub struct EvidenceChain {
    /// Per-stage evidence, in execution order.
    pub stages: Vec<StageEvidence>,
    /// Name of the stage whose answer became the verdict.
    pub decided_by: &'static str,
}

impl EvidenceChain {
    pub(crate) fn new() -> Self {
        EvidenceChain {
            stages: Vec::new(),
            decided_by: "unknown",
        }
    }

    /// A fingerprint over the *deterministic* parts of the chain — stage
    /// names, details, work counters and the deciding stage — excluding
    /// wall-clock and cache events, which legitimately differ between a
    /// cold and a warm run of the same analysis. Two analyses of the
    /// same task under the same options always agree on this digest,
    /// whether run alone, repeated, or inside [`crate::analyze_batch`].
    #[must_use]
    pub fn deterministic_digest(&self) -> u64 {
        let parts: Vec<(&str, &str, u64)> = self
            .stages
            .iter()
            .map(|s| (s.stage, s.detail.as_str(), s.work))
            .collect();
        structural_fingerprint(&(parts, self.decided_by))
    }
}

impl fmt::Display for EvidenceChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "decided by: {}", self.decided_by)?;
        for s in &self.stages {
            write!(
                f,
                "  {:<13} {:<8} work {:>8}  {:>9.3}ms  {}",
                s.stage,
                s.cache,
                s.work,
                s.wall.as_secs_f64() * 1e3,
                s.detail,
            )?;
            if s.origin != StageOrigin::Local {
                write!(f, "  [{}]", s.origin)?;
            }
            if s.reused && s.subkeys > 0 {
                write!(f, "  [reused across {} sub-key(s)]", s.subkeys)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The compact, replayable form of a stage's evidence stored in the
/// verdict cache: everything deterministic, nothing circumstantial.
#[derive(Clone, Debug)]
pub(crate) struct StageTrace {
    pub stage: &'static str,
    pub detail: String,
    pub work: u64,
}

impl StageTrace {
    pub(crate) fn of(ev: &StageEvidence) -> Self {
        StageTrace {
            stage: ev.stage,
            detail: ev.detail.clone(),
            work: ev.work,
        }
    }

    pub(crate) fn replay(&self) -> StageEvidence {
        StageEvidence {
            stage: self.stage,
            detail: self.detail.clone(),
            work: self.work,
            cache: CacheEvent::Replayed,
            wall: Duration::ZERO,
            origin: StageOrigin::Local,
            reused: true,
            subkeys: 0,
        }
    }
}

/// What the verdict cache stores: the verdict, the deciding stage, and
/// the deterministic traces of the post-split stages that produced it,
/// so a cache hit replays the identical evidence chain.
#[derive(Clone, Debug)]
pub(crate) struct DecisionRecord {
    pub verdict: Verdict,
    pub decided_by: &'static str,
    pub stages: Vec<StageTrace>,
}

/// A stage's result: the typed artifact plus its evidence record.
pub struct StageOutcome<A> {
    /// The artifact the stage produced (or fetched from its cache).
    pub artifact: A,
    /// The evidence record for this run.
    pub evidence: StageEvidence,
}

/// One stage of the verdict engine: a name, a structural-fingerprint
/// cache key, and a `run` against the artifact store that either serves
/// the typed artifact from the stage's bounded cache or computes and
/// caches it — always emitting a [`StageEvidence`] record.
pub trait Stage {
    /// The stage's fixed name (also its evidence label).
    const NAME: &'static str;
    /// Which [`ArtifactKind`] cache the stage uses.
    const KIND: ArtifactKind;
    /// Cache key; its structural fingerprint orders poison recovery.
    type Key: Clone + Eq + Hash;
    /// The typed artifact the stage produces.
    type Artifact: Clone;

    /// The cache key for this stage instance.
    fn key(&self) -> Self::Key;
    /// The stage's cache within the store.
    fn cache(store: &ArtifactStore) -> &SharedCache<Self::Key, Self::Artifact>;
    /// Computes the artifact (cache miss path).
    fn compute(&self, budget: &Budget) -> Self::Artifact;
    /// Deterministic one-line summary of an artifact.
    fn detail(artifact: &Self::Artifact) -> String;
    /// Deterministic work counter of an artifact.
    fn work(artifact: &Self::Artifact) -> u64;
    /// Whether an artifact is budget-independent and safe to memoize.
    fn cacheable(_artifact: &Self::Artifact) -> bool {
        true
    }

    /// Runs the stage: cache lookup, compute-on-miss outside the lock
    /// (a racing miss recomputes the same artifact), insert if
    /// cacheable, and evidence emission.
    fn run(&self, store: &ArtifactStore, budget: &Budget) -> StageOutcome<Self::Artifact> {
        let clock = Stopwatch::start();
        let key = self.key();
        if let Some(hit) = Self::cache(store).lock().get(&key) {
            let evidence = StageEvidence {
                stage: Self::NAME,
                detail: Self::detail(&hit),
                work: Self::work(&hit),
                cache: CacheEvent::Hit,
                wall: clock.elapsed(),
                origin: StageOrigin::Local,
                reused: true,
                subkeys: 0,
            };
            return StageOutcome {
                artifact: hit,
                evidence,
            };
        }
        let artifact = self.compute(budget);
        let cache = if Self::cacheable(&artifact) {
            Self::cache(store).lock().insert(key, artifact.clone());
            CacheEvent::Miss
        } else {
            CacheEvent::Uncached
        };
        let evidence = StageEvidence {
            stage: Self::NAME,
            detail: Self::detail(&artifact),
            work: Self::work(&artifact),
            cache,
            wall: clock.elapsed(),
            origin: StageOrigin::Local,
            reused: false,
            subkeys: 0,
        };
        StageOutcome { artifact, evidence }
    }
}

/// §4 splitting of a canonical three-process task.
pub(crate) struct SplitStage {
    pub canonical: Task,
}

impl Stage for SplitStage {
    const NAME: &'static str = "split";
    const KIND: ArtifactKind = ArtifactKind::Split;
    type Key = Task;
    type Artifact = Arc<SubdividedComplex>;

    fn key(&self) -> Task {
        self.canonical.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<SubdividedComplex>> {
        &store.split
    }

    fn compute(&self, _budget: &Budget) -> Arc<SubdividedComplex> {
        Arc::new(SubdividedComplex {
            split: split_all(&self.canonical),
        })
    }

    fn detail(artifact: &Arc<SubdividedComplex>) -> String {
        let split = &artifact.split;
        match &split.degenerate {
            Some(x) => format!(
                "{} split step(s); degenerate at input vertex {x}",
                split.steps.len()
            ),
            None => format!(
                "{} split step(s); O' = {} facet(s)",
                split.steps.len(),
                split.task.output().facet_count()
            ),
        }
    }

    fn work(artifact: &Arc<SubdividedComplex>) -> u64 {
        artifact.split.steps.len() as u64
    }
}

/// Vertex domains, edge image graphs and triangle lists of the split task.
pub(crate) struct LinkStage {
    pub task: Task,
}

impl Stage for LinkStage {
    const NAME: &'static str = "link-graphs";
    const KIND: ArtifactKind = ArtifactKind::LinkGraphs;
    type Key = Task;
    type Artifact = Arc<LinkGraphs>;

    fn key(&self) -> Task {
        self.task.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<LinkGraphs>> {
        &store.links
    }

    fn compute(&self, _budget: &Budget) -> Arc<LinkGraphs> {
        Arc::new(LinkGraphs::build(&self.task))
    }

    fn detail(artifact: &Arc<LinkGraphs>) -> String {
        format!(
            "{} vertex domain(s), {} edge graph(s), {} triangle(s)",
            artifact.vertices.len(),
            artifact.edges.len(),
            artifact.triangles.len()
        )
    }

    fn work(artifact: &Arc<LinkGraphs>) -> u64 {
        (artifact.vertices.len() + artifact.edges.len() + artifact.triangles.len()) as u64
    }
}

/// π₁ presentations and chain complexes per triangle image component.
pub(crate) struct PresentationStage {
    pub task: Task,
    pub links: Arc<LinkGraphs>,
}

impl Stage for PresentationStage {
    const NAME: &'static str = "presentations";
    const KIND: ArtifactKind = ArtifactKind::Presentations;
    type Key = Task;
    type Artifact = Arc<Presentations>;

    fn key(&self) -> Task {
        self.task.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<Presentations>> {
        &store.presentations
    }

    fn compute(&self, _budget: &Budget) -> Arc<Presentations> {
        Arc::new(Presentations::build(&self.task, &self.links))
    }

    fn detail(artifact: &Arc<Presentations>) -> String {
        format!(
            "{} component presentation(s) across {} triangle(s); {} fully simply connected",
            artifact.component_count(),
            artifact.per_triangle.len(),
            artifact.simply_connected_triangles()
        )
    }

    fn work(artifact: &Arc<Presentations>) -> u64 {
        artifact.component_count() as u64
    }
}

/// The continuous-map tiers of §5 (vertex/edge/triangle conditions).
///
/// Keyed on the split task's *branch decomposition* (the ordered list of
/// name-erased single-facet sub-tasks): the outcome is a pure function
/// of the assembled link/presentation artifacts, which are themselves
/// determined by the branches — so renamed or re-batched tasks with the
/// same decomposition share the report.
pub(crate) struct HomologyStage {
    /// The whole split task (what a remote homology job ships).
    pub task: Task,
    /// Its branch decomposition (see [`branch_tasks`]) — the cache key.
    pub branches: Vec<Task>,
    pub links: Arc<LinkGraphs>,
    pub presentations: Arc<Presentations>,
}

impl Stage for HomologyStage {
    const NAME: &'static str = "homology";
    const KIND: ArtifactKind = ArtifactKind::Homology;
    type Key = Vec<Task>;
    type Artifact = Arc<HomologyReport>;

    fn key(&self) -> Vec<Task> {
        self.branches.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Vec<Task>, Arc<HomologyReport>> {
        &store.homology
    }

    fn compute(&self, _budget: &Budget) -> Arc<HomologyReport> {
        let (outcome, assignments) = continuous_map_exists_with(&self.links, &self.presentations);
        Arc::new(HomologyReport {
            outcome,
            assignments,
        })
    }

    fn detail(artifact: &Arc<HomologyReport>) -> String {
        match &artifact.outcome {
            ContinuousOutcome::Exists { .. } => {
                let (assigned, certs) = exists_summary(&artifact.outcome).unwrap_or((0, 0));
                format!(
                    "carried map exists: {assigned} vertex assignment(s), {certs} certificate(s)"
                )
            }
            ContinuousOutcome::Impossible { reason } => match reason {
                ImpossibilityReason::EmptyVertexImage(x) => {
                    format!("impossible: empty image at input vertex {x}")
                }
                ImpossibilityReason::SkeletonDisconnected { edge } => {
                    format!("impossible: skeleton disconnected across input edge {edge}")
                }
                ImpossibilityReason::HomologyObstruction { triangle } => {
                    format!("impossible: H1 obstruction at input triangle {triangle}")
                }
            },
            ContinuousOutcome::Undetermined { reason } => format!("undetermined: {reason}"),
        }
    }

    fn work(artifact: &Arc<HomologyReport>) -> u64 {
        artifact.assignments
    }
}

/// The bounded ACT exploration ladder (the paper's superseded baseline,
/// used as the fallback for the undecidable residue).
pub(crate) struct ExploreStage {
    pub task: Task,
    pub undetermined_reason: String,
    pub configured_rounds: usize,
    pub cancel: CancelToken,
}

impl Stage for ExploreStage {
    const NAME: &'static str = "explore";
    const KIND: ArtifactKind = ArtifactKind::Exploration;
    type Key = (Task, usize);
    type Artifact = Arc<ExplorationReport>;

    fn key(&self) -> (Task, usize) {
        (self.task.clone(), self.configured_rounds)
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<(Task, usize), Arc<ExplorationReport>> {
        &store.exploration
    }

    /// The retry-escalation ladder around the governed ACT fallback:
    /// start at the configured round cap (clamped by the budget) and,
    /// when a deadline is set, keep doubling the cap while wall-clock
    /// remains — cheap first attempt, deeper retries only with leftover
    /// time.
    fn compute(&self, budget: &Budget) -> Arc<ExplorationReport> {
        let t = &self.task;
        let reason = &self.undetermined_reason;
        let mut cap = self.configured_rounds.min(budget.max_act_rounds);
        let mut nodes = 0u64;
        loop {
            let (outcome, searched) =
                solve_act_governed_with_stats(t, &budget.with_max_act_rounds(cap), &self.cancel);
            nodes += searched;
            match outcome {
                ActOutcome::Solvable { rounds, .. } => {
                    // A witness is budget-independent: always cacheable.
                    return Arc::new(ExplorationReport {
                        verdict: Verdict::Solvable {
                            certificate: format!(
                                "ACT fallback found a decision map at {rounds} round(s)"
                            ),
                        },
                        nodes,
                        rounds_cap: cap,
                        budget_independent: true,
                    });
                }
                ActOutcome::Interrupted {
                    rounds_completed,
                    interrupt,
                } => {
                    return Arc::new(ExplorationReport {
                        verdict: Verdict::Unknown {
                            reason: format!(
                                "{reason}; ACT fallback {interrupt} after ruling out \
                                 {rounds_completed} of {cap} round(s)"
                            ),
                        },
                        nodes,
                        rounds_cap: cap,
                        budget_independent: false,
                    });
                }
                ActOutcome::Exhausted { .. } => {
                    let next = cap.saturating_mul(2).min(budget.max_act_rounds);
                    if budget.deadline.is_none() || budget.deadline_exceeded() || next == cap {
                        // The verdict depends on the budget unless the
                        // ladder stopped exactly at the configured bound.
                        return Arc::new(ExplorationReport {
                            verdict: Verdict::Unknown {
                                reason: format!("{reason}; ACT fallback exhausted {cap} round(s)"),
                            },
                            nodes,
                            rounds_cap: cap,
                            budget_independent: cap == self.configured_rounds,
                        });
                    }
                    cap = next;
                }
            }
        }
    }

    fn detail(artifact: &Arc<ExplorationReport>) -> String {
        let kind = match &artifact.verdict {
            Verdict::Solvable { .. } => "found a decision map",
            Verdict::Unsolvable { .. } => "refuted",
            Verdict::Unknown { .. } => "exhausted",
        };
        format!(
            "ACT ladder {kind} at round cap {}; {} node(s) expanded",
            artifact.rounds_cap, artifact.nodes
        )
    }

    fn work(artifact: &Arc<ExplorationReport>) -> u64 {
        artifact.nodes
    }

    fn cacheable(artifact: &Arc<ExplorationReport>) -> bool {
        artifact.budget_independent
    }
}

/// The name-erased branch decomposition of a (typically split) task: one
/// single-facet restriction per input facet, in complex (facet) order.
/// These sub-tasks are the cache keys of the link-graph and presentation
/// stages — identical branches of different tasks share artifacts.
pub(crate) fn branch_tasks(task: &Task) -> Vec<Task> {
    task.input()
        .facets()
        .map(|f| facet_restriction(task, f))
        .collect()
}

/// Folds per-branch evidence into the single aggregated record the
/// evidence chain carries: detail and work come from the *global*
/// artifact (so the deterministic digest is identical to a whole-task
/// run), cache is `Hit` only when every branch hit, `reused` when any
/// branch did, and the origin reports the first non-local branch.
fn aggregate_branch_evidence(
    stage: &'static str,
    detail: String,
    work: u64,
    branches: &[StageEvidence],
    wall: Duration,
) -> StageEvidence {
    let all_hit = !branches.is_empty() && branches.iter().all(|e| e.cache == CacheEvent::Hit);
    let any_hit = branches.iter().any(|e| e.cache == CacheEvent::Hit);
    let origin = branches
        .iter()
        .map(|e| e.origin)
        .find(|o| *o != StageOrigin::Local)
        .unwrap_or(StageOrigin::Local);
    StageEvidence {
        stage,
        detail,
        work,
        cache: if all_hit {
            CacheEvent::Hit
        } else {
            CacheEvent::Miss
        },
        wall,
        origin,
        reused: any_hit,
        subkeys: branches.len(),
    }
}

/// Assembles the global [`LinkGraphs`] of `task` from its per-branch
/// artifacts. A simplex shared by several facets has the *same* carrier
/// entry in every branch containing it (restriction preserves entries),
/// so any branch's part can stand in for the global computation; the
/// global element order is re-derived from the task's own complex, which
/// makes the result byte-identical to `LinkGraphs::build(task)`.
fn assemble_links(task: &Task, branch_links: &[Arc<LinkGraphs>]) -> LinkGraphs {
    let mut domain_of = BTreeMap::new();
    let mut edge_data = BTreeMap::new();
    for part in branch_links {
        for (x, dom) in part.vertices.iter().zip(&part.domains) {
            domain_of.entry(x.clone()).or_insert_with(|| dom.clone());
        }
        for ((e, graph), cycles) in part
            .edges
            .iter()
            .zip(&part.edge_graphs)
            .zip(&part.edge_cycles)
        {
            edge_data
                .entry(e.clone())
                .or_insert_with(|| (graph.clone(), cycles.clone()));
        }
    }
    let input = task.input();
    let vertices: Vec<_> = input.vertices().cloned().collect();
    let domains: Vec<_> = vertices
        .iter()
        .map(|x| {
            domain_of
                .get(x)
                .expect("every input vertex lies in some facet branch") // chromata-lint: allow(P1): each input simplex is a face of some facet, so its branch computed it
                .clone()
        })
        .collect();
    let edges: Vec<_> = input.simplices_of_dim(1).cloned().collect();
    let (edge_graphs, edge_cycles): (Vec<_>, Vec<_>) = edges
        .iter()
        .map(|e| {
            edge_data
                .get(e)
                .expect("every input edge lies in some facet branch") // chromata-lint: allow(P1): each input simplex is a face of some facet, so its branch computed it
                .clone()
        })
        .unzip();
    let triangles: Vec<_> = input.simplices_of_dim(2).cloned().collect();
    LinkGraphs {
        vertices,
        domains,
        edges,
        edge_graphs,
        edge_cycles,
        triangles,
    }
}

/// Assembles the global [`Presentations`] (parallel to the global
/// triangle list) from per-branch presentation artifacts — the same
/// shared-entry argument as [`assemble_links`].
fn assemble_presentations(
    global_links: &LinkGraphs,
    branch_links: &[Arc<LinkGraphs>],
    branch_presentations: &[Arc<Presentations>],
) -> Presentations {
    let mut by_triangle: BTreeMap<_, &TrianglePresentations> = BTreeMap::new();
    for (links, pres) in branch_links.iter().zip(branch_presentations) {
        for (sigma, tp) in links.triangles.iter().zip(&pres.per_triangle) {
            by_triangle.entry(sigma.clone()).or_insert(tp);
        }
    }
    let per_triangle = global_links
        .triangles
        .iter()
        .map(|sigma| {
            (*by_triangle
                .get(sigma)
                .expect("every input triangle lies in some facet branch")) // chromata-lint: allow(P1): each input simplex is a face of some facet, so its branch computed it
            .clone()
        })
        .collect();
    Presentations { per_triangle }
}

/// Runs the link-graph stage per branch — dispatching each branch to the
/// shard pool when `dispatch` is set and one is configured — and
/// assembles the global artifact, emitting one aggregated evidence
/// record. Returns the branch artifacts too (the presentation stage
/// consumes them branch-wise).
pub(crate) fn run_links(
    task: &Task,
    branches: &[Task],
    store: &ArtifactStore,
    budget: &Budget,
    dispatch: bool,
) -> (Arc<LinkGraphs>, Vec<Arc<LinkGraphs>>, StageEvidence) {
    let clock = Stopwatch::start();
    let mut branch_links = Vec::with_capacity(branches.len());
    let mut branch_evidence = Vec::with_capacity(branches.len());
    for branch in branches {
        let stage = LinkStage {
            task: branch.clone(),
        };
        let outcome = if dispatch {
            remote::run_distributed(&stage, store, budget)
        } else {
            stage.run(store, budget)
        };
        branch_links.push(outcome.artifact);
        branch_evidence.push(outcome.evidence);
    }
    let global = Arc::new(assemble_links(task, &branch_links));
    let evidence = aggregate_branch_evidence(
        LinkStage::NAME,
        LinkStage::detail(&global),
        LinkStage::work(&global),
        &branch_evidence,
        clock.elapsed(),
    );
    (global, branch_links, evidence)
}

/// Runs the presentation stage per branch (each against that branch's
/// own link artifact) and assembles the global artifact — the
/// presentation-side counterpart of [`run_links`].
pub(crate) fn run_presentations(
    branches: &[Task],
    branch_links: &[Arc<LinkGraphs>],
    global_links: &Arc<LinkGraphs>,
    store: &ArtifactStore,
    budget: &Budget,
    dispatch: bool,
) -> (Arc<Presentations>, StageEvidence) {
    let clock = Stopwatch::start();
    let mut branch_presentations = Vec::with_capacity(branches.len());
    let mut branch_evidence = Vec::with_capacity(branches.len());
    for (branch, links) in branches.iter().zip(branch_links) {
        let stage = PresentationStage {
            task: branch.clone(),
            links: Arc::clone(links),
        };
        let outcome = if dispatch {
            remote::run_distributed(&stage, store, budget)
        } else {
            stage.run(store, budget)
        };
        branch_presentations.push(outcome.artifact);
        branch_evidence.push(outcome.evidence);
    }
    let global = Arc::new(assemble_presentations(
        global_links,
        branch_links,
        &branch_presentations,
    ));
    let evidence = aggregate_branch_evidence(
        PresentationStage::NAME,
        PresentationStage::detail(&global),
        PresentationStage::work(&global),
        &branch_evidence,
        clock.elapsed(),
    );
    (global, evidence)
}

/// Runs one whole-task stage — remotely when a shard pool is configured
/// (see [`remote`]), locally otherwise — appending its evidence to the
/// live chain and its deterministic trace to the record destined for the
/// verdict cache.
fn run_stage<S: remote::DistStage>(
    stage: &S,
    store: &ArtifactStore,
    budget: &Budget,
    evidence: &mut EvidenceChain,
    traces: &mut Vec<StageTrace>,
) -> S::Artifact {
    let outcome = remote::run_distributed(stage, store, budget);
    traces.push(StageTrace::of(&outcome.evidence));
    evidence.stages.push(outcome.evidence);
    outcome.artifact
}

/// Runs the post-split decision stages. Returns the verdict, the name of
/// the deciding stage, the deterministic stage traces (for verdict-cache
/// replay), and whether the verdict is budget-independent and therefore
/// safe to memoize.
fn decide_staged(
    split: &SubdividedComplex,
    options: PipelineOptions,
    budget: &Budget,
    cancel: &CancelToken,
    store: &ArtifactStore,
    evidence: &mut EvidenceChain,
) -> (Verdict, &'static str, Vec<StageTrace>, bool) {
    let mut traces = Vec::new();
    if let Err(interrupt) = budget.check(cancel) {
        return (
            Verdict::Unknown {
                reason: format!("analysis {interrupt} before the decision tiers ran"),
            },
            "budget",
            traces,
            false,
        );
    }
    if let Some(x) = &split.split.degenerate {
        return (
            Verdict::Unsolvable {
                obstruction: Obstruction::ArticulationPoints {
                    witness: format!(
                        "splitting emptied the solo image of input vertex {x}: \
                         the incident edges force incompatible link components"
                    ),
                },
            },
            "split",
            traces,
            true,
        );
    }
    let t = &split.split.task;
    let branches = branch_tasks(t);
    let (links, branch_links, link_evidence) = run_links(t, &branches, store, budget, true);
    traces.push(StageTrace::of(&link_evidence));
    evidence.stages.push(link_evidence);
    let (presentations, pres_evidence) =
        run_presentations(&branches, &branch_links, &links, store, budget, true);
    traces.push(StageTrace::of(&pres_evidence));
    evidence.stages.push(pres_evidence);
    let homology = run_stage(
        &HomologyStage {
            task: t.clone(),
            branches,
            links,
            presentations,
        },
        store,
        budget,
        evidence,
        &mut traces,
    );
    match &homology.outcome {
        ContinuousOutcome::Exists { certificates, .. } => (
            Verdict::Solvable {
                certificate: if certificates.is_empty() {
                    "continuous carried map exists (vertex/edge tiers)".to_owned()
                } else {
                    certificates.join("; ")
                },
            },
            "homology",
            traces,
            true,
        ),
        ContinuousOutcome::Impossible { reason } => {
            let obstruction = match reason {
                ImpossibilityReason::SkeletonDisconnected { edge } => {
                    Obstruction::ArticulationPoints {
                        witness: format!(
                            "after {} split step(s), no choice of solo outputs is connected across input edge {edge}",
                            split.split.steps.len()
                        ),
                    }
                }
                ImpossibilityReason::HomologyObstruction { triangle } => {
                    Obstruction::Contractibility {
                        witness: format!(
                            "the boundary loop of input triangle {triangle} is non-contractible (H1 certificate)"
                        ),
                    }
                }
                ImpossibilityReason::EmptyVertexImage(x) => Obstruction::ArticulationPoints {
                    witness: format!("input vertex {x} has an empty image"),
                },
            };
            (
                Verdict::Unsolvable { obstruction },
                "homology",
                traces,
                true,
            )
        }
        ContinuousOutcome::Undetermined { reason } => {
            if options.act_fallback_rounds == 0 {
                return (
                    Verdict::Unknown {
                        reason: reason.clone(),
                    },
                    "homology",
                    traces,
                    true,
                );
            }
            let report = run_stage(
                &ExploreStage {
                    task: t.clone(),
                    undetermined_reason: reason.clone(),
                    configured_rounds: options.act_fallback_rounds,
                    cancel: cancel.clone(),
                },
                store,
                budget,
                evidence,
                &mut traces,
            );
            let cacheable = report.budget_independent;
            (report.verdict.clone(), "explore", traces, cacheable)
        }
    }
}

/// The full staged engine behind [`crate::analyze_governed`]: live
/// canonicalization, the (possibly skipped) split stage, verdict-cache
/// replay, and the per-branch decision tiers. This is the whole former
/// monolith pipeline folded into the stage layer; the pipeline module
/// keeps only the public façades and types.
pub(crate) fn run_engine(
    task: &Task,
    options: PipelineOptions,
    budget: &Budget,
    cancel: &CancelToken,
) -> Analysis {
    let store = cache::store();
    let mut evidence = EvidenceChain::new();

    // Canonicalization is a cheap pure quotient — always run live so the
    // evidence chain starts identically on cold and warm paths.
    let clock = Stopwatch::start();
    let reachable = task.restricted_to_reachable();
    let canonical = canonicalize(&reachable);
    evidence.stages.push(StageEvidence {
        stage: "canonicalize",
        detail: format!(
            "|I| = {} facet(s); canonical |O*| = {} facet(s)",
            canonical.input().facet_count(),
            canonical.output().facet_count()
        ),
        work: canonical.output().facet_count() as u64,
        cache: CacheEvent::Uncached,
        wall: clock.elapsed(),
        origin: StageOrigin::Local,
        reused: false,
        subkeys: 0,
    });

    let split_art = if task.process_count() == 3 {
        let outcome = remote::run_distributed(
            &SplitStage {
                canonical: canonical.clone(),
            },
            store,
            budget,
        );
        evidence.stages.push(outcome.evidence);
        outcome.artifact
    } else {
        // Proposition 5.4: two-process tasks are decided on the raw task;
        // one-process tasks trivially.
        let clock = Stopwatch::start();
        let art = Arc::new(SubdividedComplex {
            split: SplitOutcome {
                task: canonical.clone(),
                steps: Vec::new(),
                degenerate: None,
            },
        });
        evidence.stages.push(StageEvidence {
            stage: "split",
            detail: format!(
                "splitting skipped for a {}-process task (Proposition 5.4)",
                task.process_count()
            ),
            work: 0,
            cache: CacheEvent::Uncached,
            wall: clock.elapsed(),
            origin: StageOrigin::Local,
            reused: false,
            subkeys: 0,
        });
        art
    };

    let key = (canonical.clone(), options.act_fallback_rounds);
    let cached = store.verdict.lock().get(&key);
    // Decide outside the lock; a racing miss recomputes the same verdict.
    let verdict = match cached {
        Some(record) => {
            // Replay the deterministic post-split traces: the evidence
            // chain of a cache hit matches the chain that built it.
            for trace in &record.stages {
                evidence.stages.push(trace.replay());
            }
            evidence.decided_by = record.decided_by;
            record.verdict
        }
        None => {
            let (v, decided_by, traces, cacheable) =
                decide_staged(&split_art, options, budget, cancel, store, &mut evidence);
            evidence.decided_by = decided_by;
            // Budget-induced answers are circumstantial — never poison the
            // cache with them; a later unstarved run must re-decide.
            if cacheable {
                store.verdict.lock().insert(
                    key,
                    DecisionRecord {
                        verdict: v.clone(),
                        decided_by,
                        stages: traces,
                    },
                );
            }
            v
        }
    };
    Analysis {
        canonical,
        split: split_art.split.clone(),
        verdict,
        evidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{identity_task, two_set_agreement};

    #[test]
    fn stage_runs_hit_their_cache_on_repeat() {
        // A local assertion against the process-wide store: the second
        // identical run must be a hit (the first may be hit or miss
        // depending on concurrently running tests).
        let canonical = chromata_task::canonicalize(&two_set_agreement());
        let stage = SplitStage {
            canonical: canonical.clone(),
        };
        let budget = Budget::unlimited();
        let first = stage.run(cache::store(), &budget);
        let second = stage.run(cache::store(), &budget);
        assert_eq!(second.evidence.cache, CacheEvent::Hit);
        assert_eq!(first.evidence.detail, second.evidence.detail);
        assert_eq!(first.evidence.work, second.evidence.work);
        assert_eq!(second.evidence.stage, "split");
    }

    #[test]
    fn evidence_digest_ignores_wall_and_cache_events() {
        let mut a = EvidenceChain::new();
        a.decided_by = "homology";
        a.stages.push(StageEvidence {
            stage: "split",
            detail: "0 split step(s); O' = 3 facet(s)".into(),
            work: 0,
            cache: CacheEvent::Miss,
            wall: Duration::from_millis(7),
            origin: StageOrigin::Local,
            reused: false,
            subkeys: 0,
        });
        let mut b = a.clone();
        b.stages[0].cache = CacheEvent::Hit;
        b.stages[0].wall = Duration::ZERO;
        b.stages[0].origin = StageOrigin::Shard {
            shard: 1,
            attempt: 2,
        };
        b.stages[0].reused = true;
        b.stages[0].subkeys = 5;
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        // But the deterministic parts do matter.
        b.stages[0].work = 1;
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
        let mut c = a.clone();
        c.decided_by = "explore";
        assert_ne!(a.deterministic_digest(), c.deterministic_digest());
    }

    #[test]
    fn editing_one_branch_reuses_the_others() {
        use chromata_topology::{Complex, Simplex, Vertex};
        // Two triangles sharing an edge; Δ maps each simplex to itself.
        let v = |c: u8, x: i64| Vertex::of(c, x);
        let t1 = Simplex::new(vec![v(0, 0), v(1, 0), v(2, 0)]);
        let t2 = Simplex::new(vec![v(0, 1), v(1, 0), v(2, 0)]);
        let input = Complex::from_facets([t1.clone(), t2.clone()]);
        let base =
            Task::from_facet_delta("branch-base", input.clone(), |sigma| vec![sigma.clone()])
                .expect("identity-style task is valid");
        // The "edit": only τ2's entry changes (its solo vertex moves),
        // while every simplex of τ1's closure keeps its carrier — so
        // exactly one branch differs.
        let edited = Task::from_facet_delta("branch-edited", input, |sigma| {
            if *sigma == t2 {
                vec![t2.substituted(&v(0, 1), v(0, 7))]
            } else {
                vec![sigma.clone()]
            }
        })
        .expect("edited task is valid");

        // A private store isolates the counters from concurrent tests.
        let store = ArtifactStore::with_capacity(64);
        let budget = Budget::unlimited();
        let branches = branch_tasks(&base);
        assert_eq!(branches.len(), 2);
        let (cold_links, cold_branch_links, cold_ev) =
            run_links(&base, &branches, &store, &budget, false);
        assert_eq!(cold_ev.cache, CacheEvent::Miss);
        assert!(!cold_ev.reused);
        assert_eq!(cold_ev.subkeys, 2);
        let (_, cold_pres_ev) = run_presentations(
            &branches,
            &cold_branch_links,
            &cold_links,
            &store,
            &budget,
            false,
        );
        assert_eq!(cold_pres_ev.subkeys, 2);
        let after_cold = store.links.lock().stats();
        assert_eq!(after_cold.reuse_hits, 0, "cold run reuses nothing");
        assert_eq!(after_cold.misses, 2);

        // Re-analyzing the edited task re-runs only the edited branch:
        // τ1's branch artifact is served from the cache (a reuse hit).
        let edited_branches = branch_tasks(&edited);
        let (edited_links, edited_branch_links, warm_ev) =
            run_links(&edited, &edited_branches, &store, &budget, false);
        assert!(warm_ev.reused, "the unedited branch must be reused");
        assert_eq!(warm_ev.cache, CacheEvent::Miss, "one branch recomputed");
        let after_edit = store.links.lock().stats();
        assert_eq!(after_edit.lookups, after_cold.lookups + 2);
        assert_eq!(after_edit.reuse_hits, 1, "exactly one branch reused");
        assert_eq!(after_edit.misses, after_cold.misses + 1);
        let (_, warm_pres_ev) = run_presentations(
            &edited_branches,
            &edited_branch_links,
            &edited_links,
            &store,
            &budget,
            false,
        );
        assert!(warm_pres_ev.reused);
        assert_eq!(store.presentations.lock().stats().reuse_hits, 1);

        // The assembled global artifact matches a direct whole-task
        // build (detail and work feed the deterministic digest).
        let direct = Arc::new(LinkGraphs::build(&edited));
        assert_eq!(LinkStage::detail(&edited_links), LinkStage::detail(&direct));
        assert_eq!(LinkStage::work(&edited_links), LinkStage::work(&direct));
    }

    #[test]
    fn branch_tasks_are_name_erased_and_ordered() {
        let task = chromata_task::canonicalize(&two_set_agreement());
        let branches = branch_tasks(&task);
        assert_eq!(branches.len(), task.input().facet_count());
        for (facet, branch) in task.input().facets().zip(&branches) {
            assert_eq!(branch.name(), "");
            assert_eq!(branch.input().facets().next(), Some(facet));
        }
    }

    #[test]
    fn explore_stage_is_uncacheable_when_budget_dependent() {
        let report = ExplorationReport {
            verdict: Verdict::Unknown { reason: "x".into() },
            nodes: 12,
            rounds_cap: 4,
            budget_independent: false,
        };
        assert!(!ExploreStage::cacheable(&Arc::new(report)));
        let witness = ExplorationReport {
            verdict: Verdict::Solvable {
                certificate: "c".into(),
            },
            nodes: 12,
            rounds_cap: 4,
            budget_independent: true,
        };
        assert!(ExploreStage::cacheable(&Arc::new(witness)));
        let _ = identity_task(2);
    }
}
