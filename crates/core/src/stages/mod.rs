//! The staged verdict engine (architecture layer under [`crate::analyze`]).
//!
//! The decision procedure is inherently staged — canonicalize, split
//! (§4), build link graphs, derive π₁ presentations, run the
//! homology/word-problem tiers (§5), fall back to the bounded ACT
//! exploration — and this module makes the stages explicit:
//!
//! ```text
//! canonicalize ─▶ split ─▶ link-graphs ─▶ presentations ─▶ homology ─▶ explore
//!     (live)    [cached]     [cached]        [cached]       [cached]   [cached]
//! ```
//!
//! Every stage implements [`Stage`]: it names itself, derives a
//! structural-fingerprint cache key, and `run`s against the
//! [`ArtifactStore`](cache::ArtifactStore) — returning its typed
//! artifact plus a [`StageEvidence`] record (detail, work counter,
//! cache event, wall clock). The engine threads the evidence into the
//! [`EvidenceChain`] every [`crate::Analysis`] now carries, which is
//! what `chromata explain` prints.

pub mod artifacts;
pub mod cache;
pub mod persist;
pub mod remote;

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

use chromata_task::Task;
use chromata_topology::{structural_fingerprint, Budget, CancelToken, Stopwatch};

use crate::act::solve_act_governed_with_stats;
use crate::act::ActOutcome;
use crate::continuous::{continuous_map_exists_with, ContinuousOutcome, ImpossibilityReason};
use crate::pipeline::Verdict;
use crate::splitting::split_all;

use artifacts::{
    exists_summary, ExplorationReport, HomologyReport, LinkGraphs, Presentations, SubdividedComplex,
};
use cache::{ArtifactKind, ArtifactStore, SharedCache};

/// How a stage's artifact interacted with its cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheEvent {
    /// Served from the stage cache without recomputation.
    Hit,
    /// Computed by the stage and inserted into the cache.
    Miss,
    /// Computed but not cached (budget-dependent or per-call work).
    Uncached,
    /// Replayed from a cached verdict record (the stage did not run).
    Replayed,
}

impl CacheEvent {
    /// Stable lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheEvent::Hit => "hit",
            CacheEvent::Miss => "miss",
            CacheEvent::Uncached => "uncached",
            CacheEvent::Replayed => "replay",
        }
    }
}

impl fmt::Display for CacheEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a stage's artifact was computed. Circumstantial provenance —
/// like [`StageEvidence::wall`] and [`StageEvidence::cache`] it is
/// excluded from [`EvidenceChain::deterministic_digest`], so a
/// shard-computed analysis and a single-machine run agree byte-for-byte
/// on their digests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageOrigin {
    /// Computed in-process (no remote engine configured, a cache hit,
    /// or a budget-sensitive stage pinned local for determinism).
    Local,
    /// Fetched from a worker shard on the given dispatch attempt
    /// (1-based).
    Shard {
        /// Shard index within the configured pool.
        shard: usize,
        /// Dispatch attempt that succeeded (1 = first try).
        attempt: u32,
    },
    /// Every remote option was exhausted; the stage was recomputed
    /// locally (graceful degradation, never a missing artifact).
    LocalFallback,
}

impl StageOrigin {
    /// Stable label, e.g. `local`, `shard-1#2`, `local-fallback`.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            StageOrigin::Local => "local".to_owned(),
            StageOrigin::Shard { shard, attempt } => format!("shard-{shard}#{attempt}"),
            StageOrigin::LocalFallback => "local-fallback".to_owned(),
        }
    }
}

impl fmt::Display for StageOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One stage's contribution to an analysis: what it concluded, how much
/// work it did, and how it interacted with its cache.
#[derive(Clone, Debug)]
pub struct StageEvidence {
    /// Stage name (one of the engine's fixed stage names).
    pub stage: &'static str,
    /// Deterministic human-readable summary of the artifact.
    pub detail: String,
    /// Deterministic work counter (facets, assignments, search nodes …).
    pub work: u64,
    /// Cache interaction for this run.
    pub cache: CacheEvent,
    /// Wall-clock time the stage took in this run (zero when replayed).
    /// Excluded from [`EvidenceChain::deterministic_digest`].
    pub wall: Duration,
    /// Which machine computed the artifact (shard, local, or fallback).
    /// Excluded from [`EvidenceChain::deterministic_digest`].
    pub origin: StageOrigin,
}

/// The full evidence chain of one analysis: every stage that ran (or
/// was replayed from the verdict cache) plus the stage that decided.
#[derive(Clone, Debug)]
pub struct EvidenceChain {
    /// Per-stage evidence, in execution order.
    pub stages: Vec<StageEvidence>,
    /// Name of the stage whose answer became the verdict.
    pub decided_by: &'static str,
}

impl EvidenceChain {
    pub(crate) fn new() -> Self {
        EvidenceChain {
            stages: Vec::new(),
            decided_by: "unknown",
        }
    }

    /// A fingerprint over the *deterministic* parts of the chain — stage
    /// names, details, work counters and the deciding stage — excluding
    /// wall-clock and cache events, which legitimately differ between a
    /// cold and a warm run of the same analysis. Two analyses of the
    /// same task under the same options always agree on this digest,
    /// whether run alone, repeated, or inside [`crate::analyze_batch`].
    #[must_use]
    pub fn deterministic_digest(&self) -> u64 {
        let parts: Vec<(&str, &str, u64)> = self
            .stages
            .iter()
            .map(|s| (s.stage, s.detail.as_str(), s.work))
            .collect();
        structural_fingerprint(&(parts, self.decided_by))
    }
}

impl fmt::Display for EvidenceChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "decided by: {}", self.decided_by)?;
        for s in &self.stages {
            write!(
                f,
                "  {:<13} {:<8} work {:>8}  {:>9.3}ms  {}",
                s.stage,
                s.cache,
                s.work,
                s.wall.as_secs_f64() * 1e3,
                s.detail,
            )?;
            if s.origin != StageOrigin::Local {
                write!(f, "  [{}]", s.origin)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The compact, replayable form of a stage's evidence stored in the
/// verdict cache: everything deterministic, nothing circumstantial.
#[derive(Clone, Debug)]
pub(crate) struct StageTrace {
    pub stage: &'static str,
    pub detail: String,
    pub work: u64,
}

impl StageTrace {
    pub(crate) fn of(ev: &StageEvidence) -> Self {
        StageTrace {
            stage: ev.stage,
            detail: ev.detail.clone(),
            work: ev.work,
        }
    }

    pub(crate) fn replay(&self) -> StageEvidence {
        StageEvidence {
            stage: self.stage,
            detail: self.detail.clone(),
            work: self.work,
            cache: CacheEvent::Replayed,
            wall: Duration::ZERO,
            origin: StageOrigin::Local,
        }
    }
}

/// What the verdict cache stores: the verdict, the deciding stage, and
/// the deterministic traces of the post-split stages that produced it,
/// so a cache hit replays the identical evidence chain.
#[derive(Clone, Debug)]
pub(crate) struct DecisionRecord {
    pub verdict: Verdict,
    pub decided_by: &'static str,
    pub stages: Vec<StageTrace>,
}

/// A stage's result: the typed artifact plus its evidence record.
pub struct StageOutcome<A> {
    /// The artifact the stage produced (or fetched from its cache).
    pub artifact: A,
    /// The evidence record for this run.
    pub evidence: StageEvidence,
}

/// One stage of the verdict engine: a name, a structural-fingerprint
/// cache key, and a `run` against the artifact store that either serves
/// the typed artifact from the stage's bounded cache or computes and
/// caches it — always emitting a [`StageEvidence`] record.
pub trait Stage {
    /// The stage's fixed name (also its evidence label).
    const NAME: &'static str;
    /// Which [`ArtifactKind`] cache the stage uses.
    const KIND: ArtifactKind;
    /// Cache key; its structural fingerprint orders poison recovery.
    type Key: Clone + Eq + Hash;
    /// The typed artifact the stage produces.
    type Artifact: Clone;

    /// The cache key for this stage instance.
    fn key(&self) -> Self::Key;
    /// The stage's cache within the store.
    fn cache(store: &ArtifactStore) -> &SharedCache<Self::Key, Self::Artifact>;
    /// Computes the artifact (cache miss path).
    fn compute(&self, budget: &Budget) -> Self::Artifact;
    /// Deterministic one-line summary of an artifact.
    fn detail(artifact: &Self::Artifact) -> String;
    /// Deterministic work counter of an artifact.
    fn work(artifact: &Self::Artifact) -> u64;
    /// Whether an artifact is budget-independent and safe to memoize.
    fn cacheable(_artifact: &Self::Artifact) -> bool {
        true
    }

    /// Runs the stage: cache lookup, compute-on-miss outside the lock
    /// (a racing miss recomputes the same artifact), insert if
    /// cacheable, and evidence emission.
    fn run(&self, store: &ArtifactStore, budget: &Budget) -> StageOutcome<Self::Artifact> {
        let clock = Stopwatch::start();
        let key = self.key();
        if let Some(hit) = Self::cache(store).lock().get(&key) {
            let evidence = StageEvidence {
                stage: Self::NAME,
                detail: Self::detail(&hit),
                work: Self::work(&hit),
                cache: CacheEvent::Hit,
                wall: clock.elapsed(),
                origin: StageOrigin::Local,
            };
            return StageOutcome {
                artifact: hit,
                evidence,
            };
        }
        let artifact = self.compute(budget);
        let cache = if Self::cacheable(&artifact) {
            Self::cache(store).lock().insert(key, artifact.clone());
            CacheEvent::Miss
        } else {
            CacheEvent::Uncached
        };
        let evidence = StageEvidence {
            stage: Self::NAME,
            detail: Self::detail(&artifact),
            work: Self::work(&artifact),
            cache,
            wall: clock.elapsed(),
            origin: StageOrigin::Local,
        };
        StageOutcome { artifact, evidence }
    }
}

/// §4 splitting of a canonical three-process task.
pub(crate) struct SplitStage {
    pub canonical: Task,
}

impl Stage for SplitStage {
    const NAME: &'static str = "split";
    const KIND: ArtifactKind = ArtifactKind::Split;
    type Key = Task;
    type Artifact = Arc<SubdividedComplex>;

    fn key(&self) -> Task {
        self.canonical.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<SubdividedComplex>> {
        &store.split
    }

    fn compute(&self, _budget: &Budget) -> Arc<SubdividedComplex> {
        Arc::new(SubdividedComplex {
            split: split_all(&self.canonical),
        })
    }

    fn detail(artifact: &Arc<SubdividedComplex>) -> String {
        let split = &artifact.split;
        match &split.degenerate {
            Some(x) => format!(
                "{} split step(s); degenerate at input vertex {x}",
                split.steps.len()
            ),
            None => format!(
                "{} split step(s); O' = {} facet(s)",
                split.steps.len(),
                split.task.output().facet_count()
            ),
        }
    }

    fn work(artifact: &Arc<SubdividedComplex>) -> u64 {
        artifact.split.steps.len() as u64
    }
}

/// Vertex domains, edge image graphs and triangle lists of the split task.
pub(crate) struct LinkStage {
    pub task: Task,
}

impl Stage for LinkStage {
    const NAME: &'static str = "link-graphs";
    const KIND: ArtifactKind = ArtifactKind::LinkGraphs;
    type Key = Task;
    type Artifact = Arc<LinkGraphs>;

    fn key(&self) -> Task {
        self.task.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<LinkGraphs>> {
        &store.links
    }

    fn compute(&self, _budget: &Budget) -> Arc<LinkGraphs> {
        Arc::new(LinkGraphs::build(&self.task))
    }

    fn detail(artifact: &Arc<LinkGraphs>) -> String {
        format!(
            "{} vertex domain(s), {} edge graph(s), {} triangle(s)",
            artifact.vertices.len(),
            artifact.edges.len(),
            artifact.triangles.len()
        )
    }

    fn work(artifact: &Arc<LinkGraphs>) -> u64 {
        (artifact.vertices.len() + artifact.edges.len() + artifact.triangles.len()) as u64
    }
}

/// π₁ presentations and chain complexes per triangle image component.
pub(crate) struct PresentationStage {
    pub task: Task,
    pub links: Arc<LinkGraphs>,
}

impl Stage for PresentationStage {
    const NAME: &'static str = "presentations";
    const KIND: ArtifactKind = ArtifactKind::Presentations;
    type Key = Task;
    type Artifact = Arc<Presentations>;

    fn key(&self) -> Task {
        self.task.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<Presentations>> {
        &store.presentations
    }

    fn compute(&self, _budget: &Budget) -> Arc<Presentations> {
        Arc::new(Presentations::build(&self.task, &self.links))
    }

    fn detail(artifact: &Arc<Presentations>) -> String {
        format!(
            "{} component presentation(s) across {} triangle(s); {} fully simply connected",
            artifact.component_count(),
            artifact.per_triangle.len(),
            artifact.simply_connected_triangles()
        )
    }

    fn work(artifact: &Arc<Presentations>) -> u64 {
        artifact.component_count() as u64
    }
}

/// The continuous-map tiers of §5 (vertex/edge/triangle conditions).
pub(crate) struct HomologyStage {
    pub task: Task,
    pub links: Arc<LinkGraphs>,
    pub presentations: Arc<Presentations>,
}

impl Stage for HomologyStage {
    const NAME: &'static str = "homology";
    const KIND: ArtifactKind = ArtifactKind::Homology;
    type Key = Task;
    type Artifact = Arc<HomologyReport>;

    fn key(&self) -> Task {
        self.task.clone()
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<Task, Arc<HomologyReport>> {
        &store.homology
    }

    fn compute(&self, _budget: &Budget) -> Arc<HomologyReport> {
        let (outcome, assignments) = continuous_map_exists_with(&self.links, &self.presentations);
        Arc::new(HomologyReport {
            outcome,
            assignments,
        })
    }

    fn detail(artifact: &Arc<HomologyReport>) -> String {
        match &artifact.outcome {
            ContinuousOutcome::Exists { .. } => {
                let (assigned, certs) = exists_summary(&artifact.outcome).unwrap_or((0, 0));
                format!(
                    "carried map exists: {assigned} vertex assignment(s), {certs} certificate(s)"
                )
            }
            ContinuousOutcome::Impossible { reason } => match reason {
                ImpossibilityReason::EmptyVertexImage(x) => {
                    format!("impossible: empty image at input vertex {x}")
                }
                ImpossibilityReason::SkeletonDisconnected { edge } => {
                    format!("impossible: skeleton disconnected across input edge {edge}")
                }
                ImpossibilityReason::HomologyObstruction { triangle } => {
                    format!("impossible: H1 obstruction at input triangle {triangle}")
                }
            },
            ContinuousOutcome::Undetermined { reason } => format!("undetermined: {reason}"),
        }
    }

    fn work(artifact: &Arc<HomologyReport>) -> u64 {
        artifact.assignments
    }
}

/// The bounded ACT exploration ladder (the paper's superseded baseline,
/// used as the fallback for the undecidable residue).
pub(crate) struct ExploreStage {
    pub task: Task,
    pub undetermined_reason: String,
    pub configured_rounds: usize,
    pub cancel: CancelToken,
}

impl Stage for ExploreStage {
    const NAME: &'static str = "explore";
    const KIND: ArtifactKind = ArtifactKind::Exploration;
    type Key = (Task, usize);
    type Artifact = Arc<ExplorationReport>;

    fn key(&self) -> (Task, usize) {
        (self.task.clone(), self.configured_rounds)
    }

    fn cache(store: &ArtifactStore) -> &SharedCache<(Task, usize), Arc<ExplorationReport>> {
        &store.exploration
    }

    /// The retry-escalation ladder around the governed ACT fallback:
    /// start at the configured round cap (clamped by the budget) and,
    /// when a deadline is set, keep doubling the cap while wall-clock
    /// remains — cheap first attempt, deeper retries only with leftover
    /// time.
    fn compute(&self, budget: &Budget) -> Arc<ExplorationReport> {
        let t = &self.task;
        let reason = &self.undetermined_reason;
        let mut cap = self.configured_rounds.min(budget.max_act_rounds);
        let mut nodes = 0u64;
        loop {
            let (outcome, searched) =
                solve_act_governed_with_stats(t, &budget.with_max_act_rounds(cap), &self.cancel);
            nodes += searched;
            match outcome {
                ActOutcome::Solvable { rounds, .. } => {
                    // A witness is budget-independent: always cacheable.
                    return Arc::new(ExplorationReport {
                        verdict: Verdict::Solvable {
                            certificate: format!(
                                "ACT fallback found a decision map at {rounds} round(s)"
                            ),
                        },
                        nodes,
                        rounds_cap: cap,
                        budget_independent: true,
                    });
                }
                ActOutcome::Interrupted {
                    rounds_completed,
                    interrupt,
                } => {
                    return Arc::new(ExplorationReport {
                        verdict: Verdict::Unknown {
                            reason: format!(
                                "{reason}; ACT fallback {interrupt} after ruling out \
                                 {rounds_completed} of {cap} round(s)"
                            ),
                        },
                        nodes,
                        rounds_cap: cap,
                        budget_independent: false,
                    });
                }
                ActOutcome::Exhausted { .. } => {
                    let next = cap.saturating_mul(2).min(budget.max_act_rounds);
                    if budget.deadline.is_none() || budget.deadline_exceeded() || next == cap {
                        // The verdict depends on the budget unless the
                        // ladder stopped exactly at the configured bound.
                        return Arc::new(ExplorationReport {
                            verdict: Verdict::Unknown {
                                reason: format!("{reason}; ACT fallback exhausted {cap} round(s)"),
                            },
                            nodes,
                            rounds_cap: cap,
                            budget_independent: cap == self.configured_rounds,
                        });
                    }
                    cap = next;
                }
            }
        }
    }

    fn detail(artifact: &Arc<ExplorationReport>) -> String {
        let kind = match &artifact.verdict {
            Verdict::Solvable { .. } => "found a decision map",
            Verdict::Unsolvable { .. } => "refuted",
            Verdict::Unknown { .. } => "exhausted",
        };
        format!(
            "ACT ladder {kind} at round cap {}; {} node(s) expanded",
            artifact.rounds_cap, artifact.nodes
        )
    }

    fn work(artifact: &Arc<ExplorationReport>) -> u64 {
        artifact.nodes
    }

    fn cacheable(artifact: &Arc<ExplorationReport>) -> bool {
        artifact.budget_independent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{identity_task, two_set_agreement};

    #[test]
    fn stage_runs_hit_their_cache_on_repeat() {
        // A local assertion against the process-wide store: the second
        // identical run must be a hit (the first may be hit or miss
        // depending on concurrently running tests).
        let canonical = chromata_task::canonicalize(&two_set_agreement());
        let stage = SplitStage {
            canonical: canonical.clone(),
        };
        let budget = Budget::unlimited();
        let first = stage.run(cache::store(), &budget);
        let second = stage.run(cache::store(), &budget);
        assert_eq!(second.evidence.cache, CacheEvent::Hit);
        assert_eq!(first.evidence.detail, second.evidence.detail);
        assert_eq!(first.evidence.work, second.evidence.work);
        assert_eq!(second.evidence.stage, "split");
    }

    #[test]
    fn evidence_digest_ignores_wall_and_cache_events() {
        let mut a = EvidenceChain::new();
        a.decided_by = "homology";
        a.stages.push(StageEvidence {
            stage: "split",
            detail: "0 split step(s); O' = 3 facet(s)".into(),
            work: 0,
            cache: CacheEvent::Miss,
            wall: Duration::from_millis(7),
            origin: StageOrigin::Local,
        });
        let mut b = a.clone();
        b.stages[0].cache = CacheEvent::Hit;
        b.stages[0].wall = Duration::ZERO;
        b.stages[0].origin = StageOrigin::Shard {
            shard: 1,
            attempt: 2,
        };
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        // But the deterministic parts do matter.
        b.stages[0].work = 1;
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
        let mut c = a.clone();
        c.decided_by = "explore";
        assert_ne!(a.deterministic_digest(), c.deterministic_digest());
    }

    #[test]
    fn explore_stage_is_uncacheable_when_budget_dependent() {
        let report = ExplorationReport {
            verdict: Verdict::Unknown { reason: "x".into() },
            nodes: 12,
            rounds_cap: 4,
            budget_independent: false,
        };
        assert!(!ExploreStage::cacheable(&Arc::new(report)));
        let witness = ExplorationReport {
            verdict: Verdict::Solvable {
                certificate: "c".into(),
            },
            nodes: 12,
            rounds_cap: 4,
            budget_independent: true,
        };
        assert!(ExploreStage::cacheable(&Arc::new(witness)));
        let _ = identity_task(2);
    }
}
