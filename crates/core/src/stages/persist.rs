//! Crash-safe persistence for the [`ArtifactStore`]: durable stage-cache
//! snapshots with corruption-tolerant recovery.
//!
//! Each stage cache is snapshot to its own file under a cache directory
//! (`<dir>/<kind>.snap`), written with the classic durable protocol —
//! temp file, fsync, atomic rename, directory fsync — so a crash at any
//! instant leaves each kind's file equal to either the old snapshot or
//! the new one, never a mix. The format is line-oriented and
//! per-record-checksummed:
//!
//! ```text
//! chromata-snap v2 <kind>\n          (magic + version + kind)
//! H <fnv1a-16hex> [cap,h,m,e]\n      (capacity + cumulative counters)
//! E <fnv1a-16hex> [key,value]\n      (one cache entry, insertion order)
//! ```
//!
//! Version history: v1 keyed link-graph, presentation, and homology
//! entries on whole tasks; v2 keys them per split branch (`links` and
//! `presentations` on single-facet restriction tasks, `homology` on the
//! branch vector). A v1 snapshot therefore fails the magic check and is
//! rejected wholesale — the engine degrades to a cold recompute, which
//! is always sound, rather than attempting a cross-version key
//! migration that could alias artifacts. `reuse_hits` is process-local
//! telemetry and is deliberately absent from the `H` record.
//!
//! Loading is paranoid and graceful — persistence must never poison a
//! verdict. The recovery taxonomy (counted per cause in
//! [`DecisionCacheStats`](super::cache::DecisionCacheStats)):
//!
//! * **rejected snapshot** — missing newline before the header, bad
//!   magic, unsupported version, unreadable header, or an I/O error:
//!   the whole file is discarded and the cache stays as it was;
//! * **torn entry** — a trailing record with no final newline (crash
//!   mid-append): the fragment is skipped, every complete record
//!   before it is kept;
//! * **corrupt entry** — a complete-looking record whose checksum,
//!   payload, or admissibility check fails (e.g. a forged
//!   budget-dependent exploration): the record is skipped.
//!
//! Budget-truncated explorations are excluded at save time (and
//! re-checked at load time): a verdict that depends on the configured
//! budget must never be memoized across processes.
//!
//! All filesystem traffic goes through the [`PersistIo`] seam so the
//! test suite can inject every `io::ErrorKind` at every operation and
//! kill the process model at every point of the write protocol (rule
//! D3 confines `std::fs` to this module).

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

use chromata_task::Task;
use chromata_topology::govern;
use serde::{Deserialize, Serialize};

use super::artifacts::ExplorationReport;
use super::cache::{store, ArtifactKind, ArtifactStore, SharedCache, ALL_KINDS};

/// Magic prefix of every snapshot file (version-bearing): the first
/// line is this prefix followed by the artifact-kind name. Bumped to v2
/// with the per-branch re-keying of link-graph/presentation/homology
/// artifacts; v1 snapshots are rejected (degrading to recompute), never
/// reinterpreted under the new keys.
const MAGIC_PREFIX: &str = "chromata-snap v2 ";

/// Environment variable read (via [`govern::env_string`], rule D2) by
/// [`CacheDirConfig::from_env`].
pub const CACHE_DIR_ENV: &str = "CHROMATA_CACHE_DIR";

/// FNV-1a over a byte string — the per-record checksum. Same constants
/// as the workspace's structural fingerprinting, applied to raw bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// The I/O seam
// ---------------------------------------------------------------------------

/// The filesystem operations the persist layer performs, factored out so
/// tests can fail or kill any one of them (mirrors `runtime/fault.rs`).
pub(crate) trait PersistIo {
    /// Creates the cache directory (and parents).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Writes the full snapshot body to the temp path.
    fn write_tmp(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes the temp file's contents to stable storage.
    fn sync_tmp(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames the temp file over the final snapshot.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes the directory entry of the rename to stable storage
    /// (best effort — not all platforms support directory fsync).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Reads a whole file; `Ok(None)` when it does not exist.
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>>;
    /// Removes a file; missing files are not an error.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
pub(crate) struct RealIo;

impl PersistIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write_tmp(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_tmp(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory handles cannot be fsynced everywhere; swallow the
        // platform's refusal but surface real failures.
        match std::fs::File::open(dir).and_then(|d| d.sync_all()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Injectable I/O + persist health
// ---------------------------------------------------------------------------

/// Process-global [`PersistIo`] override consulted by the snapshot
/// entry points ([`persist_now`], [`warm_start`], [`load_cache_dir`]).
/// The chaos layer (`super::chaos`) installs a fault-injecting
/// implementation here; `None` means the real filesystem.
fn io_override() -> &'static RwLock<Option<Arc<dyn PersistIo + Send + Sync>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn PersistIo + Send + Sync>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs a process-wide [`PersistIo`] override for the snapshot
/// entry points (chaos injection); replaced by any later call.
pub(crate) fn set_persist_io(io: Arc<dyn PersistIo + Send + Sync>) {
    *io_override()
        .write()
        .unwrap_or_else(PoisonError::into_inner) = Some(io);
}

/// Removes the [`PersistIo`] override; snapshots hit the real
/// filesystem again.
pub(crate) fn clear_persist_io() {
    *io_override()
        .write()
        .unwrap_or_else(PoisonError::into_inner) = None;
}

/// The I/O implementation the entry points should use right now.
fn current_io() -> Arc<dyn PersistIo + Send + Sync> {
    io_override()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .unwrap_or_else(|| Arc::new(RealIo))
}

/// Failed [`persist_now`] snapshots since process start (ENOSPC,
/// permission loss, injected faults, …). A failure never wedges
/// serving: the old snapshot stays intact on disk and the store keeps
/// answering from memory (see [`store_read_through`]).
static PERSIST_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Whether the store is currently *read-through*: the most recent
/// snapshot attempt failed, so the in-memory caches are ahead of disk.
/// Cleared by the next successful [`persist_now`].
static READ_THROUGH: AtomicBool = AtomicBool::new(false);

/// How many [`persist_now`] snapshots have failed in this process.
#[must_use]
pub fn persist_failures() -> u64 {
    PERSIST_FAILURES.load(Ordering::Relaxed)
}

/// Whether the last snapshot attempt failed and the store is serving
/// read-through (in-memory state ahead of the on-disk snapshot).
#[must_use]
pub fn store_read_through() -> bool {
    READ_THROUGH.load(Ordering::Acquire)
}

// ---------------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------------

/// A persistence failure: which protocol step failed, on which path,
/// and the underlying message. Saving aborts on the first error (the
/// per-file atomic protocol keeps everything already on disk
/// consistent); loading never raises this — corruption degrades to
/// recovery counters instead.
#[derive(Clone, Debug)]
pub struct PersistError {
    /// Protocol step that failed (`create-dir`, `encode`, `write-tmp`,
    /// `sync-tmp`, `rename`, `sync-dir`, `remove`).
    pub step: &'static str,
    /// The path the step was operating on.
    pub path: PathBuf,
    /// The underlying error message.
    pub message: String,
}

impl PersistError {
    fn new(step: &'static str, path: &Path, message: impl fmt::Display) -> Self {
        PersistError {
            step,
            path: path.to_path_buf(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache persistence failed at {} ({}): {}",
            self.step,
            self.path.display(),
            self.message
        )
    }
}

impl std::error::Error for PersistError {}

/// What a successful [`persist_now`] wrote.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SaveReport {
    /// Snapshot files written (one per artifact kind).
    pub files_written: usize,
    /// Cache entries persisted across all kinds.
    pub entries_written: u64,
    /// Entries excluded as budget-dependent (never memoized on disk).
    pub entries_skipped: u64,
}

/// What a [`warm_start`] / [`load_cache_dir`] recovered, summed across
/// every artifact kind. The same per-cause counters also land in each
/// cache's [`DecisionCacheStats`](super::cache::DecisionCacheStats).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoadReport {
    /// Entries restored intact into the stage caches.
    pub restored: u64,
    /// Whole snapshot files discarded (bad magic/version/header/read).
    pub rejected_snapshots: u64,
    /// Truncated trailing records skipped (torn writes).
    pub torn_entries: u64,
    /// Complete-looking records skipped (checksum/payload/admissibility).
    pub corrupt_entries: u64,
    /// Kinds with no snapshot file at all (a fresh directory).
    pub missing: usize,
}

impl LoadReport {
    /// Sum of the per-cause recovery counters.
    #[must_use]
    pub fn recovery_events(&self) -> u64 {
        self.rejected_snapshots + self.torn_entries + self.corrupt_entries
    }
}

// ---------------------------------------------------------------------------
// Snapshot rendering
// ---------------------------------------------------------------------------

fn snapshot_path(dir: &Path, kind: ArtifactKind) -> PathBuf {
    dir.join(format!("{}.snap", kind.name()))
}

fn tmp_path(dir: &Path, kind: ArtifactKind) -> PathBuf {
    dir.join(format!("{}.snap.tmp", kind.name()))
}

/// Appends `<tag> <16-hex fnv1a(payload)> <payload>\n`.
fn push_record(out: &mut String, tag: char, payload: &str) {
    out.push(tag);
    out.push(' ');
    out.push_str(&format!("{:016x}", fnv1a(payload.as_bytes())));
    out.push(' ');
    out.push_str(payload);
    out.push('\n');
}

/// Renders a full snapshot body for one cache: magic, header, entries
/// in insertion (eviction) order, filtered by `keep`.
fn render_snapshot<K: Serialize, V: Serialize>(
    kind: ArtifactKind,
    capacity: usize,
    stats: super::cache::DecisionCacheStats,
    entries: &[(K, V)],
    keep: impl Fn(&K, &V) -> bool,
    skipped: &mut u64,
    written: &mut u64,
) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(MAGIC_PREFIX);
    out.push_str(kind.name());
    out.push('\n');
    let header = serde_json::to_string(&vec![
        capacity as u64,
        stats.hits,
        stats.misses,
        stats.evictions,
    ])
    .map_err(|e| format!("header: {e}"))?;
    push_record(&mut out, 'H', &header);
    for (k, v) in entries {
        if !keep(k, v) {
            *skipped += 1;
            continue;
        }
        let payload = serde_json::to_string(&(k, v)).map_err(|e| format!("entry: {e}"))?;
        push_record(&mut out, 'E', &payload);
        *written += 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Snapshot parsing
// ---------------------------------------------------------------------------

/// A decoded snapshot: everything recoverable plus what was skipped.
struct ParsedSnapshot<K, V> {
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: Vec<(K, V)>,
    torn_entries: u64,
    corrupt_entries: u64,
    issues: Vec<String>,
}

/// Splits a byte string into complete (newline-terminated) lines plus
/// the torn trailing fragment, if any bytes follow the last newline.
fn split_lines(bytes: &[u8]) -> (Vec<&[u8]>, Option<&[u8]>) {
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let tail = match lines.pop() {
        Some(last) if !last.is_empty() => Some(last),
        _ => None,
    };
    (lines, tail)
}

/// Parses `<tag> <16-hex> <payload>`, returning the stated checksum and
/// the raw payload bytes.
fn parse_tagged_line(line: &[u8], tag: u8) -> Result<(u64, &[u8]), String> {
    let rest = line
        .strip_prefix([tag, b' '].as_slice())
        .ok_or_else(|| format!("expected a '{}' record", char::from(tag)))?;
    let hex = rest.get(..16).ok_or("record shorter than its checksum")?;
    if rest.get(16) != Some(&b' ') {
        return Err("malformed checksum separator".to_owned());
    }
    let payload = rest.get(17..).ok_or("record missing its payload")?;
    let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII checksum".to_owned())?;
    let checksum =
        u64::from_str_radix(hex, 16).map_err(|_| "non-hexadecimal checksum".to_owned())?;
    Ok((checksum, payload))
}

/// Verifies and decodes one tagged record's payload as JSON.
fn decode_record<'a, T: Deserialize<'a>>(line: &'a [u8], tag: u8) -> Result<T, String> {
    let (stated, payload) = parse_tagged_line(line, tag)?;
    let actual = fnv1a(payload);
    if stated != actual {
        return Err(format!(
            "checksum mismatch (stated {stated:016x}, actual {actual:016x})"
        ));
    }
    let text = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload".to_owned())?;
    serde_json::from_str(text).map_err(|e| format!("undecodable payload: {e}"))
}

/// Parses a whole snapshot body. `Err` rejects the snapshot outright
/// (nothing before a valid header is trustworthy); after a valid
/// header, every failure degrades to a per-entry recovery counter.
fn parse_snapshot<K, V>(
    kind: ArtifactKind,
    bytes: &[u8],
    admissible: &dyn Fn(&K, &V) -> bool,
) -> Result<ParsedSnapshot<K, V>, String>
where
    K: for<'de> Deserialize<'de>,
    V: for<'de> Deserialize<'de>,
{
    let (lines, tail) = split_lines(bytes);
    let mut complete = lines.iter();
    let magic = format!("{MAGIC_PREFIX}{}", kind.name());
    match complete.next() {
        None if tail.is_some() => return Err("truncated before the magic line".to_owned()),
        None => return Err("empty snapshot".to_owned()),
        Some(first) if *first != magic.as_bytes() => {
            return Err(format!(
                "bad magic (expected '{magic}', found '{}')",
                String::from_utf8_lossy(first)
            ))
        }
        Some(_) => {}
    }
    let Some(header_line) = complete.next() else {
        return Err("truncated before the header".to_owned());
    };
    let header: Vec<u64> = decode_record(header_line, b'H').map_err(|e| format!("header: {e}"))?;
    let &[capacity, hits, misses, evictions] = header.as_slice() else {
        return Err("header must hold exactly [capacity, hits, misses, evictions]".to_owned());
    };
    let capacity =
        usize::try_from(capacity).map_err(|_| "capacity exceeds this platform".to_owned())?;

    let mut parsed = ParsedSnapshot {
        capacity,
        hits,
        misses,
        evictions,
        entries: Vec::new(),
        torn_entries: 0,
        corrupt_entries: 0,
        issues: Vec::new(),
    };
    for (index, line) in complete.enumerate() {
        match decode_record::<(K, V)>(line, b'E') {
            Ok((k, v)) if admissible(&k, &v) => parsed.entries.push((k, v)),
            Ok(_) => {
                parsed.corrupt_entries += 1;
                parsed.issues.push(format!(
                    "entry {index}: inadmissible artifact (budget-dependent)"
                ));
            }
            Err(why) => {
                parsed.corrupt_entries += 1;
                parsed.issues.push(format!("entry {index}: {why}"));
            }
        }
    }
    if tail.is_some() {
        parsed.torn_entries += 1;
        parsed
            .issues
            .push("torn trailing record (no final newline)".to_owned());
    }
    Ok(parsed)
}

// ---------------------------------------------------------------------------
// Save / load over an ArtifactStore
// ---------------------------------------------------------------------------

/// Snapshots one cache to disk with the durable write protocol.
fn save_one<K, V>(
    cache: &SharedCache<K, V>,
    kind: ArtifactKind,
    dir: &Path,
    io: &dyn PersistIo,
    keep: impl Fn(&K, &V) -> bool,
    report: &mut SaveReport,
) -> Result<(), PersistError>
where
    K: Clone + Eq + Hash + Serialize,
    V: Clone + Serialize,
{
    let (capacity, stats, entries) = {
        let guard = cache.lock();
        (guard.capacity(), guard.stats(), guard.entries_in_order())
    };
    let target = snapshot_path(dir, kind);
    let body = render_snapshot(
        kind,
        capacity,
        stats,
        &entries,
        keep,
        &mut report.entries_skipped,
        &mut report.entries_written,
    )
    .map_err(|e| PersistError::new("encode", &target, e))?;
    let tmp = tmp_path(dir, kind);
    io.write_tmp(&tmp, body.as_bytes())
        .map_err(|e| PersistError::new("write-tmp", &tmp, e))?;
    io.sync_tmp(&tmp)
        .map_err(|e| PersistError::new("sync-tmp", &tmp, e))?;
    io.rename(&tmp, &target)
        .map_err(|e| PersistError::new("rename", &target, e))?;
    io.sync_dir(dir)
        .map_err(|e| PersistError::new("sync-dir", dir, e))?;
    report.files_written += 1;
    Ok(())
}

/// Restores one cache from its snapshot file; every failure mode
/// degrades to recovery counters on that cache's stats.
fn load_one<K, V>(
    cache: &SharedCache<K, V>,
    kind: ArtifactKind,
    dir: &Path,
    io: &dyn PersistIo,
    admissible: &dyn Fn(&K, &V) -> bool,
    report: &mut LoadReport,
) where
    K: Clone + Eq + Hash + for<'de> Deserialize<'de>,
    V: Clone + for<'de> Deserialize<'de>,
{
    let path = snapshot_path(dir, kind);
    let bytes = match io.read(&path) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => {
            report.missing += 1;
            return;
        }
        Err(_) => {
            report.rejected_snapshots += 1;
            cache.lock().stats_mut().rejected_snapshots += 1;
            return;
        }
    };
    match parse_snapshot(kind, &bytes, admissible) {
        Err(_) => {
            report.rejected_snapshots += 1;
            cache.lock().stats_mut().rejected_snapshots += 1;
        }
        Ok(parsed) => {
            let mut guard = cache.lock();
            guard.set_capacity(parsed.capacity);
            {
                let stats = guard.stats_mut();
                // The snapshot header predates the `lookups` counter, so
                // the merged lookups are reconstructed from the invariant
                // `lookups == hits + misses` to keep coherence observable
                // across warm starts.
                stats.lookups += parsed.hits + parsed.misses;
                stats.hits += parsed.hits;
                stats.misses += parsed.misses;
                stats.evictions += parsed.evictions;
                stats.torn_entries += parsed.torn_entries;
                stats.corrupt_entries += parsed.corrupt_entries;
            }
            report.restored += parsed.entries.len() as u64;
            report.torn_entries += parsed.torn_entries;
            report.corrupt_entries += parsed.corrupt_entries;
            for (k, v) in parsed.entries {
                guard.restore_entry(k, v);
            }
        }
    }
}

/// Keep-filter for the exploration cache: only budget-independent
/// reports may cross a process boundary.
fn exploration_admissible(_k: &(Task, usize), v: &std::sync::Arc<ExplorationReport>) -> bool {
    v.budget_independent
}

/// Snapshots every stage cache of `store` into `dir`. Aborts on the
/// first I/O failure — files already renamed stay valid, files not yet
/// rewritten keep their previous valid contents.
pub(crate) fn save_store(
    store: &ArtifactStore,
    dir: &Path,
    io: &dyn PersistIo,
) -> Result<SaveReport, PersistError> {
    io.create_dir_all(dir)
        .map_err(|e| PersistError::new("create-dir", dir, e))?;
    let mut report = SaveReport::default();
    save_one(
        &store.split,
        ArtifactKind::Split,
        dir,
        io,
        |_, _| true,
        &mut report,
    )?;
    save_one(
        &store.links,
        ArtifactKind::LinkGraphs,
        dir,
        io,
        |_, _| true,
        &mut report,
    )?;
    save_one(
        &store.presentations,
        ArtifactKind::Presentations,
        dir,
        io,
        |_, _| true,
        &mut report,
    )?;
    save_one(
        &store.homology,
        ArtifactKind::Homology,
        dir,
        io,
        |_, _| true,
        &mut report,
    )?;
    save_one(
        &store.exploration,
        ArtifactKind::Exploration,
        dir,
        io,
        exploration_admissible,
        &mut report,
    )?;
    save_one(
        &store.verdict,
        ArtifactKind::Verdict,
        dir,
        io,
        |_, _| true,
        &mut report,
    )?;
    Ok(report)
}

/// Restores every stage cache of `store` from the snapshots in `dir`.
/// Never fails: every corruption mode degrades to recovery counters.
pub(crate) fn load_store(store: &ArtifactStore, dir: &Path, io: &dyn PersistIo) -> LoadReport {
    let mut report = LoadReport::default();
    load_one(
        &store.split,
        ArtifactKind::Split,
        dir,
        io,
        &|_, _| true,
        &mut report,
    );
    load_one(
        &store.links,
        ArtifactKind::LinkGraphs,
        dir,
        io,
        &|_, _| true,
        &mut report,
    );
    load_one(
        &store.presentations,
        ArtifactKind::Presentations,
        dir,
        io,
        &|_, _| true,
        &mut report,
    );
    load_one(
        &store.homology,
        ArtifactKind::Homology,
        dir,
        io,
        &|_, _| true,
        &mut report,
    );
    load_one(
        &store.exploration,
        ArtifactKind::Exploration,
        dir,
        io,
        &exploration_admissible,
        &mut report,
    );
    load_one(
        &store.verdict,
        ArtifactKind::Verdict,
        dir,
        io,
        &|_, _| true,
        &mut report,
    );
    report
}

// ---------------------------------------------------------------------------
// Public configuration + entry points
// ---------------------------------------------------------------------------

/// Where (and whether) to persist the stage caches. Disabled by
/// default; enabled by an explicit directory (`--cache-dir`) or the
/// `CHROMATA_CACHE_DIR` environment variable.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheDirConfig {
    dir: Option<PathBuf>,
}

impl CacheDirConfig {
    /// Persistence off (the default).
    #[must_use]
    pub fn disabled() -> Self {
        CacheDirConfig { dir: None }
    }

    /// Persistence on, rooted at `dir`.
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        CacheDirConfig {
            dir: Some(dir.into()),
        }
    }

    /// Reads `CHROMATA_CACHE_DIR` (via `govern`, rule D2); unset or
    /// blank means disabled.
    #[must_use]
    pub fn from_env() -> Self {
        CacheDirConfig {
            dir: govern::env_string(CACHE_DIR_ENV).map(PathBuf::from),
        }
    }

    /// CLI-style resolution: an explicit directory wins over the
    /// environment variable; neither means disabled.
    #[must_use]
    pub fn resolve(explicit: Option<PathBuf>) -> Self {
        match explicit {
            Some(dir) => CacheDirConfig::at(dir),
            None => CacheDirConfig::from_env(),
        }
    }

    /// The configured cache directory, if persistence is enabled.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether persistence is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// Directories already warm-started by this process, so repeated
/// [`warm_start`] calls (one per `analyze`) load each directory once.
fn warmed_dirs() -> &'static Mutex<BTreeSet<PathBuf>> {
    static WARMED: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    WARMED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Marks `dir` warmed; returns whether it was fresh.
fn mark_warmed(dir: &Path) -> bool {
    let mut guard = match warmed_dirs().lock() {
        Ok(guard) => guard,
        // The set is just inserted into; a panicking holder cannot have
        // left it torn. Recover the data and continue.
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.insert(dir.to_path_buf())
}

/// Loads the configured cache directory into the process-wide store —
/// once per directory per process. Returns the load report on the
/// first call for a directory, `None` when persistence is disabled or
/// the directory was already warmed.
pub fn warm_start(config: &CacheDirConfig) -> Option<LoadReport> {
    let dir = config.dir()?;
    if !mark_warmed(dir) {
        return None;
    }
    Some(load_store(store(), dir, current_io().as_ref()))
}

/// Unconditionally loads the configured cache directory into the
/// process-wide store (and marks it warmed). `None` when disabled.
pub fn load_cache_dir(config: &CacheDirConfig) -> Option<LoadReport> {
    let dir = config.dir()?;
    mark_warmed(dir);
    Some(load_store(store(), dir, current_io().as_ref()))
}

/// Snapshots the process-wide store into the configured cache
/// directory. `None` when persistence is disabled.
///
/// A failed save is counted in [`persist_failures`] and flips the store
/// into read-through mode ([`store_read_through`]); the per-file atomic
/// protocol guarantees the previous snapshot is still intact on disk,
/// so serving continues unharmed and the next cadence retries.
pub fn persist_now(config: &CacheDirConfig) -> Option<Result<SaveReport, PersistError>> {
    let dir = config.dir()?;
    let result = save_store(store(), dir, current_io().as_ref());
    match &result {
        Ok(_) => READ_THROUGH.store(false, Ordering::Release),
        Err(_) => {
            PERSIST_FAILURES.fetch_add(1, Ordering::Relaxed);
            READ_THROUGH.store(true, Ordering::Release);
        }
    }
    Some(result)
}

// ---------------------------------------------------------------------------
// Offline audit + maintenance
// ---------------------------------------------------------------------------

/// Integrity status of one kind's snapshot file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotStatus {
    /// No snapshot file exists for this kind.
    Missing,
    /// The snapshot decoded (possibly with skipped entries — check the
    /// recovery counters).
    Valid,
    /// The whole snapshot was rejected (bad magic/version/header/read).
    Rejected,
}

impl SnapshotStatus {
    /// Stable lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SnapshotStatus::Missing => "missing",
            SnapshotStatus::Valid => "valid",
            SnapshotStatus::Rejected => "rejected",
        }
    }
}

impl fmt::Display for SnapshotStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The offline integrity report for one kind's snapshot, produced by
/// [`audit_cache_dir`] without touching the process-wide store.
#[derive(Clone, Debug)]
pub struct SnapshotAudit {
    /// The artifact kind this snapshot caches.
    pub kind: ArtifactKind,
    /// Whole-file status.
    pub status: SnapshotStatus,
    /// Fully decoded, admissible entries.
    pub entries: u64,
    /// The capacity recorded in the header.
    pub capacity: usize,
    /// Cumulative hits recorded in the header.
    pub hits: u64,
    /// Cumulative misses recorded in the header.
    pub misses: u64,
    /// Cumulative evictions recorded in the header.
    pub evictions: u64,
    /// Torn trailing records detected.
    pub torn_entries: u64,
    /// Corrupt (checksum/payload/admissibility) records detected.
    pub corrupt_entries: u64,
    /// Human-readable descriptions of every problem found.
    pub issues: Vec<String>,
}

impl SnapshotAudit {
    /// Whether this snapshot is fully intact (missing counts as clean —
    /// a fresh directory is not corrupt).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.status != SnapshotStatus::Rejected
            && self.torn_entries == 0
            && self.corrupt_entries == 0
    }
}

fn empty_audit(kind: ArtifactKind, status: SnapshotStatus) -> SnapshotAudit {
    SnapshotAudit {
        kind,
        status,
        entries: 0,
        capacity: 0,
        hits: 0,
        misses: 0,
        evictions: 0,
        torn_entries: 0,
        corrupt_entries: 0,
        issues: Vec::new(),
    }
}

/// Typed offline audit of one kind's snapshot.
fn audit_one<K, V>(
    kind: ArtifactKind,
    dir: &Path,
    io: &dyn PersistIo,
    admissible: &dyn Fn(&K, &V) -> bool,
) -> SnapshotAudit
where
    K: for<'de> Deserialize<'de>,
    V: for<'de> Deserialize<'de>,
{
    let path = snapshot_path(dir, kind);
    let bytes = match io.read(&path) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return empty_audit(kind, SnapshotStatus::Missing),
        Err(e) => {
            let mut audit = empty_audit(kind, SnapshotStatus::Rejected);
            audit.issues.push(format!("unreadable: {e}"));
            return audit;
        }
    };
    match parse_snapshot(kind, &bytes, admissible) {
        Err(why) => {
            let mut audit = empty_audit(kind, SnapshotStatus::Rejected);
            audit.issues.push(why);
            audit
        }
        Ok(parsed) => SnapshotAudit {
            kind,
            status: SnapshotStatus::Valid,
            entries: parsed.entries.len() as u64,
            capacity: parsed.capacity,
            hits: parsed.hits,
            misses: parsed.misses,
            evictions: parsed.evictions,
            torn_entries: parsed.torn_entries,
            corrupt_entries: parsed.corrupt_entries,
            issues: parsed.issues,
        },
    }
}

fn audit_kind(kind: ArtifactKind, dir: &Path, io: &dyn PersistIo) -> SnapshotAudit {
    use std::sync::Arc;

    use super::artifacts::{HomologyReport, LinkGraphs, Presentations, SubdividedComplex};
    use super::DecisionRecord;

    match kind {
        ArtifactKind::Split => {
            audit_one::<Task, Arc<SubdividedComplex>>(kind, dir, io, &|_, _| true)
        }
        ArtifactKind::LinkGraphs => audit_one::<Task, Arc<LinkGraphs>>(kind, dir, io, &|_, _| true),
        ArtifactKind::Presentations => {
            audit_one::<Task, Arc<Presentations>>(kind, dir, io, &|_, _| true)
        }
        ArtifactKind::Homology => {
            audit_one::<Vec<Task>, Arc<HomologyReport>>(kind, dir, io, &|_, _| true)
        }
        ArtifactKind::Exploration => audit_one::<(Task, usize), Arc<ExplorationReport>>(
            kind,
            dir,
            io,
            &exploration_admissible,
        ),
        ArtifactKind::Verdict => {
            audit_one::<(Task, usize), DecisionRecord>(kind, dir, io, &|_, _| true)
        }
    }
}

/// Audits every snapshot in `dir` offline — full typed decode, checksum
/// verification, admissibility checks — without loading anything into
/// the process-wide store. One report per artifact kind, in the fixed
/// reporting order.
#[must_use]
pub fn audit_cache_dir(dir: &Path) -> Vec<SnapshotAudit> {
    ALL_KINDS
        .iter()
        .map(|&kind| audit_kind(kind, dir, &RealIo))
        .collect()
}

/// Removes every snapshot (and stray temp file) in `dir`, returning how
/// many files were deleted. The directory itself is kept.
pub fn clear_cache_dir(dir: &Path) -> Result<usize, PersistError> {
    let io = RealIo;
    let mut removed = 0;
    for &kind in &ALL_KINDS {
        for path in [snapshot_path(dir, kind), tmp_path(dir, kind)] {
            match io.read(&path) {
                Ok(Some(_)) => {
                    io.remove(&path)
                        .map_err(|e| PersistError::new("remove", &path, e))?;
                    removed += 1;
                }
                Ok(None) => {}
                Err(e) => return Err(PersistError::new("remove", &path, e)),
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use proptest::prelude::*;

    use chromata_task::library::{constant_task, identity_task, two_set_agreement};

    use super::super::artifacts::{HomologyReport, LinkGraphs, Presentations, SubdividedComplex};
    use super::super::{DecisionRecord, StageTrace};
    use super::*;
    use crate::continuous::continuous_map_exists_with;
    use crate::pipeline::Verdict;
    use crate::splitting::split_all;

    // -- fixtures ----------------------------------------------------------

    /// A unique, pre-cleaned scratch directory per call.
    fn test_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("chromata-persist-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    type Built = (
        Arc<SubdividedComplex>,
        Arc<LinkGraphs>,
        Arc<Presentations>,
        Arc<HomologyReport>,
    );

    /// Real pipeline artifacts for `task`, built the way the stages do.
    fn artifacts_for(task: &chromata_task::Task) -> Built {
        let split = Arc::new(SubdividedComplex {
            split: split_all(task),
        });
        let links = Arc::new(LinkGraphs::build(&split.split.task));
        let pres = Arc::new(Presentations::build(&split.split.task, &links));
        let (outcome, assignments) = continuous_map_exists_with(&links, &pres);
        let hom = Arc::new(HomologyReport {
            outcome,
            assignments,
        });
        (split, links, pres, hom)
    }

    fn exploration(budget_independent: bool) -> Arc<ExplorationReport> {
        Arc::new(ExplorationReport {
            verdict: Verdict::Unknown {
                reason: "exploration exhausted".to_owned(),
            },
            nodes: 17,
            rounds_cap: 3,
            budget_independent,
        })
    }

    fn record() -> DecisionRecord {
        DecisionRecord {
            verdict: Verdict::Solvable {
                certificate: "test certificate".to_owned(),
            },
            decided_by: "explore",
            stages: vec![StageTrace {
                stage: "split",
                detail: "2 split step(s)".to_owned(),
                work: 2,
            }],
        }
    }

    /// A private store seeded with real artifacts for `tasks`.
    fn seeded_store_with(capacity: usize, tasks: &[chromata_task::Task]) -> ArtifactStore {
        let store = ArtifactStore::with_capacity(capacity);
        for task in tasks {
            let (s, l, p, h) = artifacts_for(task);
            store.split.lock().insert(task.clone(), s);
            store.links.lock().insert(task.clone(), l);
            store.presentations.lock().insert(task.clone(), p);
            store.homology.lock().insert(vec![task.clone()], h);
            store
                .exploration
                .lock()
                .insert((task.clone(), 5), exploration(true));
            store.verdict.lock().insert((task.clone(), 5), record());
        }
        store
    }

    fn seeded_store(capacity: usize) -> ArtifactStore {
        seeded_store_with(capacity, &[two_set_agreement(), constant_task(2)])
    }

    fn snapshot_bytes(dir: &Path) -> Vec<(ArtifactKind, Vec<u8>)> {
        ALL_KINDS
            .iter()
            .map(|&kind| {
                (
                    kind,
                    std::fs::read(snapshot_path(dir, kind)).expect("snapshot exists"),
                )
            })
            .collect()
    }

    // -- round trips -------------------------------------------------------

    #[test]
    fn roundtrip_is_byte_identical_and_restores_capacity() {
        let store = seeded_store(8);
        let dir = test_dir("roundtrip");
        let report = save_store(&store, &dir, &RealIo).expect("save");
        assert_eq!(report.files_written, 6);
        assert_eq!(report.entries_written, 12);
        assert_eq!(report.entries_skipped, 0);

        // Load into a store with a *different* capacity: the snapshot's
        // capacity must win, and a re-save must be byte-identical.
        let fresh = ArtifactStore::with_capacity(99);
        let load = load_store(&fresh, &dir, &RealIo);
        assert_eq!(load.restored, 12);
        assert_eq!(load.recovery_events(), 0);
        assert_eq!(load.missing, 0);
        assert_eq!(fresh.verdict.lock().capacity(), 8);
        assert_eq!(fresh.split.lock().capacity(), 8);

        let dir2 = test_dir("roundtrip-resave");
        save_store(&fresh, &dir2, &RealIo).expect("re-save");
        assert_eq!(snapshot_bytes(&dir), snapshot_bytes(&dir2));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn stats_merge_additively_and_restored_is_counted() {
        let store = seeded_store(8);
        // Bump some counters: 2 hits, 1 miss on the verdict cache.
        let probe = two_set_agreement();
        store.verdict.lock().get(&(probe.clone(), 5));
        store.verdict.lock().get(&(probe.clone(), 5));
        store.verdict.lock().get(&(probe, 999));
        let dir = test_dir("stats");
        save_store(&store, &dir, &RealIo).expect("save");

        let fresh = ArtifactStore::with_capacity(4);
        // Pre-existing counters must survive the merge.
        fresh.verdict.lock().stats_mut().hits = 10;
        load_store(&fresh, &dir, &RealIo);
        let stats = fresh.verdict.lock().stats();
        assert_eq!(stats.hits, 12);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.restored, 2);
        assert_eq!(stats.recovery_events(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_order_drives_future_evictions() {
        let tasks = [
            two_set_agreement(),
            constant_task(2),
            identity_task(2),
            constant_task(3),
        ];
        let store = ArtifactStore::with_capacity(4);
        for t in &tasks {
            store.verdict.lock().insert((t.clone(), 1), record());
        }
        let dir = test_dir("order");
        save_store(&store, &dir, &RealIo).expect("save");

        let fresh = ArtifactStore::with_capacity(4);
        load_store(&fresh, &dir, &RealIo);
        {
            let guard = fresh.verdict.lock();
            let keys: Vec<_> = guard
                .entries_in_order()
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let expected: Vec<_> = tasks.iter().map(|t| (t.clone(), 1usize)).collect();
            assert_eq!(keys, expected, "snapshot order must be insertion order");
        }
        // One more insert evicts the *oldest restored* entry.
        fresh.verdict.lock().insert((identity_task(3), 1), record());
        let guard = fresh.verdict.lock();
        assert_eq!(guard.len(), 4);
        let keys: Vec<_> = guard
            .entries_in_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert!(!keys.contains(&(two_set_agreement(), 1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serialization_is_independent_of_construction_order() {
        // Build the same artifacts in opposite orders: the serialized
        // form must not depend on global interning history.
        let a1 = artifacts_for(&two_set_agreement());
        let b1 = artifacts_for(&constant_task(2));
        let b2 = artifacts_for(&constant_task(2));
        let a2 = artifacts_for(&two_set_agreement());
        for (x, y) in [(&a1, &a2), (&b1, &b2)] {
            assert_eq!(
                serde_json::to_string(&x.0).expect("ser"),
                serde_json::to_string(&y.0).expect("ser")
            );
            assert_eq!(
                serde_json::to_string(&x.1).expect("ser"),
                serde_json::to_string(&y.1).expect("ser")
            );
            assert_eq!(
                serde_json::to_string(&x.2).expect("ser"),
                serde_json::to_string(&y.2).expect("ser")
            );
            assert_eq!(
                serde_json::to_string(&x.3).expect("ser"),
                serde_json::to_string(&y.3).expect("ser")
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Snapshot → reload preserves entries, order and capacity for
        /// any insertion sequence, under any pre-existing capacity.
        #[test]
        fn roundtrip_identity_under_any_order(
            capacity in 1usize..6,
            order in proptest::collection::vec(0usize..4, 1..10),
            reload_capacity in 1usize..9,
        ) {
            let pool = [
                (two_set_agreement(), 3usize),
                (two_set_agreement(), 7usize),
                (constant_task(2), 3usize),
                (identity_task(2), 3usize),
            ];
            let store = ArtifactStore::with_capacity(capacity);
            for &i in &order {
                let key = pool[i].clone();
                store.verdict.lock().insert(key, record());
            }
            let dir = test_dir("prop");
            save_store(&store, &dir, &RealIo).expect("save");
            let fresh = ArtifactStore::with_capacity(reload_capacity);
            let report = load_store(&fresh, &dir, &RealIo);
            prop_assert_eq!(report.recovery_events(), 0);

            let original = store.verdict.lock().entries_in_order();
            let restored = fresh.verdict.lock().entries_in_order();
            prop_assert_eq!(report.restored as usize, original.len());
            prop_assert_eq!(fresh.verdict.lock().capacity(), capacity);
            prop_assert_eq!(original.len(), restored.len());
            for ((k1, v1), (k2, v2)) in original.iter().zip(restored.iter()) {
                prop_assert_eq!(k1, k2);
                prop_assert_eq!(
                    serde_json::to_string(v1).expect("ser"),
                    serde_json::to_string(v2).expect("ser")
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // -- torn writes -------------------------------------------------------

    #[test]
    fn torn_write_matrix_every_truncation_point() {
        let store = ArtifactStore::with_capacity(4);
        store.verdict.lock().insert((constant_task(2), 1), record());
        store.verdict.lock().insert((identity_task(2), 1), record());
        let dir = test_dir("torn-src");
        save_store(&store, &dir, &RealIo).expect("save");
        let full = std::fs::read(snapshot_path(&dir, ArtifactKind::Verdict)).expect("read");
        let _ = std::fs::remove_dir_all(&dir);

        let work = test_dir("torn");
        std::fs::create_dir_all(&work).expect("mkdir");
        let target = snapshot_path(&work, ArtifactKind::Verdict);
        for cut in 0..=full.len() {
            let prefix = &full[..cut];
            std::fs::write(&target, prefix).expect("write truncated");
            let fresh = ArtifactStore::with_capacity(4);
            let report = load_store(&fresh, &work, &RealIo);
            assert_eq!(report.missing, 5, "only verdict.snap exists (cut {cut})");

            let newlines = prefix.iter().filter(|&&b| b == b'\n').count();
            let torn_tail = !prefix.is_empty() && *prefix.last().expect("nonempty") != b'\n';
            if newlines < 2 {
                // Magic or header incomplete: the whole snapshot goes.
                assert_eq!(report.rejected_snapshots, 1, "cut {cut}");
                assert_eq!(report.restored, 0, "cut {cut}");
                assert_eq!(report.torn_entries, 0, "cut {cut}");
            } else {
                let complete_entries = (newlines - 2) as u64;
                assert_eq!(report.rejected_snapshots, 0, "cut {cut}");
                assert_eq!(report.restored, complete_entries, "cut {cut}");
                assert_eq!(report.torn_entries, u64::from(torn_tail), "cut {cut}");
                assert_eq!(report.corrupt_entries, 0, "cut {cut}");
                assert_eq!(fresh.verdict.lock().capacity(), 4, "cut {cut}");
                // Restored entries must be checksum-valid originals.
                for (k, _) in fresh.verdict.lock().entries_in_order() {
                    assert!(k == (constant_task(2), 1) || k == (identity_task(2), 1));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&work);
    }

    // -- injected I/O faults ----------------------------------------------

    #[derive(Clone, Copy, Debug)]
    enum IoFaultMode {
        /// The targeted operation fails with this `ErrorKind`.
        Error(io::ErrorKind),
        /// The process model dies at the targeted operation: it fails,
        /// writes tear halfway, and every later operation fails too.
        Kill,
        /// A write persists a 7-bytes-short prefix, then errors.
        ShortWrite,
    }

    /// Counting fault injector over the real filesystem, in the style
    /// of `runtime/fault.rs`: operation `trigger_op` misbehaves.
    struct FaultIo {
        inner: RealIo,
        op: Cell<u64>,
        killed: Cell<bool>,
        trigger_op: u64,
        mode: IoFaultMode,
    }

    impl FaultIo {
        fn new(trigger_op: u64, mode: IoFaultMode) -> Self {
            FaultIo {
                inner: RealIo,
                op: Cell::new(0),
                killed: Cell::new(false),
                trigger_op,
                mode,
            }
        }

        /// Counts this operation; `Ok(true)` means "fault it now".
        fn gate(&self) -> io::Result<bool> {
            if self.killed.get() {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "process is dead",
                ));
            }
            let n = self.op.get();
            self.op.set(n + 1);
            Ok(n == self.trigger_op)
        }

        fn fault(&self) -> io::Error {
            match self.mode {
                IoFaultMode::Error(kind) => io::Error::new(kind, "injected fault"),
                IoFaultMode::Kill => {
                    self.killed.set(true);
                    io::Error::new(io::ErrorKind::Interrupted, "killed")
                }
                IoFaultMode::ShortWrite => io::Error::new(io::ErrorKind::WriteZero, "short write"),
            }
        }
    }

    impl PersistIo for FaultIo {
        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            if self.gate()? {
                return Err(self.fault());
            }
            self.inner.create_dir_all(dir)
        }

        fn write_tmp(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            if self.gate()? {
                // Torn writes are the interesting failure here: persist
                // a prefix before erroring, like a real crash would.
                let cut = match self.mode {
                    IoFaultMode::Kill => bytes.len() / 2,
                    IoFaultMode::ShortWrite => bytes.len().saturating_sub(7),
                    IoFaultMode::Error(_) => 0,
                };
                if cut > 0 {
                    let _ = self.inner.write_tmp(path, &bytes[..cut]);
                }
                return Err(self.fault());
            }
            self.inner.write_tmp(path, bytes)
        }

        fn sync_tmp(&self, path: &Path) -> io::Result<()> {
            if self.gate()? {
                return Err(self.fault());
            }
            self.inner.sync_tmp(path)
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            if self.gate()? {
                return Err(self.fault());
            }
            self.inner.rename(from, to)
        }

        fn sync_dir(&self, dir: &Path) -> io::Result<()> {
            if self.gate()? {
                return Err(self.fault());
            }
            self.inner.sync_dir(dir)
        }

        fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
            if self.gate()? {
                return Err(self.fault());
            }
            self.inner.read(path)
        }

        fn remove(&self, path: &Path) -> io::Result<()> {
            if self.gate()? {
                return Err(self.fault());
            }
            self.inner.remove(path)
        }
    }

    /// Operations a full save performs: 1 create-dir + 4 per kind.
    const SAVE_OPS: u64 = 1 + 4 * 6;

    #[test]
    fn every_errorkind_at_every_killpoint_leaves_store_consistent() {
        let error_kinds = [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::NotConnected,
            io::ErrorKind::AddrInUse,
            io::ErrorKind::AddrNotAvailable,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::AlreadyExists,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::InvalidInput,
            io::ErrorKind::InvalidData,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WriteZero,
            io::ErrorKind::Interrupted,
            io::ErrorKind::Unsupported,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::OutOfMemory,
            io::ErrorKind::Other,
        ];
        let mut modes: Vec<IoFaultMode> = error_kinds.into_iter().map(IoFaultMode::Error).collect();
        modes.push(IoFaultMode::Kill);
        modes.push(IoFaultMode::ShortWrite);

        // Old state: one task. New state: old plus another task.
        let old_store = seeded_store_with(8, &[two_set_agreement()]);
        let new_store = seeded_store_with(8, &[two_set_agreement(), identity_task(2)]);
        let old_dir = test_dir("fault-old");
        let new_dir = test_dir("fault-new");
        save_store(&old_store, &old_dir, &RealIo).expect("baseline old");
        save_store(&new_store, &new_dir, &RealIo).expect("baseline new");
        let old_bytes = snapshot_bytes(&old_dir);
        let new_bytes = snapshot_bytes(&new_dir);

        let work = test_dir("fault-work");
        for mode in modes {
            for trigger in 0..SAVE_OPS {
                // Reset to the old, fully valid on-disk state.
                let _ = std::fs::remove_dir_all(&work);
                save_store(&old_store, &work, &RealIo).expect("reset");

                let io = FaultIo::new(trigger, mode);
                let result = save_store(&new_store, &work, &io);
                assert!(result.is_err(), "op {trigger} under {mode:?} must fail");

                // Crash-consistency: every kind's file is wholly the old
                // or wholly the new snapshot — never a mix, never torn.
                for (i, &(kind, ref old)) in old_bytes.iter().enumerate() {
                    let on_disk =
                        std::fs::read(snapshot_path(&work, kind)).expect("snapshot survives");
                    let (_, ref new) = new_bytes[i];
                    assert!(
                        &on_disk == old || &on_disk == new,
                        "{kind} is a hybrid after faulting op {trigger} ({mode:?})"
                    );
                }
                // And a paranoid load sees zero corruption.
                let fresh = ArtifactStore::with_capacity(8);
                let report = load_store(&fresh, &work, &RealIo);
                assert_eq!(
                    report.recovery_events(),
                    0,
                    "recovery needed after op {trigger} ({mode:?})"
                );

                // A healthy retry converges to the new state exactly.
                save_store(&new_store, &work, &RealIo).expect("retry");
                assert_eq!(
                    snapshot_bytes(&work),
                    new_bytes,
                    "retry after {trigger} ({mode:?})"
                );
            }
        }
        for d in [&old_dir, &new_dir, &work] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn enospc_mid_snapshot_keeps_the_old_snapshot_at_every_op() {
        // Disk-full at every possible point of the save protocol: the
        // previous snapshot must stay wholly intact (old or complete
        // new per file, never torn), a paranoid load must be clean, and
        // the next cadence with space back must converge exactly.
        let old_store = seeded_store_with(8, &[two_set_agreement()]);
        let new_store = seeded_store_with(8, &[two_set_agreement(), identity_task(2)]);
        let old_dir = test_dir("enospc-old");
        let new_dir = test_dir("enospc-new");
        save_store(&old_store, &old_dir, &RealIo).expect("baseline old");
        save_store(&new_store, &new_dir, &RealIo).expect("baseline new");
        let old_bytes = snapshot_bytes(&old_dir);
        let new_bytes = snapshot_bytes(&new_dir);

        let work = test_dir("enospc-work");
        for trigger in 0..SAVE_OPS {
            let _ = std::fs::remove_dir_all(&work);
            save_store(&old_store, &work, &RealIo).expect("reset");

            let io = FaultIo::new(trigger, IoFaultMode::Error(io::ErrorKind::StorageFull));
            save_store(&new_store, &work, &io).expect_err("disk full must fail the save");

            for (i, &(kind, ref old)) in old_bytes.iter().enumerate() {
                let on_disk = std::fs::read(snapshot_path(&work, kind)).expect("snapshot survives");
                let (_, ref new) = new_bytes[i];
                assert!(
                    &on_disk == old || &on_disk == new,
                    "{kind} torn after ENOSPC at op {trigger}"
                );
            }
            let fresh = ArtifactStore::with_capacity(8);
            let report = load_store(&fresh, &work, &RealIo);
            assert_eq!(report.recovery_events(), 0, "ENOSPC at op {trigger}");

            // Space is back: the next cadence succeeds and converges.
            save_store(&new_store, &work, &RealIo).expect("retry once space is back");
            assert_eq!(snapshot_bytes(&work), new_bytes, "retry after op {trigger}");
        }
        for d in [&old_dir, &new_dir, &work] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn enospc_through_the_chaos_seam_degrades_and_heals_persist_now() {
        use super::super::chaos::{PersistChaos, PersistFault};

        let dir = test_dir("enospc-seam");
        let config = CacheDirConfig::resolve(Some(dir.clone()));

        // Baseline cadence with the seam installed but disarmed.
        let chaos = PersistChaos::install();
        persist_now(&config)
            .expect("persistence is configured")
            .expect("clean save");
        let failures_before = persist_failures();
        assert!(!store_read_through(), "clean save must not be read-through");

        // Disk full mid-snapshot: the cadence fails, is counted, and
        // flips the store to read-through — but never wedges.
        chaos.arm(PersistFault::Enospc);
        persist_now(&config)
            .expect("persistence is configured")
            .expect_err("armed ENOSPC must fail the save");
        assert_eq!(chaos.fired(), 1, "the armed fault fired");
        assert!(persist_failures() > failures_before, "failure is counted");
        assert!(store_read_through(), "failed save flips read-through");

        // The on-disk state is still a clean, loadable snapshot.
        PersistChaos::uninstall();
        for audit in audit_cache_dir(&dir) {
            assert!(audit.is_clean(), "unclean after ENOSPC: {audit:?}");
        }

        // Fault cleared: the next cadence succeeds and clears the flag.
        persist_now(&config)
            .expect("persistence is configured")
            .expect("save heals once the fault clears");
        assert!(!store_read_through(), "healed save clears read-through");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_failure_rejects_that_snapshot_only() {
        let store = seeded_store_with(4, &[constant_task(2)]);
        let dir = test_dir("read-fail");
        save_store(&store, &dir, &RealIo).expect("save");

        // Op 0 is the first read (the split snapshot).
        let io = FaultIo::new(0, IoFaultMode::Error(io::ErrorKind::PermissionDenied));
        let fresh = ArtifactStore::with_capacity(4);
        let report = load_store(&fresh, &dir, &io);
        assert_eq!(report.rejected_snapshots, 1);
        assert_eq!(fresh.split.lock().stats().rejected_snapshots, 1);
        assert!(fresh.split.lock().is_empty());
        // The other five kinds load normally.
        assert_eq!(report.restored, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- corruption classification ----------------------------------------

    #[test]
    fn flipped_payload_byte_is_corrupt_rest_restored() {
        let store = ArtifactStore::with_capacity(4);
        store.verdict.lock().insert((constant_task(2), 1), record());
        store.verdict.lock().insert((identity_task(2), 1), record());
        let dir = test_dir("flip");
        save_store(&store, &dir, &RealIo).expect("save");

        let path = snapshot_path(&dir, ArtifactKind::Verdict);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one payload byte of the last entry record: 'E', space,
        // 16 hex digits, space — the payload starts 19 bytes in.
        let last_e = bytes
            .windows(3)
            .rposition(|w| w == b"\nE ")
            .expect("an entry record");
        bytes[last_e + 20] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");

        let fresh = ArtifactStore::with_capacity(4);
        let report = load_store(&fresh, &dir, &RealIo);
        assert_eq!(report.corrupt_entries, 1);
        assert_eq!(report.restored, 1);
        assert_eq!(report.rejected_snapshots, 0);
        assert_eq!(report.torn_entries, 0);
        let stats = fresh.verdict.lock().stats();
        assert_eq!(stats.corrupt_entries, 1);
        assert_eq!(stats.restored, 1);
        let keys: Vec<_> = fresh
            .verdict
            .lock()
            .entries_in_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![(constant_task(2), 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_rejects_the_whole_snapshot() {
        let store = seeded_store_with(4, &[constant_task(2)]);
        let dir = test_dir("magic");
        save_store(&store, &dir, &RealIo).expect("save");
        let path = snapshot_path(&dir, ArtifactKind::Homology);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] ^= 0x20;
        std::fs::write(&path, &bytes).expect("rewrite");

        let fresh = ArtifactStore::with_capacity(4);
        let report = load_store(&fresh, &dir, &RealIo);
        assert_eq!(report.rejected_snapshots, 1);
        assert!(fresh.homology.lock().is_empty());
        assert_eq!(fresh.homology.lock().stats().rejected_snapshots, 1);
        assert_eq!(report.restored, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_version_snapshot_degrades_to_recompute() {
        // A pre-re-keying (v1) snapshot must be rejected wholesale, not
        // reinterpreted under the per-branch keys: the cost is a cold
        // recompute, never a wrong verdict from an aliased artifact.
        let store = seeded_store_with(4, &[constant_task(2)]);
        let dir = test_dir("old-version");
        save_store(&store, &dir, &RealIo).expect("save");
        for kind in ALL_KINDS {
            let path = snapshot_path(&dir, kind);
            let text = std::fs::read_to_string(&path).expect("read");
            let downgraded = text.replacen("chromata-snap v2 ", "chromata-snap v1 ", 1);
            assert_ne!(text, downgraded, "version token must be present");
            std::fs::write(&path, downgraded).expect("rewrite");
        }

        let fresh = ArtifactStore::with_capacity(4);
        let report = load_store(&fresh, &dir, &RealIo);
        assert_eq!(report.rejected_snapshots, ALL_KINDS.len() as u64);
        assert_eq!(report.restored, 0);
        assert!(fresh.split.lock().is_empty());
        assert!(fresh.links.lock().is_empty());
        assert!(fresh.presentations.lock().is_empty());
        assert!(fresh.homology.lock().is_empty());
        assert!(fresh.exploration.lock().is_empty());
        assert!(fresh.verdict.lock().is_empty());
        // The degraded store re-saves as v2 and round-trips cleanly.
        save_store(&store, &dir, &RealIo).expect("re-save");
        let again = ArtifactStore::with_capacity(4);
        let report = load_store(&again, &dir, &RealIo);
        assert_eq!(report.rejected_snapshots, 0);
        assert_eq!(report.restored, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_kind_magic_is_rejected() {
        // A verdict snapshot copied over the split snapshot must not
        // load: the magic line binds the file to its kind.
        let store = seeded_store_with(4, &[constant_task(2)]);
        let dir = test_dir("cross-kind");
        save_store(&store, &dir, &RealIo).expect("save");
        std::fs::copy(
            snapshot_path(&dir, ArtifactKind::Verdict),
            snapshot_path(&dir, ArtifactKind::Split),
        )
        .expect("copy");
        let fresh = ArtifactStore::with_capacity(4);
        let report = load_store(&fresh, &dir, &RealIo);
        assert_eq!(report.rejected_snapshots, 1);
        assert!(fresh.split.lock().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_dependent_explorations_never_cross_the_disk() {
        // Save side: filtered out and counted.
        let store = ArtifactStore::with_capacity(4);
        store
            .exploration
            .lock()
            .insert((constant_task(2), 9), exploration(false));
        store
            .exploration
            .lock()
            .insert((constant_task(2), 5), exploration(true));
        let dir = test_dir("budget-save");
        let report = save_store(&store, &dir, &RealIo).expect("save");
        assert_eq!(report.entries_skipped, 1);
        assert_eq!(report.entries_written, 1);

        // Load side: a forged snapshot carrying a budget-dependent
        // report is classified corrupt, not restored.
        let forged_dir = test_dir("budget-forge");
        std::fs::create_dir_all(&forged_dir).expect("mkdir");
        let (capacity, stats, entries) = {
            let guard = store.exploration.lock();
            (guard.capacity(), guard.stats(), guard.entries_in_order())
        };
        let mut skipped = 0;
        let mut written = 0;
        let body = render_snapshot(
            ArtifactKind::Exploration,
            capacity,
            stats,
            &entries,
            |_, _| true, // forge: keep even the inadmissible one
            &mut skipped,
            &mut written,
        )
        .expect("render");
        std::fs::write(snapshot_path(&forged_dir, ArtifactKind::Exploration), body).expect("write");
        let fresh = ArtifactStore::with_capacity(4);
        let load = load_store(&fresh, &forged_dir, &RealIo);
        assert_eq!(load.corrupt_entries, 1);
        assert_eq!(load.restored, 1);
        let keys: Vec<_> = fresh
            .exploration
            .lock()
            .entries_in_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![(constant_task(2), 5)]);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&forged_dir);
    }

    // -- audit + clear -----------------------------------------------------

    #[test]
    fn audit_classifies_valid_corrupt_and_missing() {
        let store = seeded_store_with(4, &[constant_task(2)]);
        let dir = test_dir("audit");
        save_store(&store, &dir, &RealIo).expect("save");

        let audits = audit_cache_dir(&dir);
        assert_eq!(audits.len(), 6);
        for audit in &audits {
            assert_eq!(audit.status, SnapshotStatus::Valid, "{}", audit.kind);
            assert!(audit.is_clean(), "{}", audit.kind);
            assert_eq!(audit.entries, 1, "{}", audit.kind);
            assert_eq!(audit.capacity, 4, "{}", audit.kind);
        }

        // Flip a payload byte: the audit must flag exactly that kind.
        let path = snapshot_path(&dir, ArtifactKind::Presentations);
        let mut bytes = std::fs::read(&path).expect("read");
        let last_e = bytes
            .windows(3)
            .rposition(|w| w == b"\nE ")
            .expect("an entry record");
        bytes[last_e + 20] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        let audits = audit_cache_dir(&dir);
        let flagged: Vec<_> = audits.iter().filter(|a| !a.is_clean()).collect();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].kind, ArtifactKind::Presentations);
        assert_eq!(flagged[0].corrupt_entries, 1);
        assert!(!flagged[0].issues.is_empty());

        // Clearing removes every snapshot; the audit then reads missing.
        let removed = clear_cache_dir(&dir).expect("clear");
        assert_eq!(removed, 6);
        for audit in audit_cache_dir(&dir) {
            assert_eq!(audit.status, SnapshotStatus::Missing);
            assert!(audit.is_clean());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- configuration + warm start ---------------------------------------

    #[test]
    fn cache_dir_config_resolution() {
        assert!(!CacheDirConfig::disabled().is_enabled());
        assert!(!CacheDirConfig::default().is_enabled());
        let explicit = CacheDirConfig::resolve(Some(PathBuf::from("/tmp/explicit")));
        assert_eq!(explicit.dir(), Some(Path::new("/tmp/explicit")));

        std::env::set_var(CACHE_DIR_ENV, "/tmp/from-env");
        assert_eq!(
            CacheDirConfig::from_env().dir(),
            Some(Path::new("/tmp/from-env"))
        );
        // Explicit still wins over the environment.
        let winner = CacheDirConfig::resolve(Some(PathBuf::from("/tmp/explicit")));
        assert_eq!(winner.dir(), Some(Path::new("/tmp/explicit")));
        let fallback = CacheDirConfig::resolve(None);
        assert_eq!(fallback.dir(), Some(Path::new("/tmp/from-env")));
        std::env::remove_var(CACHE_DIR_ENV);
        assert!(!CacheDirConfig::from_env().is_enabled());
    }

    #[test]
    fn warm_start_runs_once_per_directory() {
        assert!(warm_start(&CacheDirConfig::disabled()).is_none());
        let dir = test_dir("warm-once");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let config = CacheDirConfig::at(&dir);
        let first = warm_start(&config).expect("first warm start loads");
        assert_eq!(first.missing, 6, "empty directory: nothing to restore");
        assert!(
            warm_start(&config).is_none(),
            "second warm start is a no-op"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- parser hardening --------------------------------------------------

    #[test]
    fn parse_tagged_line_rejects_malformed_records() {
        assert!(parse_tagged_line(b"", b'E').is_err());
        assert!(parse_tagged_line(b"X 0000000000000000 []", b'E').is_err());
        assert!(parse_tagged_line(b"E 00", b'E').is_err());
        assert!(parse_tagged_line(b"E 000000000000000g []", b'E').is_err());
        assert!(parse_tagged_line(b"E 0000000000000000[]", b'E').is_err());
        let ok = parse_tagged_line(b"E 00000000000000ff []", b'E').expect("well-formed");
        assert_eq!(ok.0, 0xff);
        assert_eq!(ok.1, b"[]");
    }

    #[test]
    fn split_lines_classifies_torn_tails() {
        assert_eq!(split_lines(b""), (vec![], None));
        assert_eq!(split_lines(b"a\n"), (vec![b"a".as_slice()], None));
        assert_eq!(
            split_lines(b"a\nb"),
            (vec![b"a".as_slice()], Some(b"b".as_slice()))
        );
        assert_eq!(
            split_lines(b"a\nb\n"),
            (vec![b"a".as_slice(), b"b".as_slice()], None)
        );
    }
}
