//! Distributed stage execution: dispatching verdict-engine stages to a
//! pool of worker shards without ever trading availability — or digest
//! parity — for a wrong verdict.
//!
//! The layer is deliberately socket-free (rule D4 confines sockets to
//! the CLI crate): everything here speaks through the [`ShardIo`] seam,
//! a single blocking request/response exchange that the CLI implements
//! over TCP and tests implement in-process with injected faults. The
//! fault discipline mirrors the source paper's own setting: just as the
//! three-process characterization must hold under any crash pattern of
//! the IIS runs, the engine must produce the same verdict and evidence
//! digest under any pattern of shard crashes, stalls, corruption, and
//! partitions.
//!
//! Robustness machinery, in dispatch order:
//!
//! * **routing** — a stage's home shard is its interned cache-key
//!   fingerprint modulo the pool size; attempt `k` rotates to the next
//!   shard, so retries naturally migrate off a sick machine;
//! * **deadlines** — every attempt is bounded by the engine's per-stage
//!   deadline clamped to the request [`Budget`]'s remaining wall clock;
//! * **retries** — bounded attempts with decorrelated-jitter backoff
//!   (deterministically seeded from the cache-key fingerprint, so runs
//!   are replayable without an OS entropy source);
//! * **hedging** — optionally, a straggling primary is raced against a
//!   second shard; first valid answer wins, the loser is abandoned;
//! * **health** — consecutive failures eject a shard from rotation;
//!   ejected shards are re-admitted through counted ping probes, so a
//!   partitioned-then-healed shard rejoins without a restart;
//! * **fallback** — when every remote option is exhausted the stage is
//!   recomputed locally. Remote execution can therefore only ever *add*
//!   availability: artifacts are byte-identical wherever they were
//!   computed (a checksum rejects corrupted payloads), and the
//!   [`EvidenceChain`](super::EvidenceChain) records who computed each
//!   stage via [`StageOrigin`] — which the digest deliberately excludes.
//!
//! Every fault is counted in [`RemoteStats`] (the wire-layer cousin of
//! the PR 2 exploration fault taxonomy) and recorded as a replayable
//! one-line trace retrievable with [`remote_fault_trace`].

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Duration;

use chromata_task::Task;
use chromata_topology::{structural_fingerprint, Budget, CancelToken, Stopwatch};
use serde_json::Value;

use super::artifacts::{
    ExplorationReport, HomologyReport, LinkGraphs, Presentations, SubdividedComplex,
};
use super::cache::{self, ArtifactStore};
use super::{
    CacheEvent, ExploreStage, HomologyStage, LinkStage, PresentationStage, SplitStage, Stage,
    StageEvidence, StageOrigin, StageOutcome,
};
use crate::continuous::ContinuousOutcome;

/// The protocol version stage requests carry (`proto` field).
///
/// v2 (PR 9): link-graph and presentation jobs ship *branch sub-tasks*
/// (name-erased single-facet restrictions) instead of whole split tasks,
/// and homology jobs are routed by the branch decomposition fingerprint.
/// The wire shapes are unchanged; the version records the re-keying.
pub const STAGE_PROTO_VERSION: u64 = 2;

/// Bound on retained fault-trace lines (oldest evicted first).
const FAULT_TRACE_CAP: usize = 256;

/// FNV-1a over bytes — the artifact-payload checksum (same constants as
/// the workspace's structural fingerprinting and the snapshot format).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// health tables and trace rings hold plain data whose invariants the
/// lock body re-establishes.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// The I/O seam
// ---------------------------------------------------------------------------

/// Where in the dispatch protocol a shard interaction failed. The first
/// three steps are the I/O seam's; `Decode` is diagnosed dispatcher-side
/// when a response arrives but cannot be turned into a valid artifact
/// (truncation, corruption, checksum mismatch, overload answer).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardStep {
    /// Establishing the connection.
    Connect,
    /// Writing the request line.
    Send,
    /// Reading the response line.
    Recv,
    /// Validating / deserializing the response payload.
    Decode,
}

impl ShardStep {
    /// Stable lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShardStep::Connect => "connect",
            ShardStep::Send => "send",
            ShardStep::Recv => "recv",
            ShardStep::Decode => "decode",
        }
    }
}

/// A structured shard-I/O failure: which protocol step, which
/// `io::ErrorKind`, and a human-readable message.
#[derive(Clone, Debug)]
pub struct ShardIoError {
    /// The protocol step that failed.
    pub step: ShardStep,
    /// The underlying I/O error class.
    pub kind: io::ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ShardIoError {
    /// Convenience constructor.
    #[must_use]
    pub fn new(step: ShardStep, kind: io::ErrorKind, message: impl Into<String>) -> Self {
        ShardIoError {
            step,
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ShardIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed ({:?}): {}",
            self.step.label(),
            self.kind,
            self.message
        )
    }
}

/// The transport seam between the dispatcher and a shard pool: one
/// blocking newline-delimited JSON exchange. The CLI implements it over
/// TCP (`chromata_cli::shard::TcpShardIo`); tests implement it
/// in-process and inject crashes, stalls, corruption, and partitions at
/// any [`ShardStep`] (the wire-layer mirror of PR 5's `PersistIo`).
pub trait ShardIo: Send + Sync {
    /// Number of shards in the pool (shards are indexed `0..count`).
    fn shard_count(&self) -> usize;

    /// Sends `line` to `shard` and reads the one-line response, all
    /// within `deadline` when one is given. Implementations simulate a
    /// stalled shard by blocking and a killed shard by erroring.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardIoError`] naming the failed protocol step.
    fn exchange(
        &self,
        shard: usize,
        line: &str,
        deadline: Option<Duration>,
    ) -> Result<String, ShardIoError>;
}

// ---------------------------------------------------------------------------
// The stage-op wire payload
// ---------------------------------------------------------------------------

/// One unit of remotely executable work: a stage plus the task-shaped
/// key it runs on. The worker recomputes prerequisite artifacts from
/// the task via its own (warm) stage caches, so a job is self-contained
/// and idempotent — dispatching it twice, to two shards, or after a
/// partial failure cannot change any artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageJob {
    /// §4 splitting of a canonical three-process task.
    Split {
        /// The canonical task to split.
        canonical: Task,
    },
    /// Link graphs of a split task.
    Links {
        /// The split task.
        task: Task,
    },
    /// π₁ presentations of a split task (links recomputed shard-side).
    Presentations {
        /// The split task.
        task: Task,
    },
    /// The continuous-map tiers of a split task.
    Homology {
        /// The split task.
        task: Task,
    },
    /// The bounded ACT exploration ladder. Only dispatched for fully
    /// unconstrained budgets (see [`DistStage::job`]), so the shard's
    /// unlimited-budget run is bit-identical to the local one.
    Explore {
        /// The split task.
        task: Task,
        /// Configured round cap (part of the cache key).
        rounds: usize,
        /// Why the continuous tier was undetermined (feeds the verdict
        /// text, hence the evidence digest — it must travel).
        reason: String,
    },
}

impl StageJob {
    /// The stage name the job executes (matches [`Stage::NAME`]).
    #[must_use]
    pub fn stage_name(&self) -> &'static str {
        match self {
            StageJob::Split { .. } => SplitStage::NAME,
            StageJob::Links { .. } => LinkStage::NAME,
            StageJob::Presentations { .. } => PresentationStage::NAME,
            StageJob::Homology { .. } => HomologyStage::NAME,
            StageJob::Explore { .. } => ExploreStage::NAME,
        }
    }

    /// The task the job runs on.
    #[must_use]
    pub fn task(&self) -> &Task {
        match self {
            StageJob::Split { canonical } => canonical,
            StageJob::Links { task }
            | StageJob::Presentations { task }
            | StageJob::Homology { task }
            | StageJob::Explore { task, .. } => task,
        }
    }

    /// Deterministic routing fingerprint: the interned cache key of the
    /// stage, salted with the stage name so co-keyed stages of one task
    /// spread across the pool.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        match self {
            StageJob::Explore { task, rounds, .. } => {
                structural_fingerprint(&(self.stage_name(), task, *rounds))
            }
            // Homology is keyed (and therefore homed) on the branch
            // decomposition, matching its cache key.
            StageJob::Homology { task } => {
                structural_fingerprint(&(self.stage_name(), super::branch_tasks(task)))
            }
            _ => structural_fingerprint(&(self.stage_name(), self.task())),
        }
    }
}

/// Builds an ordered JSON object (the vendored `serde_json` has no
/// object-literal macro).
fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Renders a [`StageJob`] as one `op: "stage"` request line (no
/// trailing newline; the transport appends it).
///
/// # Errors
///
/// Returns a message if the task fails to serialize (does not happen
/// for validated tasks; surfaced rather than panicking a dispatcher).
pub fn stage_request_line(job: &StageJob) -> Result<String, String> {
    let task_value = serde_json::to_value(job.task())
        .map_err(|e| format!("stage request: task serialization failed: {e}"))?;
    let mut fields = vec![
        ("op", Value::String("stage".to_owned())),
        ("proto", Value::UInt(STAGE_PROTO_VERSION)),
        ("stage", Value::String(job.stage_name().to_owned())),
        ("task", task_value),
    ];
    if let StageJob::Explore { rounds, reason, .. } = job {
        fields.push(("rounds", Value::UInt(*rounds as u64)));
        fields.push(("reason", Value::String(reason.clone())));
    }
    serde_json::to_string(&object(fields))
        .map_err(|e| format!("stage request: serialization failed: {e}"))
}

/// Parses the fields of an already-framed `op: "stage"` request object
/// (the CLI wire layer owns framing; this layer owns the payload).
/// Every rejection names the offending field.
///
/// # Errors
///
/// Returns a message naming the missing, unknown, or ill-typed field.
pub fn parse_stage_fields(entries: &[(String, Value)]) -> Result<StageJob, String> {
    let mut stage = None;
    let mut task = None;
    let mut rounds = None;
    let mut reason = None;
    for (key, value) in entries {
        match key.as_str() {
            "op" | "proto" => {}
            "stage" => match value {
                Value::String(name) => stage = Some(name.clone()),
                _ => return Err("field `stage` must be a string".to_owned()),
            },
            "task" => match value {
                Value::Object(_) => {
                    let parsed: Task = serde_json::from_value(value.clone())
                        .map_err(|e| format!("invalid stage task: {e}"))?;
                    task = Some(parsed);
                }
                _ => return Err("field `task` must be a task object".to_owned()),
            },
            "rounds" => match value {
                Value::UInt(n) => rounds = Some(*n as usize),
                Value::Int(n) if *n >= 0 => rounds = Some(*n as usize),
                _ => return Err("field `rounds` must be a non-negative integer".to_owned()),
            },
            "reason" => match value {
                Value::String(text) => reason = Some(text.clone()),
                _ => return Err("field `reason` must be a string".to_owned()),
            },
            other => return Err(format!("unknown field `{other}` for op `stage`")),
        }
    }
    let Some(stage) = stage else {
        return Err("stage request needs a `stage` name".to_owned());
    };
    let Some(task) = task else {
        return Err("stage request needs a `task` object".to_owned());
    };
    let extras_forbidden = |job: StageJob| -> Result<StageJob, String> {
        if rounds.is_some() || reason.is_some() {
            return Err(format!(
                "fields `rounds`/`reason` are only valid for stage `{}`",
                ExploreStage::NAME
            ));
        }
        Ok(job)
    };
    match stage.as_str() {
        "split" => extras_forbidden(StageJob::Split { canonical: task }),
        "link-graphs" => extras_forbidden(StageJob::Links { task }),
        "presentations" => extras_forbidden(StageJob::Presentations { task }),
        "homology" => extras_forbidden(StageJob::Homology { task }),
        "explore" => {
            let Some(rounds) = rounds else {
                return Err("stage `explore` needs a `rounds` field".to_owned());
            };
            Ok(StageJob::Explore {
                task,
                rounds,
                reason: reason.unwrap_or_default(),
            })
        }
        other => Err(format!(
            "unknown stage `{other}`; expected split, link-graphs, presentations, homology or explore"
        )),
    }
}

/// Executes a [`StageJob`] against this process's [`ArtifactStore`] and
/// renders the one-line response: the serialized artifact (as an
/// embedded JSON string) plus its FNV-1a checksum, so a dispatcher can
/// reject any truncated or corrupted payload before deserializing.
///
/// Jobs run under an **unlimited** budget: every stage shipped here is
/// budget-independent (the dispatcher pins budget-sensitive work
/// local), so the artifact is bit-identical to a local compute.
///
/// # Errors
///
/// Returns a message if the artifact fails to (de)serialize.
pub fn execute_stage_line(job: &StageJob) -> Result<String, String> {
    let store = cache::store();
    let budget = Budget::unlimited();
    let payload = match job {
        StageJob::Split { canonical } => {
            let out = SplitStage {
                canonical: canonical.clone(),
            }
            .run(store, &budget);
            serde_json::to_string(&*out.artifact)
        }
        StageJob::Links { task } => {
            let out = LinkStage { task: task.clone() }.run(store, &budget);
            serde_json::to_string(&*out.artifact)
        }
        StageJob::Presentations { task } => {
            let links = LinkStage { task: task.clone() }
                .run(store, &budget)
                .artifact;
            let out = PresentationStage {
                task: task.clone(),
                links,
            }
            .run(store, &budget);
            serde_json::to_string(&*out.artifact)
        }
        StageJob::Homology { task } => {
            // Worker-side aggregation is strictly local (`dispatch:
            // false`): a worker that is itself configured with a shard
            // pool must never re-dispatch the per-branch prerequisites,
            // or an in-process loopback would recurse forever.
            let branches = super::branch_tasks(task);
            let (links, branch_links, _) = super::run_links(task, &branches, store, &budget, false);
            let (presentations, _) =
                super::run_presentations(&branches, &branch_links, &links, store, &budget, false);
            let out = HomologyStage {
                task: task.clone(),
                branches,
                links,
                presentations,
            }
            .run(store, &budget);
            serde_json::to_string(&*out.artifact)
        }
        StageJob::Explore {
            task,
            rounds,
            reason,
        } => {
            let out = ExploreStage {
                task: task.clone(),
                undetermined_reason: reason.clone(),
                configured_rounds: *rounds,
                cancel: CancelToken::new(),
            }
            .run(store, &budget);
            serde_json::to_string(&*out.artifact)
        }
    }
    .map_err(|e| {
        format!(
            "stage `{}`: artifact serialization failed: {e}",
            job.stage_name()
        )
    })?;
    let check = fnv1a(payload.as_bytes());
    serde_json::to_string(&object(vec![
        ("status", Value::String("ok".to_owned())),
        ("op", Value::String("stage".to_owned())),
        ("proto", Value::UInt(STAGE_PROTO_VERSION)),
        ("stage", Value::String(job.stage_name().to_owned())),
        ("check", Value::String(format!("{check:016x}"))),
        ("artifact", Value::String(payload)),
    ]))
    .map_err(|e| format!("stage response serialization failed: {e}"))
}

/// Extracts and checksum-verifies the artifact payload of a stage
/// response line. Any deviation — error status, overload answer, stage
/// mismatch, missing or corrupt checksum — is a [`ShardStep::Decode`]
/// fault for the caller to count.
fn artifact_payload(text: &str, stage: &str) -> Result<String, String> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("malformed stage response: {e}"))?;
    let Value::Object(entries) = value else {
        return Err("stage response is not a JSON object".to_owned());
    };
    let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    match field("status") {
        Some(Value::String(s)) if s == "ok" => {}
        Some(Value::String(s)) if s == "error" => {
            let msg = match field("error") {
                Some(Value::String(m)) => m.as_str(),
                _ => "unnamed error",
            };
            return Err(format!("shard answered an error: {msg}"));
        }
        _ => return Err("stage response carries no valid `status`".to_owned()),
    }
    match field("stage") {
        Some(Value::String(s)) if s == stage => {}
        _ if field("retry_after_ms").is_some() => {
            return Err("shard is overloaded (retry hinted)".to_owned());
        }
        _ => return Err(format!("stage response is not for stage `{stage}`")),
    }
    let Some(Value::String(payload)) = field("artifact") else {
        return Err("stage response carries no `artifact` payload".to_owned());
    };
    let Some(Value::String(check)) = field("check") else {
        return Err("stage response carries no `check` checksum".to_owned());
    };
    let expected = u64::from_str_radix(check, 16)
        .map_err(|_| "stage response checksum is not hexadecimal".to_owned())?;
    let actual = fnv1a(payload.as_bytes());
    if actual != expected {
        return Err(format!(
            "artifact checksum mismatch: expected {expected:016x}, payload hashes to {actual:016x}"
        ));
    }
    Ok(payload.clone())
}

// ---------------------------------------------------------------------------
// Stage → job mapping (dispatcher side)
// ---------------------------------------------------------------------------

/// A [`Stage`] the engine knows how to ship: how to phrase it as a
/// [`StageJob`] (or decline, pinning it local) and how to deserialize
/// its artifact from a shard's payload.
pub(crate) trait DistStage: Stage {
    /// The wire job for this stage instance, or `None` when the stage
    /// must run locally to stay bit-identical under `budget`.
    fn job(&self, budget: &Budget) -> Option<StageJob>;

    /// Deserializes the checksum-verified artifact payload.
    fn decode(payload: &str) -> Result<Self::Artifact, String>;

    /// Semantic re-validation of a decoded artifact against the stage's
    /// own inputs. A checksum only proves the payload arrived as the
    /// shard sent it; a buggy or adversarial shard can still send a
    /// *well-formed but wrong* artifact — wrong branch count, a
    /// non-canonical split task, an assignment over the wrong vertex
    /// set. A rejection here is counted as `invalid_artifact` in the
    /// fault taxonomy and the engine retries / falls back local; the
    /// artifact is never accepted.
    fn admissible(&self, _artifact: &Self::Artifact) -> Result<(), String> {
        Ok(())
    }
}

fn decode_as<T: for<'de> serde::Deserialize<'de>>(
    payload: &str,
    stage: &str,
) -> Result<Arc<T>, String> {
    serde_json::from_str::<T>(payload)
        .map(Arc::new)
        .map_err(|e| format!("stage `{stage}`: artifact deserialization failed: {e}"))
}

impl DistStage for SplitStage {
    fn job(&self, _budget: &Budget) -> Option<StageJob> {
        Some(StageJob::Split {
            canonical: self.canonical.clone(),
        })
    }

    fn decode(payload: &str) -> Result<Arc<SubdividedComplex>, String> {
        decode_as(payload, Self::NAME)
    }

    fn admissible(&self, artifact: &Arc<SubdividedComplex>) -> Result<(), String> {
        let split = &artifact.split;
        if split.task.process_count() != self.canonical.process_count() {
            return Err(format!(
                "split task has {} processes, canonical input has {}",
                split.task.process_count(),
                self.canonical.process_count()
            ));
        }
        // Splitting deforms the output complex and the carrier only;
        // the input complex must survive untouched.
        if split.task.input() != self.canonical.input() {
            return Err("split task's input complex differs from the canonical task's".to_owned());
        }
        if let Some(witness) = &split.degenerate {
            if !self.canonical.input().vertices().any(|v| v == witness) {
                return Err(format!(
                    "degenerate witness `{witness}` is not an input vertex"
                ));
            }
        }
        Ok(())
    }
}

impl DistStage for LinkStage {
    fn job(&self, _budget: &Budget) -> Option<StageJob> {
        Some(StageJob::Links {
            task: self.task.clone(),
        })
    }

    fn decode(payload: &str) -> Result<Arc<LinkGraphs>, String> {
        decode_as(payload, Self::NAME)
    }

    fn admissible(&self, artifact: &Arc<LinkGraphs>) -> Result<(), String> {
        let input = self.task.input();
        if !artifact.vertices.iter().eq(input.vertices()) {
            return Err("link-graph vertex list differs from the task's input vertices".to_owned());
        }
        if !artifact.edges.iter().eq(input.simplices_of_dim(1)) {
            return Err("link-graph edge list differs from the task's input edges".to_owned());
        }
        if !artifact.triangles.iter().eq(input.simplices_of_dim(2)) {
            return Err(format!(
                "link-graph triangle list has {} branches, the task has {}",
                artifact.triangles.len(),
                input.simplices_of_dim(2).count()
            ));
        }
        if artifact.domains.len() != artifact.vertices.len()
            || artifact.edge_graphs.len() != artifact.edges.len()
            || artifact.edge_cycles.len() != artifact.edges.len()
        {
            return Err("link-graph parallel arrays disagree in length".to_owned());
        }
        Ok(())
    }
}

impl DistStage for PresentationStage {
    fn job(&self, _budget: &Budget) -> Option<StageJob> {
        Some(StageJob::Presentations {
            task: self.task.clone(),
        })
    }

    fn decode(payload: &str) -> Result<Arc<Presentations>, String> {
        decode_as(payload, Self::NAME)
    }

    fn admissible(&self, artifact: &Arc<Presentations>) -> Result<(), String> {
        let triangles = self.task.input().simplices_of_dim(2).count();
        if artifact.per_triangle.len() != triangles {
            return Err(format!(
                "presentations cover {} triangles, the task has {}",
                artifact.per_triangle.len(),
                triangles
            ));
        }
        Ok(())
    }
}

impl DistStage for HomologyStage {
    fn job(&self, _budget: &Budget) -> Option<StageJob> {
        Some(StageJob::Homology {
            task: self.task.clone(),
        })
    }

    fn decode(payload: &str) -> Result<Arc<HomologyReport>, String> {
        decode_as(payload, Self::NAME)
    }

    fn admissible(&self, artifact: &Arc<HomologyReport>) -> Result<(), String> {
        if let ContinuousOutcome::Exists { assignment, .. } = &artifact.outcome {
            let input = self.task.input();
            let vertex_count = input.vertices().count();
            if assignment.len() != vertex_count {
                return Err(format!(
                    "witness assigns {} vertices, the task's input has {}",
                    assignment.len(),
                    vertex_count
                ));
            }
            for (x, g_x) in assignment {
                if !input.vertices().any(|v| v == x) {
                    return Err(format!("witness assigns non-input vertex `{x}`"));
                }
                if !self.task.output().vertices().any(|v| v == g_x) {
                    return Err(format!(
                        "witness maps `{x}` to `{g_x}`, which is not an output vertex"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl DistStage for ExploreStage {
    /// The exploration ladder reads the budget (deadline escalation,
    /// state/step/round caps), so shipping it under a constrained
    /// budget would diverge from the local run. It is remote-eligible
    /// only when the budget cannot influence the result — exactly the
    /// condition under which its artifact is cacheable at the
    /// configured cap.
    fn job(&self, budget: &Budget) -> Option<StageJob> {
        let unconstrained = budget.deadline.is_none()
            && budget.max_states == usize::MAX
            && budget.max_steps == usize::MAX
            && budget.max_act_rounds >= self.configured_rounds;
        if !unconstrained {
            return None;
        }
        Some(StageJob::Explore {
            task: self.task.clone(),
            rounds: self.configured_rounds,
            reason: self.undetermined_reason.clone(),
        })
    }

    fn decode(payload: &str) -> Result<Arc<ExplorationReport>, String> {
        decode_as(payload, Self::NAME)
    }

    fn admissible(&self, artifact: &Arc<ExplorationReport>) -> Result<(), String> {
        if artifact.rounds_cap > self.configured_rounds {
            return Err(format!(
                "exploration reports a round cap of {}, beyond the configured {}",
                artifact.rounds_cap, self.configured_rounds
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Policy, stats, health
// ---------------------------------------------------------------------------

/// Tuning knobs for the remote engine. `Default` is conservative:
/// three attempts, small decorrelated-jitter backoff, a 10 s per-stage
/// deadline, hedging off.
#[derive(Clone, Copy, Debug)]
pub struct RemotePolicy {
    /// Maximum dispatch attempts per stage before local fallback (≥ 1).
    pub attempts: u32,
    /// Decorrelated-jitter base (milliseconds).
    pub base_backoff_ms: u64,
    /// Decorrelated-jitter cap (milliseconds).
    pub max_backoff_ms: u64,
    /// Per-attempt deadline (milliseconds); always additionally clamped
    /// to the request budget's remaining wall clock. `None` leaves
    /// attempts bounded by the budget alone.
    pub stage_deadline_ms: Option<u64>,
    /// Hedge a straggling attempt against a second shard after this
    /// many milliseconds without an answer. `None` disables hedging.
    pub hedge_after_ms: Option<u64>,
    /// Consecutive failures after which a shard is ejected from the
    /// rotation.
    pub eject_after: u32,
    /// Routing passes that skip an ejected shard before it is probed
    /// for re-admission.
    pub probe_every: u32,
}

impl Default for RemotePolicy {
    fn default() -> Self {
        RemotePolicy {
            attempts: 3,
            base_backoff_ms: 5,
            max_backoff_ms: 100,
            stage_deadline_ms: Some(10_000),
            hedge_after_ms: None,
            eject_after: 3,
            probe_every: 4,
        }
    }
}

/// Fault-taxonomy counters of the remote engine (process-wide snapshot;
/// see [`remote_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Stage dispatches attempted (one per attempt, hedges excluded).
    pub dispatched: u64,
    /// Stages successfully fetched from a shard.
    pub fetched: u64,
    /// Re-dispatches after a failed attempt.
    pub retries: u64,
    /// Hedged second dispatches fired.
    pub hedges: u64,
    /// Hedges whose answer beat the primary.
    pub hedge_wins: u64,
    /// Faults at [`ShardStep::Connect`].
    pub connect_faults: u64,
    /// Faults at [`ShardStep::Send`].
    pub send_faults: u64,
    /// Faults at [`ShardStep::Recv`].
    pub recv_faults: u64,
    /// Faults at [`ShardStep::Decode`] (truncation, corruption,
    /// checksum mismatch, overload answers).
    pub decode_faults: u64,
    /// Checksum-valid artifacts rejected by semantic re-validation
    /// (wrong branch count, non-canonical split task, assignment over
    /// the wrong vertex set, rank out of range). Also counted under
    /// [`decode_faults`](Self::decode_faults) — re-validation is the
    /// last step of decoding.
    pub invalid_artifacts: u64,
    /// Faults whose error kind was a timeout (`TimedOut`/`WouldBlock`),
    /// across all steps.
    pub timeouts: u64,
    /// Stages recomputed locally after exhausting every remote option.
    pub local_fallbacks: u64,
    /// Shards ejected from the rotation.
    pub ejections: u64,
    /// Ejected shards re-admitted after a successful probe.
    pub readmissions: u64,
    /// Re-admission probes sent.
    pub probes: u64,
}

#[derive(Default)]
struct Counters {
    dispatched: AtomicU64,
    fetched: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    connect_faults: AtomicU64,
    send_faults: AtomicU64,
    recv_faults: AtomicU64,
    decode_faults: AtomicU64,
    invalid_artifacts: AtomicU64,
    timeouts: AtomicU64,
    local_fallbacks: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    probes: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> RemoteStats {
        RemoteStats {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            fetched: self.fetched.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            connect_faults: self.connect_faults.load(Ordering::Relaxed),
            send_faults: self.send_faults.load(Ordering::Relaxed),
            recv_faults: self.recv_faults.load(Ordering::Relaxed),
            decode_faults: self.decode_faults.load(Ordering::Relaxed),
            invalid_artifacts: self.invalid_artifacts.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            local_fallbacks: self.local_fallbacks.load(Ordering::Relaxed),
            ejections: self.ejections.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy, Default)]
struct ShardHealth {
    consecutive_failures: u32,
    ejected: bool,
    skips_since_eject: u32,
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The retry/hedge/fallback state machine in front of a [`ShardIo`].
pub struct RemoteEngine {
    io: Arc<dyn ShardIo>,
    policy: RemotePolicy,
    health: Mutex<Vec<ShardHealth>>,
    counters: Counters,
    faults: Mutex<VecDeque<String>>,
}

/// The winner of one (possibly hedged) exchange.
type ExchangeWin = (String, usize);

impl RemoteEngine {
    fn new(io: Arc<dyn ShardIo>, policy: RemotePolicy) -> Self {
        let shards = io.shard_count();
        RemoteEngine {
            io,
            policy,
            health: Mutex::new(vec![ShardHealth::default(); shards]),
            counters: Counters::default(),
            faults: Mutex::new(VecDeque::new()),
        }
    }

    /// xorshift64* step — deterministic jitter without an entropy source.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Decorrelated jitter: `sleep = min(cap, base + rand(0, 3·prev))`,
    /// seeded from the job fingerprint so a replay backs off identically.
    fn next_backoff(&self, rng: &mut u64, prev: &mut u64) -> Duration {
        let base = self.policy.base_backoff_ms;
        let span = prev.saturating_mul(3).max(1);
        let ms = base
            .saturating_add(Self::xorshift(rng) % span)
            .min(self.policy.max_backoff_ms.max(base));
        *prev = ms.max(1);
        Duration::from_millis(ms)
    }

    /// Per-attempt deadline: the policy's stage deadline clamped by the
    /// budget's remaining wall clock.
    fn attempt_deadline(&self, budget: &Budget) -> Option<Duration> {
        let policy = self.policy.stage_deadline_ms.map(Duration::from_millis);
        match (policy, budget.remaining()) {
            (Some(p), Some(r)) => Some(p.min(r)),
            (Some(p), None) => Some(p),
            (None, r) => r,
        }
    }

    /// Picks the shard for `attempt` (1-based): home = fingerprint mod
    /// pool, rotated by the attempt, skipping ejected shards. Skipping
    /// an ejected shard often enough triggers a ping probe; a probe
    /// that answers re-admits the shard on the spot.
    fn pick_shard(&self, fingerprint: u64, attempt: u32, pool: usize) -> Option<usize> {
        let home = (fingerprint % pool as u64) as usize;
        let start = (home + attempt as usize - 1) % pool;
        let mut due_probe = Vec::new();
        {
            let mut health = lock(&self.health);
            for offset in 0..pool {
                let candidate = (start + offset) % pool;
                let h = &mut health[candidate];
                if !h.ejected {
                    return Some(candidate);
                }
                h.skips_since_eject = h.skips_since_eject.saturating_add(1);
                if h.skips_since_eject >= self.policy.probe_every {
                    h.skips_since_eject = 0;
                    due_probe.push(candidate);
                }
            }
        }
        for candidate in due_probe {
            self.counters.probes.fetch_add(1, Ordering::Relaxed);
            if self.probe(candidate) {
                let mut health = lock(&self.health);
                let h = &mut health[candidate];
                h.ejected = false;
                h.consecutive_failures = 0;
                drop(health);
                self.counters.readmissions.fetch_add(1, Ordering::Relaxed);
                return Some(candidate);
            }
        }
        None
    }

    /// Liveness probe: a `ping` exchange under a short deadline.
    fn probe(&self, shard: usize) -> bool {
        let deadline = Some(Duration::from_millis(
            self.policy.stage_deadline_ms.unwrap_or(1_000).min(1_000),
        ));
        let ping = format!(r#"{{"op":"ping","proto":{STAGE_PROTO_VERSION}}}"#);
        match self.io.exchange(shard, &ping, deadline) {
            Ok(text) => match serde_json::from_str::<Value>(&text) {
                Ok(Value::Object(entries)) => entries
                    .iter()
                    .any(|(k, v)| k == "status" && *v == Value::String("ok".to_owned())),
                _ => false,
            },
            Err(_) => false,
        }
    }

    /// A healthy shard other than `primary`, for hedged dispatch.
    fn hedge_partner(&self, primary: usize, pool: usize) -> Option<usize> {
        let health = lock(&self.health);
        (1..pool)
            .map(|offset| (primary + offset) % pool)
            .find(|&candidate| !health[candidate].ejected)
    }

    fn note_success(&self, shard: usize) {
        let mut health = lock(&self.health);
        if let Some(h) = health.get_mut(shard) {
            h.consecutive_failures = 0;
            h.ejected = false;
        }
    }

    /// Counts a fault in the taxonomy, appends its replayable one-line
    /// trace, and updates the shard's health (possibly ejecting it).
    fn note_fault(
        &self,
        stage: &'static str,
        fingerprint: u64,
        shard: usize,
        attempt: u32,
        err: &ShardIoError,
    ) {
        let counter = match err.step {
            ShardStep::Connect => &self.counters.connect_faults,
            ShardStep::Send => &self.counters.send_faults,
            ShardStep::Recv => &self.counters.recv_faults,
            ShardStep::Decode => &self.counters.decode_faults,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if matches!(
            err.kind,
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        let trace = format!(
            "shard-fault stage={stage} key={fingerprint:016x} shard={shard} attempt={attempt} step={} kind={:?} msg={}",
            err.step.label(),
            err.kind,
            err.message
        );
        {
            let mut faults = lock(&self.faults);
            if faults.len() >= FAULT_TRACE_CAP {
                faults.pop_front();
            }
            faults.push_back(trace);
        }
        let mut ejected_now = false;
        {
            let mut health = lock(&self.health);
            if let Some(h) = health.get_mut(shard) {
                h.consecutive_failures = h.consecutive_failures.saturating_add(1);
                if !h.ejected && h.consecutive_failures >= self.policy.eject_after {
                    h.ejected = true;
                    h.skips_since_eject = 0;
                    ejected_now = true;
                }
            }
        }
        if ejected_now {
            self.counters.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One exchange, optionally hedged: if the primary has not answered
    /// within `hedge_after_ms`, race a second shard and take the first
    /// valid answer (the straggler is abandoned, its late answer
    /// harmlessly dropped — jobs are idempotent).
    fn exchange_hedged(
        &self,
        shard: usize,
        line: &str,
        deadline: Option<Duration>,
        pool: usize,
    ) -> Result<ExchangeWin, ShardIoError> {
        let Some(hedge_after) = self.policy.hedge_after_ms else {
            return self.io.exchange(shard, line, deadline).map(|t| (t, shard));
        };
        let (tx, rx) = mpsc::channel::<(usize, Result<String, ShardIoError>)>();
        let spawn_exchange = |target: usize| {
            let io = Arc::clone(&self.io);
            let line = line.to_owned();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let result = io.exchange(target, &line, deadline);
                drop(tx.send((target, result)));
            });
        };
        spawn_exchange(shard);
        let overall = deadline.unwrap_or(Duration::from_secs(60));
        let mut first_fault: Option<ShardIoError> = None;
        let mut outstanding = 1u32;
        let mut window = Duration::from_millis(hedge_after).min(overall);
        let mut hedged = false;
        loop {
            match rx.recv_timeout(window) {
                Ok((who, Ok(text))) => {
                    if hedged && who != shard {
                        self.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((text, who));
                }
                Ok((_, Err(err))) => {
                    outstanding -= 1;
                    if first_fault.is_none() {
                        first_fault = Some(err);
                    }
                    if outstanding == 0 {
                        // Both (or the only) legs failed.
                        return Err(first_fault.unwrap_or_else(|| {
                            ShardIoError::new(
                                ShardStep::Recv,
                                io::ErrorKind::Other,
                                "hedged exchange failed without a recorded fault",
                            )
                        }));
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !hedged {
                        hedged = true;
                        if let Some(partner) = self.hedge_partner(shard, pool) {
                            self.counters.hedges.fetch_add(1, Ordering::Relaxed);
                            spawn_exchange(partner);
                            outstanding += 1;
                        }
                        window = overall;
                    } else {
                        return Err(ShardIoError::new(
                            ShardStep::Recv,
                            io::ErrorKind::TimedOut,
                            "hedged exchange timed out on every leg",
                        ));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(first_fault.unwrap_or_else(|| {
                        ShardIoError::new(
                            ShardStep::Recv,
                            io::ErrorKind::Other,
                            "exchange thread disconnected without a result",
                        )
                    }));
                }
            }
        }
    }

    /// The full dispatch loop for one stage: route, exchange (hedged),
    /// decode, verify — retrying with backoff across the pool, ejecting
    /// sick shards along the way. `Err` means every remote option is
    /// exhausted and the caller must recompute locally.
    fn fetch<S: DistStage>(
        &self,
        stage: &S,
        job: &StageJob,
        budget: &Budget,
    ) -> Result<(S::Artifact, StageOrigin), ()> {
        let line = match stage_request_line(job) {
            Ok(line) => line,
            Err(_) => return Err(()),
        };
        let pool = self.io.shard_count();
        if pool == 0 {
            return Err(());
        }
        let fingerprint = job.fingerprint();
        let attempts = self.policy.attempts.max(1);
        let mut rng = fingerprint ^ 0x9e37_79b9_7f4a_7c15;
        let mut prev_backoff = self.policy.base_backoff_ms.max(1);
        for attempt in 1..=attempts {
            if budget.deadline_exceeded() {
                break;
            }
            let Some(shard) = self.pick_shard(fingerprint, attempt, pool) else {
                break;
            };
            self.counters.dispatched.fetch_add(1, Ordering::Relaxed);
            if attempt > 1 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
            }
            let deadline = self.attempt_deadline(budget);
            match self.exchange_hedged(shard, &line, deadline, pool) {
                Ok((text, winner)) => {
                    let decoded = artifact_payload(&text, S::NAME)
                        .and_then(|payload| S::decode(&payload))
                        .and_then(|artifact| match stage.admissible(&artifact) {
                            Ok(()) => Ok(artifact),
                            Err(why) => {
                                // Checksum-valid but semantically wrong:
                                // a distinct taxonomy entry on top of the
                                // decode-fault count.
                                self.counters
                                    .invalid_artifacts
                                    .fetch_add(1, Ordering::Relaxed);
                                Err(format!("invalid_artifact: {why}"))
                            }
                        });
                    match decoded {
                        Ok(artifact) => {
                            self.note_success(winner);
                            self.counters.fetched.fetch_add(1, Ordering::Relaxed);
                            return Ok((
                                artifact,
                                StageOrigin::Shard {
                                    shard: winner,
                                    attempt,
                                },
                            ));
                        }
                        Err(message) => {
                            let err = ShardIoError::new(
                                ShardStep::Decode,
                                io::ErrorKind::InvalidData,
                                message,
                            );
                            self.note_fault(S::NAME, fingerprint, winner, attempt, &err);
                        }
                    }
                }
                Err(err) => {
                    self.note_fault(S::NAME, fingerprint, shard, attempt, &err);
                }
            }
            if attempt < attempts {
                let mut pause = self.next_backoff(&mut rng, &mut prev_backoff);
                if let Some(remaining) = budget.remaining() {
                    pause = pause.min(remaining);
                }
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
        self.counters
            .local_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        Err(())
    }
}

// ---------------------------------------------------------------------------
// Process-wide configuration
// ---------------------------------------------------------------------------

fn engine_slot() -> &'static RwLock<Option<Arc<RemoteEngine>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<RemoteEngine>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn current_engine() -> Option<Arc<RemoteEngine>> {
    engine_slot()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Installs a shard pool for this process: every subsequent analysis
/// dispatches its stages through `io` under `policy`. Replaces any
/// previously configured pool (health and counters start fresh).
pub fn configure_remote(io: Arc<dyn ShardIo>, policy: RemotePolicy) {
    let engine = Arc::new(RemoteEngine::new(io, policy));
    *engine_slot()
        .write()
        .unwrap_or_else(PoisonError::into_inner) = Some(engine);
}

/// Removes the configured shard pool; analyses run purely locally
/// again. Verdicts and digests are unaffected either way.
pub fn clear_remote() {
    *engine_slot()
        .write()
        .unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a shard pool is currently configured.
#[must_use]
pub fn remote_active() -> bool {
    current_engine().is_some()
}

/// Snapshot of the configured engine's fault-taxonomy counters; `None`
/// when no pool is configured.
#[must_use]
pub fn remote_stats() -> Option<RemoteStats> {
    current_engine().map(|engine| engine.counters.snapshot())
}

/// The engine's replayable one-line fault traces, oldest first (bounded
/// ring; see [`note_fault`](RemoteEngine::note_fault) for the format).
#[must_use]
pub fn remote_fault_trace() -> Vec<String> {
    current_engine()
        .map(|engine| lock(&engine.faults).iter().cloned().collect())
        .unwrap_or_default()
}

/// Runs one stage through the configured remote engine, or locally when
/// none is configured / the stage is pinned local. The local stage
/// cache is consulted first either way; a fetched artifact is inserted
/// under the same cacheability rule as a local compute, so warm-path
/// behavior is identical machine-wide.
pub(crate) fn run_distributed<S: DistStage>(
    stage: &S,
    store: &ArtifactStore,
    budget: &Budget,
) -> StageOutcome<S::Artifact> {
    let Some(engine) = current_engine() else {
        return stage.run(store, budget);
    };
    let clock = Stopwatch::start();
    let key = stage.key();
    if let Some(hit) = S::cache(store).lock().get(&key) {
        let evidence = StageEvidence {
            stage: S::NAME,
            detail: S::detail(&hit),
            work: S::work(&hit),
            cache: CacheEvent::Hit,
            wall: clock.elapsed(),
            origin: StageOrigin::Local,
            reused: true,
            subkeys: 0,
        };
        return StageOutcome {
            artifact: hit,
            evidence,
        };
    }
    let fetched = stage
        .job(budget)
        .and_then(|job| engine.fetch::<S>(stage, &job, budget).ok());
    let (artifact, origin) = match fetched {
        Some((artifact, origin)) => (artifact, origin),
        None => {
            // Pinned local (budget-sensitive) or every remote option
            // exhausted: graceful degradation to local recompute.
            let origin = if stage.job(budget).is_some() {
                StageOrigin::LocalFallback
            } else {
                StageOrigin::Local
            };
            (stage.compute(budget), origin)
        }
    };
    let cache = if S::cacheable(&artifact) {
        S::cache(store).lock().insert(key, artifact.clone());
        CacheEvent::Miss
    } else {
        CacheEvent::Uncached
    };
    let evidence = StageEvidence {
        stage: S::NAME,
        detail: S::detail(&artifact),
        work: S::work(&artifact),
        cache,
        wall: clock.elapsed(),
        origin,
        reused: false,
        subkeys: 0,
    };
    StageOutcome { artifact, evidence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chromata_task::library::{hourglass, two_set_agreement};
    use std::sync::atomic::AtomicUsize;

    /// In-process shard: executes the job for real (same process-wide
    /// store), exercising the full encode → execute → checksum → decode
    /// round trip without sockets.
    struct LoopbackIo {
        shards: usize,
        calls: AtomicUsize,
    }

    impl LoopbackIo {
        fn new(shards: usize) -> Self {
            LoopbackIo {
                shards,
                calls: AtomicUsize::new(0),
            }
        }
    }

    fn serve_line(line: &str) -> Result<String, ShardIoError> {
        let value: Value = serde_json::from_str(line).map_err(|e| {
            ShardIoError::new(ShardStep::Recv, io::ErrorKind::InvalidData, e.to_string())
        })?;
        let Value::Object(entries) = value else {
            return Err(ShardIoError::new(
                ShardStep::Recv,
                io::ErrorKind::InvalidData,
                "not an object",
            ));
        };
        if entries
            .iter()
            .any(|(k, v)| k == "op" && *v == Value::String("ping".to_owned()))
        {
            return Ok(r#"{"status":"ok","op":"ping"}"#.to_owned());
        }
        let job = parse_stage_fields(&entries)
            .map_err(|e| ShardIoError::new(ShardStep::Recv, io::ErrorKind::InvalidData, e))?;
        execute_stage_line(&job)
            .map_err(|e| ShardIoError::new(ShardStep::Recv, io::ErrorKind::InvalidData, e))
    }

    impl ShardIo for LoopbackIo {
        fn shard_count(&self) -> usize {
            self.shards
        }

        fn exchange(
            &self,
            _shard: usize,
            line: &str,
            _deadline: Option<Duration>,
        ) -> Result<String, ShardIoError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            serve_line(line)
        }
    }

    #[test]
    fn job_lines_round_trip_through_the_parser() {
        let canonical = chromata_task::canonicalize(&two_set_agreement());
        let jobs = [
            StageJob::Split {
                canonical: canonical.clone(),
            },
            StageJob::Links {
                task: canonical.clone(),
            },
            StageJob::Explore {
                task: canonical,
                rounds: 3,
                reason: "continuous tier undetermined".to_owned(),
            },
        ];
        for job in jobs {
            let line = stage_request_line(&job).unwrap();
            let Value::Object(entries) = serde_json::from_str(&line).unwrap() else {
                panic!("request must be an object");
            };
            let parsed = parse_stage_fields(&entries).unwrap();
            assert_eq!(parsed, job);
        }
    }

    #[test]
    fn stage_field_parser_names_every_rejection() {
        let canonical = chromata_task::canonicalize(&two_set_agreement());
        let task_json = serde_json::to_string(&canonical).unwrap();
        let cases: &[(String, &str)] = &[
            (r#"{"op":"stage"}"#.to_owned(), "needs a `stage`"),
            (r#"{"op":"stage","stage":7}"#.to_owned(), "must be a string"),
            (
                r#"{"op":"stage","stage":"split"}"#.to_owned(),
                "needs a `task`",
            ),
            (
                format!(r#"{{"op":"stage","stage":"warp","task":{task_json}}}"#),
                "unknown stage `warp`",
            ),
            (
                format!(r#"{{"op":"stage","stage":"explore","task":{task_json}}}"#),
                "needs a `rounds`",
            ),
            (
                format!(r#"{{"op":"stage","stage":"split","task":{task_json},"rounds":2}}"#),
                "only valid for stage `explore`",
            ),
            (
                format!(r#"{{"op":"stage","stage":"split","task":{task_json},"zap":1}}"#),
                "unknown field `zap`",
            ),
        ];
        for (line, needle) in cases {
            let Value::Object(entries) = serde_json::from_str::<Value>(line).unwrap() else {
                panic!("case must be an object: {line}");
            };
            let err = parse_stage_fields(&entries).unwrap_err();
            assert!(err.contains(needle), "{line}: expected {needle:?} in {err}");
        }
    }

    #[test]
    fn executed_artifacts_survive_the_checksum_and_decode() {
        let canonical = chromata_task::canonicalize(&hourglass());
        let job = StageJob::Split {
            canonical: canonical.clone(),
        };
        let response = execute_stage_line(&job).unwrap();
        let payload = artifact_payload(&response, "split").unwrap();
        let decoded = SplitStage::decode(&payload).unwrap();
        let local = SplitStage { canonical }.compute(&Budget::unlimited());
        assert_eq!(decoded.split.task, local.split.task);
        assert_eq!(decoded.split.steps.len(), local.split.steps.len());
    }

    #[test]
    fn corrupted_payloads_are_rejected_by_the_checksum() {
        let canonical = chromata_task::canonicalize(&hourglass());
        let job = StageJob::Split { canonical };
        let response = execute_stage_line(&job).unwrap();
        // Flip a byte inside the embedded artifact payload.
        let corrupted = response.replacen("split", "spl1t", 2);
        let err = artifact_payload(&corrupted, "split").unwrap_err();
        assert!(
            err.contains("checksum mismatch") || err.contains("not for stage"),
            "{err}"
        );
        // Truncation breaks the JSON framing.
        let truncated = &response[..response.len() / 2];
        assert!(artifact_payload(truncated, "split")
            .unwrap_err()
            .contains("malformed stage response"));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let engine = RemoteEngine::new(Arc::new(LoopbackIo::new(2)), RemotePolicy::default());
        let run = |seed: u64| {
            let mut rng = seed;
            let mut prev = engine.policy.base_backoff_ms.max(1);
            (0..8)
                .map(|_| engine.next_backoff(&mut rng, &mut prev).as_millis() as u64)
                .collect::<Vec<_>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same backoff schedule");
        for ms in &a {
            assert!(
                *ms >= engine.policy.base_backoff_ms && *ms <= engine.policy.max_backoff_ms,
                "backoff {ms}ms escaped [{}, {}]",
                engine.policy.base_backoff_ms,
                engine.policy.max_backoff_ms
            );
        }
    }

    #[test]
    fn routing_is_deterministic_and_rotates_on_retry() {
        let engine = RemoteEngine::new(Arc::new(LoopbackIo::new(3)), RemotePolicy::default());
        let fp = 17u64;
        let first = engine.pick_shard(fp, 1, 3).unwrap();
        assert_eq!(first, engine.pick_shard(fp, 1, 3).unwrap());
        let second = engine.pick_shard(fp, 2, 3).unwrap();
        assert_eq!(
            second,
            (first + 1) % 3,
            "attempt 2 rotates to the next shard"
        );
    }

    #[test]
    fn ejection_and_probe_readmission_cycle() {
        struct FlakyIo {
            dead: std::sync::atomic::AtomicBool,
        }
        impl ShardIo for FlakyIo {
            fn shard_count(&self) -> usize {
                1
            }
            fn exchange(
                &self,
                _shard: usize,
                line: &str,
                _deadline: Option<Duration>,
            ) -> Result<String, ShardIoError> {
                if self.dead.load(Ordering::Relaxed) {
                    return Err(ShardIoError::new(
                        ShardStep::Connect,
                        io::ErrorKind::ConnectionRefused,
                        "partitioned",
                    ));
                }
                serve_line(line)
            }
        }
        let io = Arc::new(FlakyIo {
            dead: std::sync::atomic::AtomicBool::new(true),
        });
        let policy = RemotePolicy {
            attempts: 1,
            eject_after: 2,
            probe_every: 1,
            base_backoff_ms: 1,
            max_backoff_ms: 1,
            ..RemotePolicy::default()
        };
        let engine = RemoteEngine::new(Arc::clone(&io) as Arc<dyn ShardIo>, policy);
        let err = ShardIoError::new(
            ShardStep::Connect,
            io::ErrorKind::ConnectionRefused,
            "partitioned",
        );
        engine.note_fault("split", 0, 0, 1, &err);
        engine.note_fault("split", 0, 0, 1, &err);
        assert_eq!(engine.counters.snapshot().ejections, 1);
        // Still partitioned: the probe fails, no shard is available.
        assert_eq!(engine.pick_shard(0, 1, 1), None);
        // Healed: the next routing pass probes and re-admits.
        io.dead.store(false, Ordering::Relaxed);
        assert_eq!(engine.pick_shard(0, 1, 1), Some(0));
        let stats = engine.counters.snapshot();
        assert_eq!(stats.readmissions, 1);
        assert!(stats.probes >= 1);
        // The trace API is exercised for coverage; its contents are
        // asserted via the engine-level ring elsewhere.
        let _ = remote_fault_trace();
    }

    #[test]
    fn fault_traces_are_single_replayable_lines() {
        let engine = RemoteEngine::new(Arc::new(LoopbackIo::new(2)), RemotePolicy::default());
        let err = ShardIoError::new(ShardStep::Recv, io::ErrorKind::TimedOut, "stalled");
        engine.note_fault("homology", 0xabcd, 1, 2, &err);
        let faults = lock(&engine.faults);
        assert_eq!(faults.len(), 1);
        let line = &faults[0];
        assert!(!line.contains('\n'));
        for needle in [
            "stage=homology",
            "shard=1",
            "attempt=2",
            "step=recv",
            "TimedOut",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert_eq!(engine.counters.snapshot().timeouts, 1);
    }

    #[test]
    fn explore_jobs_are_pinned_local_under_constrained_budgets() {
        let stage = ExploreStage {
            task: chromata_task::canonicalize(&two_set_agreement()),
            undetermined_reason: "r".to_owned(),
            configured_rounds: 4,
            cancel: CancelToken::new(),
        };
        assert!(stage.job(&Budget::unlimited()).is_some());
        assert!(stage
            .job(&Budget::unlimited().with_deadline_in(Duration::from_secs(5)))
            .is_none());
        assert!(stage
            .job(&Budget::unlimited().with_max_states(10))
            .is_none());
        assert!(stage
            .job(&Budget::unlimited().with_max_act_rounds(2))
            .is_none());
    }
}
